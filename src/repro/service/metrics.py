"""Service observability: request outcomes, counters, and snapshots.

Every request ends in exactly one of four terminal outcomes — the
service-level mirror of the chaos campaign's safe states:

* ``completed``           — served with no fault absorption;
* ``degraded-in-budget``  — served, but only because a hardening
  mechanism (bounded degradation, retries, ballooning) absorbed EPC
  pressure within its declared budget;
* ``shed``                — refused or cancelled with a *structured*
  reason (queue full, overload tier, token/paging budget, breaker
  open, deadline) — the service chose not to serve it;
* ``structured-abort``    — the tenant's enclave failed stop with a
  structured :class:`~repro.errors.AbortReason`.

Anything else (an unclassified exception, a served request on a dead
enclave) is an invariant violation and fails the run.

The snapshot is a plain dict of sorted, canonical values so it can be
JSON-dumped, diffed in CI, and folded into the run digest without any
ordering hazards.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

OUTCOME_COMPLETED = "completed"
OUTCOME_DEGRADED = "degraded-in-budget"
OUTCOME_SHED = "shed"
OUTCOME_ABORTED = "structured-abort"

OUTCOMES = (
    OUTCOME_COMPLETED, OUTCOME_DEGRADED, OUTCOME_SHED, OUTCOME_ABORTED,
)

#: Structured shed reasons (the service's rejection taxonomy).
SERVICE_OVERLOADED = "service-overloaded"   # degradation tier rejects
QUEUE_FULL = "queue-full"                   # bounded run queue is full
RATE_LIMITED = "rate-limited"               # token bucket exhausted
PAGING_BUDGET = "paging-budget"             # paging debt unpaid
BREAKER_OPEN = "breaker-open"               # circuit breaker rejecting
DEADLINE = "deadline"                       # cancelled mid-execution
SLO_PRESSURE = "slo-pressure"               # tenant violating its SLO
POOL_UNAVAILABLE = "pool-unavailable"       # every replica unhealthy
TENANT_RETIRED = "tenant-retired"           # shed by departure drain

SHED_REASONS = (
    SERVICE_OVERLOADED, QUEUE_FULL, RATE_LIMITED, PAGING_BUDGET,
    BREAKER_OPEN, DEADLINE, SLO_PRESSURE, POOL_UNAVAILABLE,
    TENANT_RETIRED,
)


class LatencyWindow:
    """Sliding window of per-request latencies on the simulated clock.

    Integer nearest-rank percentiles over the last ``capacity``
    terminal requests — deterministic (no floats, no interpolation),
    cheap (the window is tiny), and computed on demand so recording
    stays O(1).  The SLO admission check reads :meth:`percentile`
    every tick; the run digest folds in :meth:`snapshot`.
    """

    __slots__ = ("_samples",)

    def __init__(self, capacity=32):
        if capacity < 1:
            raise ValueError("latency window needs at least one slot")
        self._samples = deque(maxlen=capacity)

    def record(self, cycles):
        """Fold one request's simulated-cycle latency into the window."""
        if cycles < 0:
            raise ValueError(f"negative latency: {cycles}")
        self._samples.append(cycles)

    def __len__(self):
        return len(self._samples)

    def percentile(self, p_milli):
        """Nearest-rank percentile (``p_milli`` in thousandths, e.g.
        950 = p95) over the window, or ``None`` while empty."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = (p_milli * len(ordered) + 999) // 1000   # ceil
        rank = min(max(rank, 1), len(ordered))
        return ordered[rank - 1]

    def snapshot(self):
        """Canonical ``(n, p50, p95, p99)`` tuple for digests."""
        return (
            len(self._samples),
            self.percentile(500),
            self.percentile(950),
            self.percentile(990),
        )


@dataclass(frozen=True)
class RequestResult:
    """Terminal record of one request."""

    tenant: str
    request_id: int
    outcome: str
    reason: str          # shed reason or AbortReason value, "" otherwise
    cycles: int          # simulated cycles spent executing (0 if shed
                         # at admission)
    fetches: int         # EPC page fetches the request performed


@dataclass
class ServiceMetrics:
    """Aggregated counters for one service run."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    degraded: int = 0
    aborted: int = 0
    shed: int = 0
    shed_by_reason: dict = field(default_factory=dict)
    abort_reasons: dict = field(default_factory=dict)
    recoveries: int = 0
    quarantines: int = 0
    balloon_reclaimed_pages: int = 0
    tier_changes: int = 0
    peak_queue_depth: int = 0
    peak_epc_pressure_milli: int = 0
    failovers: int = 0
    skipped_probes: int = 0
    aex_interrupts: int = 0
    replica_suspends: int = 0
    replica_resumes: int = 0
    arrivals: int = 0
    departures: int = 0
    arrival_refusals: int = 0

    def record(self, result):
        """Fold one :class:`RequestResult` into the counters."""
        if result.outcome == OUTCOME_COMPLETED:
            self.completed += 1
        elif result.outcome == OUTCOME_DEGRADED:
            self.degraded += 1
        elif result.outcome == OUTCOME_ABORTED:
            self.aborted += 1
            self.abort_reasons[result.reason] = (
                self.abort_reasons.get(result.reason, 0) + 1
            )
        elif result.outcome == OUTCOME_SHED:
            self.shed += 1
            self.shed_by_reason[result.reason] = (
                self.shed_by_reason.get(result.reason, 0) + 1
            )
        else:
            raise ValueError(f"unknown outcome {result.outcome!r}")

    def outcome_counts(self):
        return {
            OUTCOME_COMPLETED: self.completed,
            OUTCOME_DEGRADED: self.degraded,
            OUTCOME_SHED: self.shed,
            OUTCOME_ABORTED: self.aborted,
        }

    def canonical(self):
        """A deterministic tuple of every counter (digest input)."""
        return (
            self.submitted, self.admitted, self.completed, self.degraded,
            self.aborted, self.shed,
            tuple(sorted(self.shed_by_reason.items())),
            tuple(sorted(self.abort_reasons.items())),
            self.recoveries, self.quarantines,
            self.balloon_reclaimed_pages, self.tier_changes,
            self.peak_queue_depth, self.peak_epc_pressure_milli,
            self.failovers, self.skipped_probes, self.aex_interrupts,
            self.replica_suspends, self.replica_resumes,
            self.arrivals, self.departures, self.arrival_refusals,
        )


def epc_pressure_milli(kernel):
    """Shared-EPC occupancy in thousandths (integer, deterministic)."""
    total = kernel.epc.total_pages
    return ((total - kernel.epc.free_pages) * 1000) // total
