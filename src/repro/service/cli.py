"""``python -m repro serve`` — drive the multi-tenant enclave service.

Two modes:

* ``--smoke`` (also the CI gate): boot a 4-tenant fleet, drive ~200
  requests of mixed-policy traffic with the seed's fault plan, probe
  health/readiness, then re-run from scratch and require digest
  equality.  Exit 0 only if every request ended in a terminal outcome,
  no invariant fell, the breaker both tripped and recovered, and the
  two digests match.

* ``--sweep``: the cross-tenant contention sweep (seeds × the three
  paper policies, over-committed EPC), with ``--jobs N`` fan-out that
  must be bit-identical to serial, emitting ``BENCH_service.json``.
"""

from __future__ import annotations

import argparse
import json

from repro.service.router import ServiceConfig, run_service
from repro.service.sweep import (
    SWEEP_POLICIES,
    run_sweep,
    sweep_report,
)
from repro.service.tenant import default_tenants

#: Smoke sizing: 4 tenants × (2+3+2+3) arrivals/tick × 20 ticks = 200.
SMOKE_TENANTS = 4
SMOKE_TICKS = 20


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="deterministic multi-tenant enclave service",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="boot 4 tenants, drive ~200 requests, probe health, "
             "verify double-run digest equality",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="cross-tenant EPC contention sweep (seeds x policies), "
             "emitting a JSON report",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="service seed (default: 0)",
    )
    parser.add_argument(
        "--seeds", type=int, default=6, metavar="N",
        help="sweep seeds 0..N-1 (default: 6)",
    )
    parser.add_argument(
        "--tenants", type=int, default=SMOKE_TENANTS, metavar="N",
        help=f"fleet size (default: {SMOKE_TENANTS})",
    )
    parser.add_argument(
        "--ticks", type=int, default=SMOKE_TICKS, metavar="N",
        help=f"arrival ticks to drive (default: {SMOKE_TICKS})",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep; results are identical "
             "to --jobs 1 (default: 1)",
    )
    parser.add_argument(
        "--no-determinism-check", action="store_true",
        help="run each sweep point once instead of twice",
    )
    parser.add_argument(
        "--output", default="BENCH_service.json", metavar="PATH",
        help="sweep report path (default: BENCH_service.json)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    return parser


def _smoke_config(args):
    return ServiceConfig(
        seed=args.seed,
        tenants=default_tenants(args.tenants),
        ticks=args.ticks,
    )


def run_smoke(args):
    """One full service run, probed, then replayed for digest equality."""
    from repro.service.router import EnclaveService

    service = EnclaveService(_smoke_config(args))
    service.boot()
    boot_ready = service.ready()
    boot_health = service.health()
    result = service.run()
    final_ready = service.ready()
    rerun = run_service(_smoke_config(args))

    checks = {
        "booted_ready": boot_ready,
        "boot_health_ok": boot_health["status"] == "ok",
        "drained_not_ready": not final_ready,
        "no_violations": result.safe and rerun.safe,
        "breaker_tripped": result.breaker_trips >= 1,
        "breaker_recovered": result.breaker_closes >= 1,
        "digest_equal": result.digest == rerun.digest,
    }
    ok = all(checks.values())
    payload = {
        "ok": ok,
        "checks": checks,
        "seed": args.seed,
        "tenants": args.tenants,
        "ticks": args.ticks,
        "outcomes": result.outcome_counts,
        "shed_by_reason": result.shed_by_reason,
        "abort_reasons": result.abort_reasons,
        "recoveries": result.recoveries,
        "quarantines": result.quarantines,
        "boot_health": boot_health,
        "violations": list(result.violations),
        "digest": result.digest,
        "rerun_digest": rerun.digest,
    }
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        total = sum(result.outcome_counts.values())
        print(f"service smoke: seed={args.seed} tenants={args.tenants} "
              f"ticks={args.ticks} requests={total}")
        for outcome, count in result.outcome_counts.items():
            print(f"  {outcome:18s} {count}")
        for reason, count in result.shed_by_reason.items():
            print(f"  shed[{reason}]: {count}")
        for reason, count in result.abort_reasons.items():
            print(f"  abort[{reason}]: {count}")
        print(f"  recoveries={result.recoveries} "
              f"quarantines={result.quarantines} "
              f"breaker trips={result.breaker_trips} "
              f"closes={result.breaker_closes}")
        print(f"  digest={result.digest} rerun={rerun.digest}")
        for name, passed in checks.items():
            if not passed:
                print(f"  CHECK FAILED: {name}")
        for violation in result.violations:
            print(f"  VIOLATION: {violation}")
        print("verdict:", "OK" if ok else "FAIL")
    return 0 if ok else 1


def run_contention_sweep(args):
    seeds = range(args.seeds)
    sweep = run_sweep(
        seeds,
        policies=SWEEP_POLICIES,
        check_determinism=not args.no_determinism_check,
        jobs=args.jobs,
    )
    report = sweep_report(sweep, list(seeds), list(SWEEP_POLICIES),
                          args.jobs)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"service contention sweep: {len(sweep.points)} points "
              f"({args.seeds} seeds x {len(SWEEP_POLICIES)} policies, "
              f"jobs={args.jobs})")
        for klass, count in sweep.class_counts().items():
            print(f"  {klass:24s} {count}")
        print(f"  breaker trips={sweep.breaker_trips()} "
              f"closes={sweep.breaker_closes()}")
        if sweep.violations:
            print("SAFETY-INVARIANT VIOLATIONS:")
            for seed, policy, message in sweep.violations:
                print(f"  seed={seed} policy={policy}: {message}")
        if sweep.determinism_failures:
            print("DETERMINISM FAILURES:")
            for seed, policy, first, second in sweep.determinism_failures:
                print(f"  seed={seed} policy={policy}: {first} != {second}")
        print(f"  report written to {args.output}")
        print("verdict:", "OK" if sweep.ok else "FAIL")
    return 0 if sweep.ok else 1


def run(argv=None):
    args = build_parser().parse_args(argv)
    if args.sweep:
        return run_contention_sweep(args)
    # --smoke is also the default mode.
    return run_smoke(args)
