"""``python -m repro serve`` — drive the multi-tenant enclave service.

Two modes:

* ``--smoke`` (also the CI gate): boot a 4-tenant fleet, drive ~200
  requests of mixed-policy traffic with the seed's fault plan, probe
  health/readiness, then re-run from scratch and require digest
  equality.  Exit 0 only if every request ended in a terminal outcome,
  no invariant fell, the breaker both tripped and recovered, and the
  two digests match.

* ``--sweep``: the cross-tenant contention sweep (seeds × the three
  paper policies, over-committed EPC), with ``--jobs N`` fan-out that
  must be bit-identical to serial, emitting ``BENCH_service.json``.
  With ``--pool`` it also runs the pool-failover sweep (two-replica
  pools under tamper ladders, AEX storms, and suspend/resume) and
  embeds the throughput/fairness frontier as ``pool_frontier``.

* ``--plan FILE``: replay a frozen service fault plan (mirrors the
  chaos ``--plan`` envelope) — the promotion path for model-checker
  witnesses and hand-frozen failover regressions under
  ``tests/fixtures/chaos/``.

``--baseline FILE`` gates any sweep output against a committed
``BENCH_service.json``: per-point digests must match bit-for-bit.
"""

from __future__ import annotations

import argparse
import dataclasses
import json

from repro.service.chaos import ServiceFaultPlan
from repro.service.router import ServiceConfig, run_service
from repro.service.sweep import (
    SWEEP_POLICIES,
    pool_report,
    run_pool_sweep,
    run_sweep,
    sweep_report,
)
from repro.service.tenant import TenantSpec, default_tenants

#: Smoke sizing: 4 tenants × (2+3+2+3) arrivals/tick × 20 ticks = 200.
SMOKE_TENANTS = 4
SMOKE_TICKS = 20


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="deterministic multi-tenant enclave service",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="boot 4 tenants, drive ~200 requests, probe health, "
             "verify double-run digest equality",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="cross-tenant EPC contention sweep (seeds x policies), "
             "emitting a JSON report",
    )
    parser.add_argument(
        "--pool", action="store_true",
        help="with --sweep: also run the pool-failover sweep "
             "(2-replica pools) and embed the throughput/fairness "
             "frontier in the report",
    )
    parser.add_argument(
        "--plan", metavar="FILE",
        help="replay a frozen service fault plan (JSON envelope with "
             "plan/config/expected_outcome, or a bare plan)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="gate the sweep report against a committed "
             "BENCH_service.json (per-point digest equality)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="service seed (default: 0)",
    )
    parser.add_argument(
        "--seeds", type=int, default=6, metavar="N",
        help="sweep seeds 0..N-1 (default: 6)",
    )
    parser.add_argument(
        "--tenants", type=int, default=SMOKE_TENANTS, metavar="N",
        help=f"fleet size (default: {SMOKE_TENANTS})",
    )
    parser.add_argument(
        "--ticks", type=int, default=SMOKE_TICKS, metavar="N",
        help=f"arrival ticks to drive (default: {SMOKE_TICKS})",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep; results are identical "
             "to --jobs 1 (default: 1)",
    )
    parser.add_argument(
        "--no-determinism-check", action="store_true",
        help="run each sweep point once instead of twice",
    )
    parser.add_argument(
        "--output", default="BENCH_service.json", metavar="PATH",
        help="sweep report path (default: BENCH_service.json)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    return parser


def _smoke_config(args):
    return ServiceConfig(
        seed=args.seed,
        tenants=default_tenants(args.tenants),
        ticks=args.ticks,
    )


def run_smoke(args):
    """One full service run, probed, then replayed for digest equality."""
    from repro.service.router import EnclaveService

    service = EnclaveService(_smoke_config(args))
    service.boot()
    boot_ready = service.ready()
    boot_health = service.health()
    result = service.run()
    final_ready = service.ready()
    rerun = run_service(_smoke_config(args))

    checks = {
        "booted_ready": boot_ready,
        "boot_health_ok": boot_health["status"] == "ok",
        "drained_not_ready": not final_ready,
        "no_violations": result.safe and rerun.safe,
        "breaker_tripped": result.breaker_trips >= 1,
        "breaker_recovered": result.breaker_closes >= 1,
        "digest_equal": result.digest == rerun.digest,
    }
    ok = all(checks.values())
    payload = {
        "ok": ok,
        "checks": checks,
        "seed": args.seed,
        "tenants": args.tenants,
        "ticks": args.ticks,
        "outcomes": result.outcome_counts,
        "shed_by_reason": result.shed_by_reason,
        "abort_reasons": result.abort_reasons,
        "recoveries": result.recoveries,
        "quarantines": result.quarantines,
        "boot_health": boot_health,
        "violations": list(result.violations),
        "digest": result.digest,
        "rerun_digest": rerun.digest,
    }
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        total = sum(result.outcome_counts.values())
        print(f"service smoke: seed={args.seed} tenants={args.tenants} "
              f"ticks={args.ticks} requests={total}")
        for outcome, count in result.outcome_counts.items():
            print(f"  {outcome:18s} {count}")
        for reason, count in result.shed_by_reason.items():
            print(f"  shed[{reason}]: {count}")
        for reason, count in result.abort_reasons.items():
            print(f"  abort[{reason}]: {count}")
        print(f"  recoveries={result.recoveries} "
              f"quarantines={result.quarantines} "
              f"breaker trips={result.breaker_trips} "
              f"closes={result.breaker_closes}")
        print(f"  digest={result.digest} rerun={rerun.digest}")
        for name, passed in checks.items():
            if not passed:
                print(f"  CHECK FAILED: {name}")
        for violation in result.violations:
            print(f"  VIOLATION: {violation}")
        print("verdict:", "OK" if ok else "FAIL")
    return 0 if ok else 1


def _baseline_gate(report, baseline_path):
    """Compare per-point digests (contention + pool frontier) against
    a committed report; returns a list of mismatch messages."""
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)

    def digests(payload, section):
        block = payload.get(section) if section else payload
        if not block:
            return {}
        return {
            (p["seed"], p["policy"]): p["digest"]
            for p in block.get("points", ())
        }

    mismatches = []
    for section in (None, "pool_frontier"):
        fresh = digests(report, section)
        frozen = digests(baseline, section)
        label = section or "contention"
        for key in sorted(set(fresh) & set(frozen)):
            if fresh[key] != frozen[key]:
                mismatches.append(
                    f"{label} point seed={key[0]} policy={key[1]}: "
                    f"{fresh[key]} != baseline {frozen[key]}"
                )
        if frozen and not fresh:
            mismatches.append(f"{label}: baseline has points, run has none")
    return mismatches


def run_contention_sweep(args):
    seeds = range(args.seeds)
    check = not args.no_determinism_check
    sweep = run_sweep(
        seeds,
        policies=SWEEP_POLICIES,
        check_determinism=check,
        jobs=args.jobs,
    )
    report = sweep_report(sweep, list(seeds), list(SWEEP_POLICIES),
                          args.jobs)
    pool_sweep = None
    if args.pool:
        pool_sweep = run_pool_sweep(
            seeds,
            policies=SWEEP_POLICIES,
            check_determinism=check,
            jobs=args.jobs,
        )
        report["pool_frontier"] = pool_report(
            pool_sweep, list(seeds), list(SWEEP_POLICIES), args.jobs
        )
    baseline_mismatches = []
    if args.baseline:
        baseline_mismatches = _baseline_gate(report, args.baseline)
    ok = sweep.ok and not baseline_mismatches
    if pool_sweep is not None:
        ok = ok and pool_sweep.ok
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"service contention sweep: {len(sweep.points)} points "
              f"({args.seeds} seeds x {len(SWEEP_POLICIES)} policies, "
              f"jobs={args.jobs})")
        for klass, count in sweep.class_counts().items():
            print(f"  {klass:24s} {count}")
        print(f"  breaker trips={sweep.breaker_trips()} "
              f"closes={sweep.breaker_closes()}")
        if sweep.violations:
            print("SAFETY-INVARIANT VIOLATIONS:")
            for seed, policy, message in sweep.violations:
                print(f"  seed={seed} policy={policy}: {message}")
        if sweep.determinism_failures:
            print("DETERMINISM FAILURES:")
            for seed, policy, first, second in sweep.determinism_failures:
                print(f"  seed={seed} policy={policy}: {first} != {second}")
        if pool_sweep is not None:
            print(f"pool-failover frontier: {len(pool_sweep.points)} "
                  f"points, classes {pool_sweep.class_counts()}")
            for policy, row in report["pool_frontier"]["frontier"].items():
                print(f"  {policy:12s} "
                      f"tp={row['mean_throughput_milli_per_mcycle']} "
                      f"fair={row['mean_fairness_milli']} "
                      f"failovers={row['failovers']}")
            if pool_sweep.violations:
                print("POOL SWEEP VIOLATIONS:")
                for seed, policy, message in pool_sweep.violations:
                    print(f"  seed={seed} policy={policy}: {message}")
        for message in baseline_mismatches:
            print(f"BASELINE MISMATCH: {message}")
        print(f"  report written to {args.output}")
        print("verdict:", "OK" if ok else "FAIL")
    return 0 if ok else 1


# -- frozen-plan replay ------------------------------------------------------

_SPEC_FIELDS = {f.name for f in dataclasses.fields(TenantSpec)}


def _spec_from_json(payload):
    known = {k: v for k, v in payload.items() if k in _SPEC_FIELDS}
    return TenantSpec(**known)


def _config_from_json(payload, plan):
    tenants = [
        _spec_from_json(entry) for entry in payload.get("tenants", ())
    ] or default_tenants(4, replicas=2)
    return ServiceConfig(
        seed=int(payload.get("seed", plan.seed)),
        tenants=tenants,
        epc_pages=int(payload.get("epc_pages", 320)),
        ticks=int(payload.get("ticks", plan.ticks)),
        fault_plan=plan,
    )


def run_plan(args):
    """Replay a frozen service fault plan and check its expectations —
    exit 0 only if the run is safe, deterministic, and every expected
    floor (failovers, quarantines, completions...) holds."""
    with open(args.plan, encoding="utf-8") as handle:
        payload = json.load(handle)
    envelope = payload if "plan" in payload else {"plan": payload}
    plan = ServiceFaultPlan.from_json(envelope["plan"])
    config = _config_from_json(envelope.get("config", {}), plan)
    rerun_config = _config_from_json(envelope.get("config", {}), plan)
    result = run_service(config)
    rerun = run_service(rerun_config)
    expected = envelope.get("expected_outcome", {})
    checks = {
        "safe": result.safe,
        "digest_equal": result.digest == rerun.digest,
    }
    floors = {
        "min_failovers": result.failovers,
        "min_quarantines": result.quarantines,
        "min_recoveries": result.recoveries,
        "min_completed": result.outcome_counts["completed"],
        "min_breaker_trips": result.breaker_trips,
    }
    for key, actual in floors.items():
        if key in expected:
            checks[key] = actual >= int(expected[key])
    if "outcome_class" in expected:
        from repro.service.sweep import classify
        checks["outcome_class"] = (
            classify(result) == expected["outcome_class"]
        )
    ok = all(checks.values())
    report = {
        "ok": ok,
        "plan": args.plan,
        "checks": checks,
        "outcomes": result.outcome_counts,
        "shed_by_reason": result.shed_by_reason,
        "failovers": result.failovers,
        "quarantines": result.quarantines,
        "recoveries": result.recoveries,
        "violations": list(result.violations),
        "digest": result.digest,
    }
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"service plan replay: {args.plan}")
        print(f"  outcomes={result.outcome_counts}")
        print(f"  failovers={result.failovers} "
              f"quarantines={result.quarantines} "
              f"recoveries={result.recoveries}")
        for name, passed in checks.items():
            if not passed:
                print(f"  CHECK FAILED: {name}")
        for violation in result.violations:
            print(f"  VIOLATION: {violation}")
        print("verdict:", "OK" if ok else "FAIL")
    return 0 if ok else 1


def run(argv=None):
    args = build_parser().parse_args(argv)
    if args.plan:
        return run_plan(args)
    if args.sweep:
        return run_contention_sweep(args)
    # --smoke is also the default mode.
    return run_smoke(args)
