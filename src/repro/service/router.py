"""The multi-tenant enclave service: a deterministic request router.

One long-lived front door admits YCSB-style traffic from many tenants,
each backed by a *pool* of replica enclaves on one shared kernel, all
contending for one EPC.  The robustness core, in admission order:

1. **degradation tier 2** — under extreme EPC pressure new work is
   rejected with a structured ``SERVICE_OVERLOADED`` (reject *before*
   evicting pinned tenants — suspension is never used on a sealed
   working set);
2. **SLO pressure** — a tenant whose sliding-window p95 latency
   exceeds its target sheds its *own* new arrivals, so an SLO
   violator pays for its backlog before healthy tenants degrade;
3. **paging budget** — a tenant still in paging debt from earlier
   thrashing may not submit;
4. **token bucket** — per-tenant request-rate admission;
5. **bounded run queue** — a full queue sheds with ``QUEUE_FULL``
   instead of growing without bound;
6. **circuit breaker** — checked *last* so a half-open probe, once
   admitted, is never lost to a cheaper rejection downstream.

Degradation tier 1 (moderate pressure) shrinks non-pinned replicas'
balloon targets — cooperative ballooning, §5.2.1 — before anything is
rejected; tier 0 restores the loans once pressure subsides.

Each tenant's requests run on the pool's elected primary
(:mod:`repro.service.pool`); an aborted replica goes through the
recovery supervisor's bounded-restart / verified-replay pipeline while
election fails the *next* request over to a healthy sibling.  Only an
exhausted pool (every replica down, suspended, or quarantined) latches
the tenant's breaker.  Tenants also arrive and retire mid-run: arrival
balloons headroom and boots a fresh pool (refusing structurally when
the EPC cannot hold it), departure drains the tenant's queued requests
within a budget — completed or shed ``tenant-retired``, never dropped —
then tears the pool down with EPC page parity checked.

Every request ends in exactly one of the four terminal outcomes (see
:mod:`repro.service.metrics`); anything else is recorded as an
invariant violation and fails the run.

Everything runs on the simulated clock with seeded randomness only, so
a full service run is double-run digest-identical and ``--jobs N``
bit-identical under :mod:`repro.parallel`.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.clock import Category
from repro.errors import (
    ChaosAbort,
    EnclaveCrashed,
    EnclaveTerminated,
    HostCallDenied,
    IntegrityAbort,
    IntegrityError,
    Quarantined,
    SgxError,
)
from repro.host.kernel import HostKernel
from repro.recovery.supervisor import RUNNING, RecoverySupervisor
from repro.runtime.multiprocess import EnclaveSupervisor
from repro.service.chaos import ServiceFaultKind, ServiceFaultPlan
from repro.service.metrics import (
    BREAKER_OPEN,
    DEADLINE,
    OUTCOME_ABORTED,
    OUTCOME_COMPLETED,
    OUTCOME_DEGRADED,
    OUTCOME_SHED,
    OUTCOMES,
    PAGING_BUDGET,
    POOL_UNAVAILABLE,
    QUEUE_FULL,
    RATE_LIMITED,
    SERVICE_OVERLOADED,
    SLO_PRESSURE,
    TENANT_RETIRED,
    RequestResult,
    ServiceMetrics,
    epc_pressure_milli,
)
from repro.service.pool import TenantPool
from repro.service.tenant import BUDGET_FLOOR, Tenant, default_tenants

#: Compute cycles per request op (matches the chaos campaign's rhythm).
OP_COMPUTE_CYCLES = 1_000

#: Free EPC frames the router balloons for before asking the recovery
#: supervisor to relaunch a tenant (eager launch footprint + warm-up).
RELAUNCH_HEADROOM_PAGES = 64


@dataclass
class ServiceConfig:
    """Everything needed to boot and drive one service run."""

    seed: int = 0
    tenants: list = field(default_factory=lambda: default_tenants(4))
    #: Shared EPC.  Deliberately smaller than the fleet's combined
    #: working-set demand (over-commit) so cross-tenant pressure
    #: actually occurs: the default mixed 4-tenant fleet peaks around
    #: 900‰ occupancy here, deep in the tier-1 ballooning band.
    epc_pages: int = 192
    #: Ticks of arrival traffic (dispatch continues until drained).
    ticks: int = 24
    #: Bounded run queue — the only place requests wait.
    queue_capacity: int = 16
    #: Requests dispatched per tick.
    dispatch_per_tick: int = 8
    #: Simulated cycles the router charges per tick (time always
    #: advances, so token buckets refill and cooldowns elapse even
    #: when no work runs).
    tick_cycles: int = 400_000
    #: Degradation thresholds, EPC occupancy in thousandths.
    tier1_pressure_milli: int = 800
    tier2_pressure_milli: int = 920
    #: Balloon pages requested per tier-1 shrink step.
    shrink_step_pages: int = 16
    #: Fault plan; None generates one from the seed, () disables.
    fault_plan: Optional[ServiceFaultPlan] = None
    #: Live churn: ``(tick, TenantSpec)`` pairs booted mid-run and
    #: ``(tick, name)`` pairs retired mid-run (drain-before-retire).
    arrivals: tuple = ()
    departures: tuple = ()
    #: Queued requests a departing tenant may still *execute* during
    #: its drain; the rest shed structured (``tenant-retired``).
    drain_budget: int = 8


@dataclass(frozen=True)
class ServiceResult:
    """Outcome of one full service run."""

    seed: int
    ticks: int
    outcome_counts: dict
    shed_by_reason: dict
    abort_reasons: dict
    metrics: tuple           # ServiceMetrics.canonical()
    tenants: tuple           # per-tenant canonical tuples
    pools: tuple             # per-pool canonical tuples
    breaker_trips: int
    breaker_closes: int
    recoveries: int
    quarantines: int
    failovers: int
    cycles: int
    violations: tuple
    digest: str

    @property
    def safe(self):
        return not self.violations


class EnclaveService:
    """One bootable instance of the router (one kernel, one fleet)."""

    def __init__(self, config=None):
        self.config = config or ServiceConfig()
        cfg = self.config
        self.kernel = HostKernel(epc_pages=cfg.epc_pages)
        self.recovery = RecoverySupervisor(self.kernel)
        self.tenants = [
            Tenant(spec, i, cfg.seed)
            for i, spec in enumerate(cfg.tenants)
        ]
        self._next_index = len(self.tenants)
        self.plan = cfg.fault_plan
        if self.plan is None:
            max_width = max(
                [t.spec.replicas for t in self.tenants], default=1
            )
            self.plan = ServiceFaultPlan.generate(
                cfg.seed, cfg.ticks, len(self.tenants),
                tamperable=tuple(
                    t.index for t in self.tenants if not t.spec.pinned
                ),
                replicas=max_width,
            )
        self._queue = deque()
        self._engines = {}
        self._gates = {}
        self._addr_pools = {}
        self._tenant_pools = {}
        self._retired_pools = []
        self.metrics = ServiceMetrics()
        self.results = []
        self.violations = []
        self.skipped_events = []
        self.tier = 0
        self.tick = 0
        self._shrink_cursor = 0
        self._restore_cursor = 0
        self._booted = False

    # -- lifecycle ---------------------------------------------------------

    def boot(self):
        """Launch every tenant's pool through the spawn gate
        (measurement pinning + self-paging attribute check) on top of
        the recovery supervisor's launch/attest/seal pipeline."""
        for tenant in self.tenants:
            self._boot_pool(tenant)
        self._booted = True
        return self

    def _boot_pool(self, tenant):
        """Boot every replica of one tenant and register the pool."""
        pool = TenantPool(tenant, self.recovery)
        for handle in pool.replicas:
            name = handle.member_name
            program = tenant.program(self.config.epc_pages, handle.index)
            gate = EnclaveSupervisor(
                child_factory=lambda n=name, p=program: (
                    self.recovery.launch(n, p).runtime
                ),
            )
            gate.spawn()
            self._gates[name] = gate
            self._bind_replica(tenant, handle)
        self._tenant_pools[tenant.spec.name] = pool

    def _bind_replica(self, tenant, handle):
        """(Re)build the engine and address pool for one replica's
        current incarnation — at boot and after every recovery."""
        record = self.recovery.member(handle.member_name)
        program = record.program
        self._engines[handle.member_name] = program.engine(record.runtime)
        self._addr_pools[handle.member_name] = tenant.pool(record.runtime)

    def shutdown(self):
        """Tear the fleet down and verify EPC parity.  Both supervisor
        layers reclaim; the idempotent reclaim path makes the overlap
        harmless."""
        self.recovery.shutdown()
        for gate in self._gates.values():
            gate.shutdown()
        self._booted = False
        if self.kernel.epc.free_pages != self.kernel.epc.total_pages:
            self.violations.append(
                f"EPC leak after shutdown: {self.kernel.epc.free_pages} "
                f"free of {self.kernel.epc.total_pages}"
            )

    # -- live churn --------------------------------------------------------

    def _arrive(self, spec):
        """Boot a new tenant mid-run.  Headroom is ballooned first; a
        boot the EPC cannot hold is *refused* structurally (partial
        pool reclaimed, counter bumped) — never a crash."""
        tenant = Tenant(spec, self._next_index, self.config.seed)
        self._next_index += 1
        self.tenants.append(tenant)
        self._make_headroom(RELAUNCH_HEADROOM_PAGES * spec.replicas)
        try:
            self._boot_pool(tenant)
        except (SgxError, EnclaveTerminated, EnclaveCrashed,
                HostCallDenied) as exc:
            for r in range(spec.replicas):
                name = tenant.replica_name(r)
                self.recovery.teardown(name)
                gate = self._gates.pop(name, None)
                if gate is not None:
                    gate.shutdown()
                self._engines.pop(name, None)
                self._addr_pools.pop(name, None)
            self._tenant_pools.pop(spec.name, None)
            tenant.departed = True
            self.metrics.arrival_refusals += 1
            self.skipped_events.append(
                (self.tick, "arrive-refused", spec.name,
                 type(exc).__name__)
            )
            return False
        self.metrics.arrivals += 1
        return True

    def _retire(self, name):
        """Drain-before-retire: every queued request of the departing
        tenant ends terminal (executed within the drain budget or shed
        ``tenant-retired``), the half-open probe is cancelled so the
        breaker cannot wedge, and the pool is torn down with EPC page
        parity checked."""
        tenant = next(
            (t for t in self.tenants if t.spec.name == name), None
        )
        if tenant is None or tenant.departed:
            self.skipped_events.append((self.tick, "retire", name))
            return
        tenant.departed = True
        self.metrics.departures += 1
        kept = deque()
        drained = []
        for queued_tenant, request in self._queue:
            if queued_tenant is tenant:
                drained.append(request)
            else:
                kept.append((queued_tenant, request))
        self._queue = kept
        for i, request in enumerate(drained):
            if i < self.config.drain_budget:
                self._finish(self._execute(tenant, request))
            else:
                self._finish(self._shed(request, TENANT_RETIRED))
        # A probe lost to departure must not wedge the breaker
        # half-open (the satellite regression this PR fixes).
        tenant.breaker.cancel_probe()
        tenant.pending_probe = None
        pool = self._tenant_pools.pop(name, None)
        if pool is None:
            return
        free_before = self.kernel.epc.free_pages
        held = 0
        fleet_names = {r.name for r in self.recovery.fleet()}
        for handle in pool.replicas:
            member = handle.member_name
            if member in fleet_names:
                record = self.recovery.member(member)
                if record.runtime is not None:
                    held += len(record.runtime.enclave.backed)
            self.recovery.teardown(member)
            gate = self._gates.pop(member, None)
            if gate is not None:
                gate.shutdown()
            self._engines.pop(member, None)
            self._addr_pools.pop(member, None)
        freed = self.kernel.epc.free_pages - free_before
        if freed != held:
            self.violations.append(
                f"EPC parity broken retiring {name}: pool held {held} "
                f"pages but teardown freed {freed}"
            )
        self._retired_pools.append(pool)

    # -- probes ------------------------------------------------------------

    def ready(self):
        """Readiness: booted and at least one tenant serving."""
        if not self._booted:
            return False
        return any(
            record.state == RUNNING for record in self.recovery.fleet()
        )

    def health(self):
        """Liveness/health snapshot (sorted keys, JSON-safe)."""
        fleet_states = {
            record.name: record.state for record in self.recovery.fleet()
        }
        latched = sum(
            1 for t in self.tenants if t.breaker.latched
        )
        if self.tier >= 2:
            status = "overloaded"
        elif self.tier == 1 or latched:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "ready": self.ready(),
            "tier": self.tier,
            "epc_pressure_milli": epc_pressure_milli(self.kernel),
            "queue_depth": len(self._queue),
            "tenants": dict(sorted(fleet_states.items())),
            "breakers": {
                t.spec.name: t.breaker.state
                for t in sorted(self.tenants, key=lambda t: t.spec.name)
            },
            "pools": {
                name: self._tenant_pools[name].healthy_count()
                for name in sorted(self._tenant_pools)
            },
        }

    # -- the drive loop ----------------------------------------------------

    def run(self):
        """Drive the configured number of arrival ticks, then drain the
        queue, then shut down; returns a :class:`ServiceResult`."""
        if not self._booted:
            self.boot()
        events = self.plan.by_tick()
        arrivals_at = {}
        for at_tick, spec in self.config.arrivals:
            arrivals_at.setdefault(at_tick, []).append(spec)
        departures_at = {}
        for at_tick, name in self.config.departures:
            departures_at.setdefault(at_tick, []).append(name)
        for tick in range(self.config.ticks):
            self.tick = tick
            self.kernel.clock.charge(self.config.tick_cycles, Category.OS)
            for name in departures_at.get(tick, ()):
                self._retire(name)
            for spec in arrivals_at.get(tick, ()):
                self._arrive(spec)
            for event in events.get(tick, ()):
                self._apply_fault(event)
            self._evaluate_tiers()
            self._admit_arrivals(tick)
            self._dispatch()
        # Drain: no new arrivals, dispatch until the bounded queue is
        # empty (provably <= capacity ticks since dispatch_per_tick>=1).
        for _ in range(self.config.queue_capacity + 1):
            if not self._queue:
                break
            self.tick += 1
            self.kernel.clock.charge(self.config.tick_cycles, Category.OS)
            self._evaluate_tiers()
            self._dispatch()
        self.shutdown()
        self._check_invariants()
        return self._result()

    # -- fault application -------------------------------------------------

    def _apply_fault(self, event):
        if not 0 <= event.tenant_index < len(self.tenants):
            self.skipped_events.append(
                (self.tick, event.kind.value, "no-such-tenant")
            )
            return
        tenant = self.tenants[event.tenant_index]
        if tenant.departed:
            self.skipped_events.append(
                (self.tick, event.kind.value, "departed")
            )
            return
        if event.kind is ServiceFaultKind.TENANT_BURST:
            tenant.burst_until_tick = self.tick + event.duration
            tenant.burst_factor = max(2, event.param)
        elif event.kind is ServiceFaultKind.TENANT_STALL:
            tenant.stall_until_tick = self.tick + event.duration
            tenant.stall_cycles = event.param
        elif event.kind is ServiceFaultKind.TENANT_TAMPER:
            self._tamper(tenant, event)
        elif event.kind is ServiceFaultKind.AEX_STORM:
            self._aex_storm(tenant, event)
        elif event.kind is ServiceFaultKind.REPLICA_SUSPEND:
            self._suspend_replica(tenant, event)
        elif event.kind is ServiceFaultKind.REPLICA_RESUME:
            self._resume_replica(tenant, event)
        else:
            raise ValueError(f"unhandled service fault {event.kind}")

    def _primary_runtime(self, tenant, what):
        """The pool primary's (handle, record) for a fault target, or
        ``None`` (with a skipped-event record) when nothing can serve."""
        pool = self._tenant_pools.get(tenant.spec.name)
        handle = pool.elect_primary() if pool is not None else None
        if handle is None:
            self.skipped_events.append((self.tick, what, "pool-down"))
            return None
        record = self.recovery.member(handle.member_name)
        if record.runtime is None or record.state != RUNNING:
            self.skipped_events.append((self.tick, what, "down"))
            return None
        return handle, record

    def _tamper(self, tenant, event):
        """Forge one swapped-out heap blob of the tenant's primary; the
        tenant's next request on that replica probes it first, which
        must fail stop."""
        target_pair = self._primary_runtime(tenant, "tamper")
        if target_pair is None:
            return
        handle, record = target_pair
        runtime = record.runtime
        backing = self.kernel.backing
        eid = runtime.enclave.enclave_id
        heap = runtime.regions["heap"]
        swapped = sorted(
            v for v in backing.swapped_pages(eid)
            if heap.contains(v)
            and not self.kernel.driver.resident(runtime.enclave, v)
        )
        if not swapped:
            self.skipped_events.append(
                (self.tick, "tamper", "nothing-swapped")
            )
            return
        target = swapped[0]
        blob = backing.get(eid, target)
        backing.substitute(
            eid, target,
            dataclasses.replace(blob, mac="forged-by-chaos"),
        )
        tenant.pending_probe = (handle.index, target)

    def _aex_storm(self, tenant, event):
        """A train of host interrupts against the primary — the §3.2
        interrupt channel.  Must cost only cycles, never correctness."""
        target_pair = self._primary_runtime(tenant, "aex-storm")
        if target_pair is None:
            return
        _, record = target_pair
        runtime = record.runtime
        cpu, tcs = self.kernel.cpu, runtime.tcs
        rounds = max(1, event.param)
        for _ in range(rounds):
            cpu.interrupt(runtime.enclave, tcs)
            cpu.resume_from_interrupt(runtime.enclave, tcs)
        self.metrics.aex_interrupts += rounds

    def _suspend_replica(self, tenant, event):
        """§5.2.1 whole-enclave swap of one replica: every page is
        evicted and the replica is unhealthy until resumed, so the
        pool must carry the tenant on siblings."""
        if tenant.spec.pinned:
            # Suspension is never used on a sealed working set.
            self.skipped_events.append((self.tick, "suspend", "pinned"))
            return
        pool = self._tenant_pools.get(tenant.spec.name)
        if pool is None:
            self.skipped_events.append((self.tick, "suspend", "no-pool"))
            return
        idx = event.param if 0 <= event.param < len(pool.replicas) else 0
        handle = pool.replicas[idx]
        if handle.suspended:
            self.skipped_events.append(
                (self.tick, "suspend", "already-suspended")
            )
            return
        record = self.recovery.member(handle.member_name)
        if record.runtime is None or record.state != RUNNING:
            self.skipped_events.append((self.tick, "suspend", "down"))
            return
        self.kernel.driver.suspend_enclave(record.runtime.enclave)
        handle.suspended = True
        self.metrics.replica_suspends += 1

    def _resume_replica(self, tenant, event):
        """Resume a suspended replica: every suspend-set page must be
        restored (verbatim, MAC-checked) before it serves again."""
        pool = self._tenant_pools.get(tenant.spec.name)
        if pool is None:
            self.skipped_events.append((self.tick, "resume", "no-pool"))
            return
        idx = event.param if 0 <= event.param < len(pool.replicas) else 0
        handle = pool.replicas[idx]
        if not handle.suspended:
            self.skipped_events.append(
                (self.tick, "resume", "not-suspended")
            )
            return
        record = self.recovery.member(handle.member_name)
        if record.runtime is None or record.state != RUNNING:
            self.skipped_events.append((self.tick, "resume", "down"))
            return
        enclave = record.runtime.enclave
        need = len(self.kernel.driver.state(enclave).suspend_set)
        self._make_headroom(need)
        try:
            self.kernel.driver.resume_enclave(enclave)
        except SgxError:
            # EPC could not hold the restore; the replica stays
            # suspended (still structurally unhealthy, still counted).
            self.skipped_events.append(
                (self.tick, "resume", "epc-full")
            )
            return
        handle.suspended = False
        self.metrics.replica_resumes += 1

    # -- degradation tiers -------------------------------------------------

    def _evaluate_tiers(self):
        pressure = epc_pressure_milli(self.kernel)
        self.metrics.peak_epc_pressure_milli = max(
            self.metrics.peak_epc_pressure_milli, pressure
        )
        cfg = self.config
        if pressure >= cfg.tier2_pressure_milli:
            tier = 2
        elif pressure >= cfg.tier1_pressure_milli:
            tier = 1
        else:
            tier = 0
        if tier != self.tier:
            self.metrics.tier_changes += 1
            self.tier = tier
        if tier >= 1:
            self._shrink_one()
        elif tier == 0:
            self._restore_one()

    def _shrinkable(self):
        """(tenant, replica handle) pairs that can balloon down:
        non-pinned, not departed, replica RUNNING and not suspended."""
        pairs = []
        for tenant in self.tenants:
            if tenant.spec.pinned or tenant.departed:
                continue
            pool = self._tenant_pools.get(tenant.spec.name)
            if pool is None:
                continue
            for handle in pool.replicas:
                if pool.healthy(handle):
                    pairs.append((tenant, handle))
        return pairs

    def _shrink_one(self):
        """Tier 1: ask one non-pinned replica (round-robin) to balloon
        down one step.  Pinned tenants are exempt by definition."""
        candidates = self._shrinkable()
        if not candidates:
            return
        tenant, handle = candidates[self._shrink_cursor % len(candidates)]
        self._shrink_cursor += 1
        record = self.recovery.member(handle.member_name)
        runtime = record.runtime
        freed = self.kernel.request_memory_reduction(
            runtime.enclave, self.config.shrink_step_pages
        )
        if freed <= 0:
            return
        state = self.kernel.driver.state(runtime.enclave)
        state.quota_pages = max(BUDGET_FLOOR, state.quota_pages - freed)
        runtime.pager.budget_pages = max(
            BUDGET_FLOOR, runtime.pager.budget_pages - freed
        )
        handle.shrunk_pages += freed
        tenant.shrunk_pages += freed
        self.metrics.balloon_reclaimed_pages += freed

    def _make_headroom(self, pages):
        """Tier-1 ballooning in service of recovery: a relaunch under a
        full EPC cannot even pin its runtime, so shrink the surviving
        non-pinned replicas (bounded rounds) until ``pages`` frames are
        free.  Falling short is survivable — the supervisor's
        pre-flight check fails the attempt cleanly and quarantines the
        replica once the restart budget is gone."""
        for _ in range(8 * max(1, len(self.tenants))):
            if self.kernel.epc.free_pages >= pages:
                return
            before = self.metrics.balloon_reclaimed_pages
            self._shrink_one()
            if self.metrics.balloon_reclaimed_pages == before:
                return  # nobody can give any more

    def _restore_one(self):
        """Tier 0: repay one shrunk replica (round-robin) one step."""
        shrunk = []
        for tenant in self.tenants:
            if tenant.departed:
                continue
            pool = self._tenant_pools.get(tenant.spec.name)
            if pool is None:
                continue
            for handle in pool.replicas:
                if handle.shrunk_pages > 0 and pool.healthy(handle):
                    shrunk.append((tenant, handle))
        if not shrunk:
            return
        tenant, handle = shrunk[self._restore_cursor % len(shrunk)]
        self._restore_cursor += 1
        back = min(self.config.shrink_step_pages, handle.shrunk_pages)
        record = self.recovery.member(handle.member_name)
        runtime = record.runtime
        self.kernel.driver.state(runtime.enclave).quota_pages += back
        runtime.pager.budget_pages += back
        handle.shrunk_pages -= back
        tenant.shrunk_pages -= back

    # -- admission ---------------------------------------------------------

    def _admit_arrivals(self, tick):
        now = self.kernel.clock.cycles
        for tenant in self.tenants:
            if tenant.departed:
                continue
            for _ in range(tenant.arrivals(tick)):
                request = tenant.make_request(now, tick)
                self.metrics.submitted += 1
                reason = self._admit(tenant, request, now)
                if reason is None:
                    self.metrics.admitted += 1
                else:
                    self._finish(RequestResult(
                        tenant=request.tenant,
                        request_id=request.request_id,
                        outcome=OUTCOME_SHED,
                        reason=reason,
                        cycles=0,
                        fetches=0,
                    ))

    def _slo_violated(self, tenant):
        """Whether the tenant's own served-latency p95 exceeds its SLO
        (with enough samples that a cold window cannot fire)."""
        if len(tenant.latency) < tenant.spec.slo_min_samples:
            return False
        p95 = tenant.latency.percentile(950)
        return p95 is not None and p95 > tenant.spec.slo_p95_cycles

    def _admit(self, tenant, request, now):
        """The admission chain; returns a shed reason or None.

        The breaker is checked last: once it admits a half-open probe,
        nothing cheaper may shed it (a lost probe would wedge the
        breaker half-open)."""
        if self.tier >= 2:
            return SERVICE_OVERLOADED
        if self._slo_violated(tenant):
            return SLO_PRESSURE
        if not tenant.paging.admits(now):
            return PAGING_BUDGET
        if not tenant.bucket.try_take(now):
            return RATE_LIMITED
        if len(self._queue) >= self.config.queue_capacity:
            return QUEUE_FULL
        if not tenant.breaker.allow(now):
            return BREAKER_OPEN
        if tenant.pending_probe is not None:
            # Attach the tamper probe only once a request is actually
            # admitted — a probe consumed by a shed request would leave
            # the forged blob waiting on an organic touch that may
            # never come.
            request = dataclasses.replace(
                request, probe_vaddr=tenant.pending_probe
            )
            tenant.pending_probe = None
        self._queue.append((tenant, request))
        self.metrics.peak_queue_depth = max(
            self.metrics.peak_queue_depth, len(self._queue)
        )
        return None

    # -- dispatch and execution --------------------------------------------

    def _dispatch(self):
        for _ in range(self.config.dispatch_per_tick):
            if not self._queue:
                return
            tenant, request = self._queue.popleft()
            self._finish(self._execute(tenant, request))

    def _execute(self, tenant, request):
        """Run one admitted request to a terminal outcome on the pool's
        elected primary."""
        name = tenant.spec.name
        pool = self._tenant_pools.get(name)
        handle = pool.elect_primary() if pool is not None else None
        if handle is None:
            # Every replica is down, suspended, or quarantined: the
            # structured all-unhealthy outcome (never a blind retry).
            tenant.breaker.cancel_probe()
            return self._shed(request, POOL_UNAVAILABLE)
        member = handle.member_name
        record = self.recovery.member(member)
        engine = self._engines[member]
        addr_pool = self._addr_pools[member]
        runtime = record.runtime
        clock = self.kernel.clock
        start = clock.cycles
        fetches0 = runtime.pager.fetches
        degradations0 = runtime.pager.degradations
        retried0 = runtime.paging_ops.retried_calls
        try:
            if request.probe_vaddr is not None:
                probe_replica, probe_vaddr = request.probe_vaddr
                if probe_replica == handle.index:
                    engine.data_access(probe_vaddr)
                else:
                    # The probe names a page in another replica's
                    # address space; a failed-over request must skip
                    # it, not touch a foreign vaddr.  The forged blob
                    # stays armed for that replica's next access.
                    self.metrics.skipped_probes += 1
                    self.skipped_events.append(
                        (self.tick, "probe", "failover")
                    )
            for key, write in zip(request.keys, request.writes):
                if clock.cycles > request.deadline_cycles:
                    tenant.breaker.cancel_probe()
                    self._charge_paging(tenant, runtime, fetches0)
                    return self._shed(
                        request, DEADLINE,
                        cycles=clock.cycles - start,
                        fetches=runtime.pager.fetches - fetches0,
                    )
                engine.data_access(addr_pool[key], write=write)
                engine.compute(OP_COMPUTE_CYCLES + request.stall_cycles)
                tenant.ops_executed += 1
                tenant.progress_if_due(engine)
        except (EnclaveTerminated, IntegrityError) as exc:
            return self._handle_abort(tenant, handle, request, exc, start)
        tenant.breaker.record_success()
        self._charge_paging(tenant, runtime, fetches0)
        tenant.latency.record(clock.cycles - request.issued_cycles)
        absorbed = (
            runtime.pager.degradations > degradations0
            or runtime.paging_ops.retried_calls > retried0
        )
        return RequestResult(
            tenant=name,
            request_id=request.request_id,
            outcome=OUTCOME_DEGRADED if absorbed else OUTCOME_COMPLETED,
            reason="",
            cycles=clock.cycles - start,
            fetches=runtime.pager.fetches - fetches0,
        )

    def _charge_paging(self, tenant, runtime, fetches0):
        tenant.paging.charge(max(0, runtime.pager.fetches - fetches0))

    def _shed(self, request, reason, cycles=0, fetches=0):
        return RequestResult(
            tenant=request.tenant,
            request_id=request.request_id,
            outcome=OUTCOME_SHED,
            reason=reason,
            cycles=cycles,
            fetches=fetches,
        )

    def _handle_abort(self, tenant, handle, request, exc, start):
        """Structured abort on one replica: report to the tenant's
        breaker, route the *replica* through the recovery supervisor,
        and latch the breaker only when the whole pool is exhausted —
        a quarantined primary with a healthy sibling is a failover,
        not an outage."""
        member = handle.member_name
        clock = self.kernel.clock
        tenant.aborts += 1
        if isinstance(exc, EnclaveTerminated) and exc.reason:
            reason = exc.reason.value
        elif isinstance(exc, IntegrityError):
            reason = "integrity"
        else:
            reason = f"unclassified({type(exc).__name__})"
        tenant.breaker.record_failure(clock.cycles)
        self.recovery.mark_down(member, exc)
        self._make_headroom(RELAUNCH_HEADROOM_PAGES)
        quarantined = False
        try:
            self.recovery.recover(member)
            self._bind_replica(tenant, handle)
            tenant.recoveries += 1
            self.metrics.recoveries += 1
        except Quarantined:
            quarantined = True
        except IntegrityAbort:
            # Tamper/rollback evidence during restore itself: retrying
            # cannot launder it — take the replica out of rotation.
            quarantined = True
        except (EnclaveCrashed, ChaosAbort, HostCallDenied):
            quarantined = True
        if quarantined:
            self.metrics.quarantines += 1
            pool = self._tenant_pools.get(tenant.spec.name)
            if pool is None or pool.healthy_count() == 0:
                # No replica left to fail over to: only now does the
                # tenant itself go dark.
                tenant.breaker.latch_open()
        return RequestResult(
            tenant=tenant.spec.name,
            request_id=request.request_id,
            outcome=OUTCOME_ABORTED,
            reason=reason,
            cycles=clock.cycles - start,
            fetches=0,
        )

    def _finish(self, result):
        if result.outcome not in OUTCOMES:
            self.violations.append(
                f"request {result.tenant}#{result.request_id} ended in "
                f"non-terminal outcome {result.outcome!r}"
            )
        self.metrics.record(result)
        self.results.append(result)

    # -- invariants and reporting ------------------------------------------

    def _check_invariants(self):
        terminal = (
            self.metrics.completed + self.metrics.degraded
            + self.metrics.shed + self.metrics.aborted
        )
        if terminal != self.metrics.submitted:
            self.violations.append(
                f"request accounting leak: {self.metrics.submitted} "
                f"submitted but {terminal} terminal outcomes"
            )
        if self._queue:
            self.violations.append(
                f"{len(self._queue)} requests left on the queue after "
                f"drain"
            )
        fleet_names = {r.name for r in self.recovery.fleet()}
        for tenant in self.tenants:
            for r in range(tenant.spec.replicas):
                if tenant.replica_name(r) in fleet_names:
                    self.violations.append(
                        f"replica {tenant.replica_name(r)} survived "
                        f"shutdown"
                    )
        bases = {
            tenant.layout(r).base
            for tenant in self.tenants
            for r in range(tenant.spec.replicas)
        }
        for fault in self.kernel.fault_log:
            if (fault.vaddr not in bases or fault.write or fault.exec_
                    or fault.present):
                self.violations.append(
                    f"unmasked fault leaked to the OS: {fault.vaddr:#x}"
                )
                break

    def _pool_canonicals(self):
        pools = list(self._retired_pools) + [
            self._tenant_pools[name]
            for name in sorted(self._tenant_pools)
        ]
        return tuple(sorted(p.canonical() for p in pools))

    def _result(self):
        stats = self.recovery.stats()
        self.metrics.failovers = sum(
            p.failovers for p in self._retired_pools
        ) + sum(
            p.failovers for p in self._tenant_pools.values()
        )
        fingerprint = repr((
            self.config.seed,
            self.config.ticks,
            self.plan.canonical(),
            self.metrics.canonical(),
            tuple(t.canonical() for t in self.tenants),
            self._pool_canonicals(),
            tuple(sorted(stats.items())),
            self.kernel.clock.cycles,
            self.tier,
            tuple(self.skipped_events),
            tuple(self.violations),
        )).encode()
        return ServiceResult(
            seed=self.config.seed,
            ticks=self.config.ticks,
            outcome_counts=self.metrics.outcome_counts(),
            shed_by_reason=dict(sorted(
                self.metrics.shed_by_reason.items()
            )),
            abort_reasons=dict(sorted(
                self.metrics.abort_reasons.items()
            )),
            metrics=self.metrics.canonical(),
            tenants=tuple(t.canonical() for t in self.tenants),
            pools=self._pool_canonicals(),
            breaker_trips=sum(t.breaker.trips for t in self.tenants),
            breaker_closes=sum(t.breaker.closes for t in self.tenants),
            recoveries=self.metrics.recoveries,
            quarantines=self.metrics.quarantines,
            failovers=self.metrics.failovers,
            cycles=self.kernel.clock.cycles,
            violations=tuple(self.violations),
            digest=hashlib.sha256(fingerprint).hexdigest()[:16],
        )


def run_service(config=None):
    """Boot, drive, drain, and shut down one service; returns the
    :class:`ServiceResult`."""
    return EnclaveService(config).run()
