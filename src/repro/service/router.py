"""The multi-tenant enclave service: a deterministic request router.

One long-lived front door admits YCSB-style traffic from many tenants,
each backed by its own enclave on one shared kernel, all contending
for one EPC.  The robustness core, in admission order:

1. **degradation tier 2** — under extreme EPC pressure new work is
   rejected with a structured ``SERVICE_OVERLOADED`` (reject *before*
   evicting pinned tenants — suspension is never used on a sealed
   working set);
2. **paging budget** — a tenant still in paging debt from earlier
   thrashing may not submit;
3. **token bucket** — per-tenant request-rate admission;
4. **bounded run queue** — a full queue sheds with ``QUEUE_FULL``
   instead of growing without bound;
5. **circuit breaker** — checked *last* so a half-open probe, once
   admitted, is never lost to a cheaper rejection downstream.

Degradation tier 1 (moderate pressure) shrinks non-pinned tenants'
balloon targets — cooperative ballooning, §5.2.1 — before anything is
rejected; tier 0 restores the loans once pressure subsides.

Aborted tenants go through the recovery supervisor's bounded-restart /
verified-replay pipeline; repeated integrity aborts trip the tenant's
breaker, quarantine latches it open.  Every request ends in exactly
one of the four terminal outcomes (see :mod:`repro.service.metrics`);
anything else is recorded as an invariant violation and fails the run.

Everything runs on the simulated clock with seeded randomness only, so
a full service run is double-run digest-identical and ``--jobs N``
bit-identical under :mod:`repro.parallel`.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.clock import Category
from repro.errors import (
    ChaosAbort,
    EnclaveCrashed,
    EnclaveTerminated,
    HostCallDenied,
    IntegrityAbort,
    IntegrityError,
    Quarantined,
)
from repro.host.kernel import HostKernel
from repro.recovery.supervisor import RUNNING, RecoverySupervisor
from repro.runtime.multiprocess import EnclaveSupervisor
from repro.service.chaos import ServiceFaultKind, ServiceFaultPlan
from repro.service.metrics import (
    BREAKER_OPEN,
    DEADLINE,
    OUTCOME_ABORTED,
    OUTCOME_COMPLETED,
    OUTCOME_DEGRADED,
    OUTCOME_SHED,
    OUTCOMES,
    PAGING_BUDGET,
    QUEUE_FULL,
    RATE_LIMITED,
    SERVICE_OVERLOADED,
    RequestResult,
    ServiceMetrics,
    epc_pressure_milli,
)
from repro.service.tenant import BUDGET_FLOOR, Tenant, default_tenants

#: Compute cycles per request op (matches the chaos campaign's rhythm).
OP_COMPUTE_CYCLES = 1_000

#: Free EPC frames the router balloons for before asking the recovery
#: supervisor to relaunch a tenant (eager launch footprint + warm-up).
RELAUNCH_HEADROOM_PAGES = 64


@dataclass
class ServiceConfig:
    """Everything needed to boot and drive one service run."""

    seed: int = 0
    tenants: list = field(default_factory=lambda: default_tenants(4))
    #: Shared EPC.  Deliberately smaller than the fleet's combined
    #: working-set demand (over-commit) so cross-tenant pressure
    #: actually occurs: the default mixed 4-tenant fleet peaks around
    #: 900‰ occupancy here, deep in the tier-1 ballooning band.
    epc_pages: int = 192
    #: Ticks of arrival traffic (dispatch continues until drained).
    ticks: int = 24
    #: Bounded run queue — the only place requests wait.
    queue_capacity: int = 16
    #: Requests dispatched per tick.
    dispatch_per_tick: int = 8
    #: Simulated cycles the router charges per tick (time always
    #: advances, so token buckets refill and cooldowns elapse even
    #: when no work runs).
    tick_cycles: int = 400_000
    #: Degradation thresholds, EPC occupancy in thousandths.
    tier1_pressure_milli: int = 800
    tier2_pressure_milli: int = 920
    #: Balloon pages requested per tier-1 shrink step.
    shrink_step_pages: int = 16
    #: Fault plan; None generates one from the seed, () disables.
    fault_plan: Optional[ServiceFaultPlan] = None


@dataclass(frozen=True)
class ServiceResult:
    """Outcome of one full service run."""

    seed: int
    ticks: int
    outcome_counts: dict
    shed_by_reason: dict
    abort_reasons: dict
    metrics: tuple           # ServiceMetrics.canonical()
    tenants: tuple           # per-tenant canonical tuples
    breaker_trips: int
    breaker_closes: int
    recoveries: int
    quarantines: int
    cycles: int
    violations: tuple
    digest: str

    @property
    def safe(self):
        return not self.violations


class EnclaveService:
    """One bootable instance of the router (one kernel, one fleet)."""

    def __init__(self, config=None):
        self.config = config or ServiceConfig()
        cfg = self.config
        self.kernel = HostKernel(epc_pages=cfg.epc_pages)
        self.recovery = RecoverySupervisor(self.kernel)
        self.tenants = [
            Tenant(spec, i, cfg.seed)
            for i, spec in enumerate(cfg.tenants)
        ]
        self.plan = cfg.fault_plan
        if self.plan is None:
            self.plan = ServiceFaultPlan.generate(
                cfg.seed, cfg.ticks, len(self.tenants),
                tamperable=tuple(
                    t.index for t in self.tenants if not t.spec.pinned
                ),
            )
        self._queue = deque()
        self._engines = {}
        self._gates = {}
        self._pools = {}
        self.metrics = ServiceMetrics()
        self.results = []
        self.violations = []
        self.skipped_events = []
        self.tier = 0
        self.tick = 0
        self._shrink_cursor = 0
        self._restore_cursor = 0
        self._booted = False

    # -- lifecycle ---------------------------------------------------------

    def boot(self):
        """Launch every tenant through the spawn gate (measurement
        pinning + self-paging attribute check) on top of the recovery
        supervisor's launch/attest/seal pipeline."""
        for tenant in self.tenants:
            name = tenant.spec.name
            program = tenant.program(self.config.epc_pages)
            gate = EnclaveSupervisor(
                child_factory=lambda n=name, p=program: (
                    self.recovery.launch(n, p).runtime
                ),
            )
            gate.spawn()
            self._gates[name] = gate
            self._bind(tenant)
        self._booted = True
        return self

    def _bind(self, tenant):
        """(Re)build the engine and pool for a tenant's current
        incarnation — called at boot and after every recovery."""
        record = self.recovery.member(tenant.spec.name)
        program = record.program
        self._engines[tenant.spec.name] = program.engine(record.runtime)
        self._pools[tenant.spec.name] = tenant.pool(record.runtime)

    def shutdown(self):
        """Tear the fleet down and verify EPC parity.  Both supervisor
        layers reclaim; the idempotent reclaim path makes the overlap
        harmless."""
        self.recovery.shutdown()
        for gate in self._gates.values():
            gate.shutdown()
        self._booted = False
        if self.kernel.epc.free_pages != self.kernel.epc.total_pages:
            self.violations.append(
                f"EPC leak after shutdown: {self.kernel.epc.free_pages} "
                f"free of {self.kernel.epc.total_pages}"
            )

    # -- probes ------------------------------------------------------------

    def ready(self):
        """Readiness: booted and at least one tenant serving."""
        if not self._booted:
            return False
        return any(
            record.state == RUNNING for record in self.recovery.fleet()
        )

    def health(self):
        """Liveness/health snapshot (sorted keys, JSON-safe)."""
        fleet_states = {
            record.name: record.state for record in self.recovery.fleet()
        }
        latched = sum(
            1 for t in self.tenants if t.breaker.latched
        )
        if self.tier >= 2:
            status = "overloaded"
        elif self.tier == 1 or latched:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "ready": self.ready(),
            "tier": self.tier,
            "epc_pressure_milli": epc_pressure_milli(self.kernel),
            "queue_depth": len(self._queue),
            "tenants": dict(sorted(fleet_states.items())),
            "breakers": {
                t.spec.name: t.breaker.state
                for t in sorted(self.tenants, key=lambda t: t.spec.name)
            },
        }

    # -- the drive loop ----------------------------------------------------

    def run(self):
        """Drive the configured number of arrival ticks, then drain the
        queue, then shut down; returns a :class:`ServiceResult`."""
        if not self._booted:
            self.boot()
        events = self.plan.by_tick()
        for tick in range(self.config.ticks):
            self.tick = tick
            self.kernel.clock.charge(self.config.tick_cycles, Category.OS)
            for event in events.get(tick, ()):
                self._apply_fault(event)
            self._evaluate_tiers()
            self._admit_arrivals(tick)
            self._dispatch()
        # Drain: no new arrivals, dispatch until the bounded queue is
        # empty (provably <= capacity ticks since dispatch_per_tick>=1).
        for _ in range(self.config.queue_capacity + 1):
            if not self._queue:
                break
            self.tick += 1
            self.kernel.clock.charge(self.config.tick_cycles, Category.OS)
            self._evaluate_tiers()
            self._dispatch()
        self.shutdown()
        self._check_invariants()
        return self._result()

    # -- fault application -------------------------------------------------

    def _apply_fault(self, event):
        tenant = self.tenants[event.tenant_index]
        if event.kind is ServiceFaultKind.TENANT_BURST:
            tenant.burst_until_tick = self.tick + event.duration
            tenant.burst_factor = max(2, event.param)
        elif event.kind is ServiceFaultKind.TENANT_STALL:
            tenant.stall_until_tick = self.tick + event.duration
            tenant.stall_cycles = event.param
        elif event.kind is ServiceFaultKind.TENANT_TAMPER:
            self._tamper(tenant, event)
        else:
            raise ValueError(f"unhandled service fault {event.kind}")

    def _tamper(self, tenant, event):
        """Forge one swapped-out heap blob of the tenant; the tenant's
        next request probes it first, which must fail stop."""
        record = self.recovery.member(tenant.spec.name)
        runtime = record.runtime
        if runtime is None or record.state != RUNNING:
            self.skipped_events.append((self.tick, "tamper", "down"))
            return
        backing = self.kernel.backing
        eid = runtime.enclave.enclave_id
        heap = runtime.regions["heap"]
        swapped = sorted(
            v for v in backing.swapped_pages(eid)
            if heap.contains(v)
            and not self.kernel.driver.resident(runtime.enclave, v)
        )
        if not swapped:
            self.skipped_events.append(
                (self.tick, "tamper", "nothing-swapped")
            )
            return
        target = swapped[0]
        blob = backing.get(eid, target)
        backing.substitute(
            eid, target,
            dataclasses.replace(blob, mac="forged-by-chaos"),
        )
        tenant.pending_probe = target

    # -- degradation tiers -------------------------------------------------

    def _evaluate_tiers(self):
        pressure = epc_pressure_milli(self.kernel)
        self.metrics.peak_epc_pressure_milli = max(
            self.metrics.peak_epc_pressure_milli, pressure
        )
        cfg = self.config
        if pressure >= cfg.tier2_pressure_milli:
            tier = 2
        elif pressure >= cfg.tier1_pressure_milli:
            tier = 1
        else:
            tier = 0
        if tier != self.tier:
            self.metrics.tier_changes += 1
            self.tier = tier
        if tier >= 1:
            self._shrink_one()
        elif tier == 0:
            self._restore_one()

    def _shrinkable(self):
        return [
            t for t in self.tenants
            if not t.spec.pinned
            and self.recovery.member(t.spec.name).state == RUNNING
        ]

    def _shrink_one(self):
        """Tier 1: ask one non-pinned tenant (round-robin) to balloon
        down one step.  Pinned tenants are exempt by definition."""
        candidates = self._shrinkable()
        if not candidates:
            return
        tenant = candidates[self._shrink_cursor % len(candidates)]
        self._shrink_cursor += 1
        record = self.recovery.member(tenant.spec.name)
        runtime = record.runtime
        freed = self.kernel.request_memory_reduction(
            runtime.enclave, self.config.shrink_step_pages
        )
        if freed <= 0:
            return
        state = self.kernel.driver.state(runtime.enclave)
        state.quota_pages = max(BUDGET_FLOOR, state.quota_pages - freed)
        runtime.pager.budget_pages = max(
            BUDGET_FLOOR, runtime.pager.budget_pages - freed
        )
        tenant.shrunk_pages += freed
        self.metrics.balloon_reclaimed_pages += freed

    def _make_headroom(self, pages):
        """Tier-1 ballooning in service of recovery: a relaunch under a
        full EPC cannot even pin its runtime, so shrink the surviving
        non-pinned tenants (bounded rounds) until ``pages`` frames are
        free.  Falling short is survivable — the supervisor's
        pre-flight check fails the attempt cleanly and quarantines the
        tenant once the restart budget is gone."""
        for _ in range(4 * max(1, len(self.tenants))):
            if self.kernel.epc.free_pages >= pages:
                return
            before = self.metrics.balloon_reclaimed_pages
            self._shrink_one()
            if self.metrics.balloon_reclaimed_pages == before:
                return  # nobody can give any more

    def _restore_one(self):
        """Tier 0: repay one shrunk tenant (round-robin) one step."""
        shrunk = [
            t for t in self.tenants
            if t.shrunk_pages > 0
            and self.recovery.member(t.spec.name).state == RUNNING
        ]
        if not shrunk:
            return
        tenant = shrunk[self._restore_cursor % len(shrunk)]
        self._restore_cursor += 1
        back = min(self.config.shrink_step_pages, tenant.shrunk_pages)
        record = self.recovery.member(tenant.spec.name)
        runtime = record.runtime
        self.kernel.driver.state(runtime.enclave).quota_pages += back
        runtime.pager.budget_pages += back
        tenant.shrunk_pages -= back

    # -- admission ---------------------------------------------------------

    def _admit_arrivals(self, tick):
        now = self.kernel.clock.cycles
        for tenant in self.tenants:
            for _ in range(tenant.arrivals(tick)):
                request = tenant.make_request(now, tick)
                self.metrics.submitted += 1
                reason = self._admit(tenant, request, now)
                if reason is None:
                    self.metrics.admitted += 1
                else:
                    self._finish(RequestResult(
                        tenant=request.tenant,
                        request_id=request.request_id,
                        outcome=OUTCOME_SHED,
                        reason=reason,
                        cycles=0,
                        fetches=0,
                    ))

    def _admit(self, tenant, request, now):
        """The admission chain; returns a shed reason or None.

        The breaker is checked last: once it admits a half-open probe,
        nothing cheaper may shed it (a lost probe would wedge the
        breaker half-open)."""
        if self.tier >= 2:
            return SERVICE_OVERLOADED
        if not tenant.paging.admits(now):
            return PAGING_BUDGET
        if not tenant.bucket.try_take(now):
            return RATE_LIMITED
        if len(self._queue) >= self.config.queue_capacity:
            return QUEUE_FULL
        if not tenant.breaker.allow(now):
            return BREAKER_OPEN
        if tenant.pending_probe is not None:
            # Attach the tamper probe only once a request is actually
            # admitted — a probe consumed by a shed request would leave
            # the forged blob waiting on an organic touch that may
            # never come.
            request = dataclasses.replace(
                request, probe_vaddr=tenant.pending_probe
            )
            tenant.pending_probe = None
        self._queue.append((tenant, request))
        self.metrics.peak_queue_depth = max(
            self.metrics.peak_queue_depth, len(self._queue)
        )
        return None

    # -- dispatch and execution --------------------------------------------

    def _dispatch(self):
        for _ in range(self.config.dispatch_per_tick):
            if not self._queue:
                return
            tenant, request = self._queue.popleft()
            self._finish(self._execute(tenant, request))

    def _execute(self, tenant, request):
        """Run one admitted request to a terminal outcome."""
        name = tenant.spec.name
        record = self.recovery.member(name)
        if record.state != RUNNING:
            # Queued before the tenant went down and recovery failed.
            tenant.breaker.cancel_probe()
            return self._shed(request, BREAKER_OPEN)
        engine = self._engines[name]
        pool = self._pools[name]
        runtime = record.runtime
        clock = self.kernel.clock
        start = clock.cycles
        fetches0 = runtime.pager.fetches
        degradations0 = runtime.pager.degradations
        retried0 = runtime.paging_ops.retried_calls
        try:
            if request.probe_vaddr is not None:
                engine.data_access(request.probe_vaddr)
            for key, write in zip(request.keys, request.writes):
                if clock.cycles > request.deadline_cycles:
                    tenant.breaker.cancel_probe()
                    self._charge_paging(tenant, runtime, fetches0)
                    return self._shed(
                        request, DEADLINE,
                        cycles=clock.cycles - start,
                        fetches=runtime.pager.fetches - fetches0,
                    )
                engine.data_access(pool[key], write=write)
                engine.compute(OP_COMPUTE_CYCLES + request.stall_cycles)
                tenant.ops_executed += 1
                tenant.progress_if_due(engine)
        except (EnclaveTerminated, IntegrityError) as exc:
            return self._handle_abort(tenant, request, exc, start)
        tenant.breaker.record_success()
        self._charge_paging(tenant, runtime, fetches0)
        absorbed = (
            runtime.pager.degradations > degradations0
            or runtime.paging_ops.retried_calls > retried0
        )
        return RequestResult(
            tenant=name,
            request_id=request.request_id,
            outcome=OUTCOME_DEGRADED if absorbed else OUTCOME_COMPLETED,
            reason="",
            cycles=clock.cycles - start,
            fetches=runtime.pager.fetches - fetches0,
        )

    def _charge_paging(self, tenant, runtime, fetches0):
        tenant.paging.charge(max(0, runtime.pager.fetches - fetches0))

    def _shed(self, request, reason, cycles=0, fetches=0):
        return RequestResult(
            tenant=request.tenant,
            request_id=request.request_id,
            outcome=OUTCOME_SHED,
            reason=reason,
            cycles=cycles,
            fetches=fetches,
        )

    def _handle_abort(self, tenant, request, exc, start):
        """Structured abort: report to the breaker, route the tenant
        through the recovery supervisor, latch on quarantine."""
        name = tenant.spec.name
        clock = self.kernel.clock
        tenant.aborts += 1
        if isinstance(exc, EnclaveTerminated) and exc.reason:
            reason = exc.reason.value
        elif isinstance(exc, IntegrityError):
            reason = "integrity"
        else:
            reason = f"unclassified({type(exc).__name__})"
        tenant.breaker.record_failure(clock.cycles)
        self.recovery.mark_down(name, exc)
        self._make_headroom(RELAUNCH_HEADROOM_PAGES)
        try:
            self.recovery.recover(name)
            self._bind(tenant)
            tenant.recoveries += 1
            self.metrics.recoveries += 1
        except Quarantined:
            tenant.breaker.latch_open()
            self.metrics.quarantines += 1
        except IntegrityAbort:
            # Tamper/rollback evidence during restore itself: retrying
            # cannot launder it — take the tenant out of rotation.
            tenant.breaker.latch_open()
            self.metrics.quarantines += 1
        except (EnclaveCrashed, ChaosAbort, HostCallDenied):
            tenant.breaker.latch_open()
            self.metrics.quarantines += 1
        return RequestResult(
            tenant=name,
            request_id=request.request_id,
            outcome=OUTCOME_ABORTED,
            reason=reason,
            cycles=clock.cycles - start,
            fetches=0,
        )

    def _finish(self, result):
        if result.outcome not in OUTCOMES:
            self.violations.append(
                f"request {result.tenant}#{result.request_id} ended in "
                f"non-terminal outcome {result.outcome!r}"
            )
        self.metrics.record(result)
        self.results.append(result)

    # -- invariants and reporting ------------------------------------------

    def _check_invariants(self):
        terminal = (
            self.metrics.completed + self.metrics.degraded
            + self.metrics.shed + self.metrics.aborted
        )
        if terminal != self.metrics.submitted:
            self.violations.append(
                f"request accounting leak: {self.metrics.submitted} "
                f"submitted but {terminal} terminal outcomes"
            )
        if self._queue:
            self.violations.append(
                f"{len(self._queue)} requests left on the queue after "
                f"drain"
            )
        for tenant in self.tenants:
            record = self.recovery.member(tenant.spec.name) \
                if tenant.spec.name in [
                    r.name for r in self.recovery.fleet()
                ] else None
            if record is not None:
                self.violations.append(
                    f"tenant {tenant.spec.name} survived shutdown"
                )
        for fault in self.kernel.fault_log:
            bases = {t.layout.base for t in self.tenants}
            if (fault.vaddr not in bases or fault.write or fault.exec_
                    or fault.present):
                self.violations.append(
                    f"unmasked fault leaked to the OS: {fault.vaddr:#x}"
                )
                break

    def _result(self):
        stats = self.recovery.stats()
        fingerprint = repr((
            self.config.seed,
            self.config.ticks,
            self.plan.canonical(),
            self.metrics.canonical(),
            tuple(t.canonical() for t in self.tenants),
            tuple(sorted(stats.items())),
            self.kernel.clock.cycles,
            self.tier,
            tuple(self.skipped_events),
            tuple(self.violations),
        )).encode()
        return ServiceResult(
            seed=self.config.seed,
            ticks=self.config.ticks,
            outcome_counts=self.metrics.outcome_counts(),
            shed_by_reason=dict(sorted(
                self.metrics.shed_by_reason.items()
            )),
            abort_reasons=dict(sorted(
                self.metrics.abort_reasons.items()
            )),
            metrics=self.metrics.canonical(),
            tenants=tuple(t.canonical() for t in self.tenants),
            breaker_trips=sum(t.breaker.trips for t in self.tenants),
            breaker_closes=sum(t.breaker.closes for t in self.tenants),
            recoveries=self.metrics.recoveries,
            quarantines=self.metrics.quarantines,
            cycles=self.kernel.clock.cycles,
            violations=tuple(self.violations),
            digest=hashlib.sha256(fingerprint).hexdigest()[:16],
        )


def run_service(config=None):
    """Boot, drive, drain, and shut down one service; returns the
    :class:`ServiceResult`."""
    return EnclaveService(config).run()
