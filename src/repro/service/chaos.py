"""Service-level fault kinds: the chaos harness attacks the *service*.

The core chaos plans (:mod:`repro.chaos.plan`) script a hostile host
against one enclave.  The service adds a second adversary tier — badly
behaved (or hostile) *tenants* and the host squeezing the whole fleet:

* ``TENANT_BURST``  — a tenant multiplies its offered load for a
  window of ticks; admission control must shed the excess with
  structured rejections instead of starving neighbours.
* ``TENANT_STALL``  — a tenant's requests stop making progress (each
  op burns extra simulated cycles); the per-request deadline must
  cancel them instead of letting them camp on the run queue.
* ``TENANT_TAMPER`` — the host forges a swapped-out blob of one
  tenant; the next fetch must fail stop with ``IntegrityAbort``, the
  breaker must trip, and recovery + half-open must bring the tenant
  back.

These are a separate enum from :class:`repro.chaos.plan.FaultKind` on
purpose: the campaign's ``_apply`` dispatch and its frozen
model-checker witnesses enumerate that enum exhaustively, and service
faults target a *tenant of a fleet*, not *the* enclave.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum


class ServiceFaultKind(str, Enum):
    TENANT_BURST = "tenant-burst"
    TENANT_STALL = "tenant-stall"
    TENANT_TAMPER = "tenant-tamper"


@dataclass(frozen=True)
class ServiceFaultEvent:
    """One scheduled act against one tenant."""

    kind: ServiceFaultKind
    at_tick: int
    tenant_index: int
    #: Burst: load multiplier.  Stall: extra cycles per op.  Tamper:
    #: unused (the target page is drawn from live swapped state).
    param: int = 0
    #: Ticks the effect persists (burst / stall windows).
    duration: int = 0


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Seed-deterministic schedule of service faults.

    Regenerating with the same ``(seed, ticks, n_tenants, tamperable)``
    yields the identical plan — the property that lets a service
    failure be replayed from nothing but its seed.
    """

    seed: int
    ticks: int
    events: tuple

    def by_tick(self):
        table = {}
        for event in self.events:
            table.setdefault(event.at_tick, []).append(event)
        return table

    def kinds(self):
        return {event.kind for event in self.events}

    @staticmethod
    def generate(seed, ticks, n_tenants, tamperable=()):
        """Generate a plan for a fleet of ``n_tenants``.

        ``tamperable`` lists tenant indices with pageable working sets
        (pin_all tenants never swap after seal, so forging their
        backing store is a no-op and tamper events skip them).  When
        any tenant is tamperable, the plan always schedules at least
        two tampers against one victim — the acceptance criterion
        requires an observable breaker trip *and* half-open recovery,
        which needs repeated integrity failures on one tenant.
        """
        rng = random.Random((seed << 8) ^ 0x5EC7)
        events = []
        tamperable = tuple(sorted(tamperable))
        if tamperable and ticks >= 8:
            victim = tamperable[rng.randrange(len(tamperable))]
            first = 2 + rng.randrange(max(1, ticks // 4))
            second = first + 1
            events.append(ServiceFaultEvent(
                ServiceFaultKind.TENANT_TAMPER, first, victim
            ))
            events.append(ServiceFaultEvent(
                ServiceFaultKind.TENANT_TAMPER, second, victim
            ))
        n_random = max(2, ticks // 10)
        for i in range(n_random):
            # Alternate kinds so every plan exercises both the burst
            # and the stall machinery (coin flips can starve one).
            kind = (ServiceFaultKind.TENANT_BURST
                    if i % 2 == 0
                    else ServiceFaultKind.TENANT_STALL)
            tenant = rng.randrange(n_tenants)
            at = rng.randrange(1, max(2, ticks - 2))
            if kind is ServiceFaultKind.TENANT_BURST:
                events.append(ServiceFaultEvent(
                    kind, at, tenant,
                    param=3 + rng.randrange(4),
                    duration=2 + rng.randrange(3),
                ))
            else:
                events.append(ServiceFaultEvent(
                    kind, at, tenant,
                    param=20_000_000 + rng.randrange(4) * 10_000_000,
                    duration=1 + rng.randrange(3),
                ))
        events.sort(key=lambda e: (e.at_tick, e.tenant_index,
                                   e.kind.value))
        return ServiceFaultPlan(seed=seed, ticks=ticks,
                                events=tuple(events))

    def canonical(self):
        return tuple(
            (e.kind.value, e.at_tick, e.tenant_index, e.param,
             e.duration)
            for e in self.events
        )
