"""Service-level fault kinds: the chaos harness attacks the *service*.

The core chaos plans (:mod:`repro.chaos.plan`) script a hostile host
against one enclave.  The service adds a second adversary tier — badly
behaved (or hostile) *tenants* and the host squeezing the whole fleet:

* ``TENANT_BURST``  — a tenant multiplies its offered load for a
  window of ticks; admission control must shed the excess with
  structured rejections instead of starving neighbours.
* ``TENANT_STALL``  — a tenant's requests stop making progress (each
  op burns extra simulated cycles); the per-request deadline must
  cancel them instead of letting them camp on the run queue.
* ``TENANT_TAMPER`` — the host forges a swapped-out blob of one
  tenant; the next fetch must fail stop with ``IntegrityAbort``, the
  breaker must trip, and recovery + half-open must bring the tenant
  back.
* ``AEX_STORM``     — the host fires a train of asynchronous exits
  (interrupt + resume) at a tenant's primary replica — the §3.2
  interrupt-based controlled channel at service scale.  The storm
  must cost only simulated cycles; it must not change any request's
  outcome or the run digest's safety verdict.
* ``REPLICA_SUSPEND`` / ``REPLICA_RESUME`` — the host suspends one
  replica (evicting its whole working set, §5.2.1) and later resumes
  it.  A suspended replica is unhealthy: the pool must fail requests
  over to a sibling, and resume must restore the replica verbatim.

These are a separate enum from :class:`repro.chaos.plan.FaultKind` on
purpose: the campaign's ``_apply`` dispatch and its frozen
model-checker witnesses enumerate that enum exhaustively, and service
faults target a *tenant of a fleet*, not *the* enclave.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum


class ServiceFaultKind(str, Enum):
    TENANT_BURST = "tenant-burst"
    TENANT_STALL = "tenant-stall"
    TENANT_TAMPER = "tenant-tamper"
    AEX_STORM = "aex-storm"
    REPLICA_SUSPEND = "replica-suspend"
    REPLICA_RESUME = "replica-resume"


@dataclass(frozen=True)
class ServiceFaultEvent:
    """One scheduled act against one tenant."""

    kind: ServiceFaultKind
    at_tick: int
    tenant_index: int
    #: Burst: load multiplier.  Stall: extra cycles per op.  Tamper:
    #: unused (the target page is drawn from live swapped state).
    #: AEX storm: number of interrupt/resume rounds.  Replica
    #: suspend/resume: replica index within the tenant's pool.
    param: int = 0
    #: Ticks the effect persists (burst / stall windows).
    duration: int = 0

    def to_json(self):
        return {
            "kind": self.kind.value,
            "at_tick": self.at_tick,
            "tenant_index": self.tenant_index,
            "param": self.param,
            "duration": self.duration,
        }

    @staticmethod
    def from_json(payload):
        try:
            kind = ServiceFaultKind(payload["kind"])
        except ValueError:
            raise ValueError(
                f"unknown service fault kind {payload['kind']!r}"
            ) from None
        return ServiceFaultEvent(
            kind=kind,
            at_tick=int(payload["at_tick"]),
            tenant_index=int(payload["tenant_index"]),
            param=int(payload.get("param", 0)),
            duration=int(payload.get("duration", 0)),
        )


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Seed-deterministic schedule of service faults.

    Regenerating with the same ``(seed, ticks, n_tenants, tamperable)``
    yields the identical plan — the property that lets a service
    failure be replayed from nothing but its seed.  Plans also
    round-trip through JSON (``to_json``/``from_json``) so a
    model-checker witness or a hand-built regression scenario can be
    frozen under ``tests/fixtures/chaos/`` and replayed with
    ``repro serve --plan``.
    """

    seed: int
    ticks: int
    events: tuple

    def by_tick(self):
        table = {}
        for event in self.events:
            table.setdefault(event.at_tick, []).append(event)
        return table

    def kinds(self):
        return {event.kind for event in self.events}

    def to_json(self):
        return {
            "seed": self.seed,
            "ticks": self.ticks,
            "events": [event.to_json() for event in self.events],
        }

    @staticmethod
    def from_json(payload):
        events = tuple(
            ServiceFaultEvent.from_json(entry)
            for entry in payload.get("events", ())
        )
        return ServiceFaultPlan(
            seed=int(payload["seed"]),
            ticks=int(payload["ticks"]),
            events=events,
        )

    @staticmethod
    def generate(seed, ticks, n_tenants, tamperable=(), replicas=1):
        """Generate a plan for a fleet of ``n_tenants``.

        ``tamperable`` lists tenant indices with pageable working sets
        (pin_all tenants never swap after seal, so forging their
        backing store is a no-op and tamper events skip them).  When
        any tenant is tamperable, the plan always schedules at least
        two tampers against one victim — the acceptance criterion
        requires an observable breaker trip *and* half-open recovery,
        which needs repeated integrity failures on one tenant.

        With ``replicas > 1`` the plan also attacks the pool layer:
        an AEX storm against the victim, a suspend/resume pair against
        replica 0 of one tenant (forcing a failover window), and a
        *quarantine ladder* — enough extra tampers against the victim
        that its primary replica exhausts the restart budget and the
        pool must re-elect.
        """
        rng = random.Random((seed << 8) ^ 0x5EC7)
        events = []
        tamperable = tuple(sorted(tamperable))
        victim = None
        if tamperable and ticks >= 8:
            victim = tamperable[rng.randrange(len(tamperable))]
            first = 2 + rng.randrange(max(1, ticks // 4))
            second = first + 1
            events.append(ServiceFaultEvent(
                ServiceFaultKind.TENANT_TAMPER, first, victim
            ))
            events.append(ServiceFaultEvent(
                ServiceFaultKind.TENANT_TAMPER, second, victim
            ))
            if replicas > 1:
                # Quarantine ladder: the supervisor allows
                # max_restarts relaunches per replica; two more
                # tampers push the primary past the budget so the
                # failover path (not just recovery) must carry the
                # tenant.  Spaced two ticks apart so each abort has a
                # dispatch window to land in.
                events.append(ServiceFaultEvent(
                    ServiceFaultKind.TENANT_TAMPER, second + 2, victim
                ))
                events.append(ServiceFaultEvent(
                    ServiceFaultKind.TENANT_TAMPER, second + 4, victim
                ))
        if replicas > 1 and ticks >= 8:
            storm_target = (victim if victim is not None
                            else rng.randrange(n_tenants))
            events.append(ServiceFaultEvent(
                ServiceFaultKind.AEX_STORM,
                1 + rng.randrange(max(1, ticks // 3)),
                storm_target,
                param=4 + rng.randrange(8),
            ))
            # Suspension is never used on a sealed (pin_all) working
            # set, so draw the target from the pageable tenants.
            suspend_tenant = (
                tamperable[rng.randrange(len(tamperable))]
                if tamperable else rng.randrange(n_tenants)
            )
            suspend_at = 2 + rng.randrange(max(1, ticks // 3))
            events.append(ServiceFaultEvent(
                ServiceFaultKind.REPLICA_SUSPEND, suspend_at,
                suspend_tenant, param=0,
            ))
            events.append(ServiceFaultEvent(
                ServiceFaultKind.REPLICA_RESUME,
                suspend_at + 2 + rng.randrange(2),
                suspend_tenant, param=0,
            ))
        n_random = max(2, ticks // 10)
        for i in range(n_random):
            # Alternate kinds so every plan exercises both the burst
            # and the stall machinery (coin flips can starve one).
            kind = (ServiceFaultKind.TENANT_BURST
                    if i % 2 == 0
                    else ServiceFaultKind.TENANT_STALL)
            tenant = rng.randrange(n_tenants)
            at = rng.randrange(1, max(2, ticks - 2))
            if kind is ServiceFaultKind.TENANT_BURST:
                events.append(ServiceFaultEvent(
                    kind, at, tenant,
                    param=3 + rng.randrange(4),
                    duration=2 + rng.randrange(3),
                ))
            else:
                events.append(ServiceFaultEvent(
                    kind, at, tenant,
                    param=20_000_000 + rng.randrange(4) * 10_000_000,
                    duration=1 + rng.randrange(3),
                ))
        events.sort(key=lambda e: (e.at_tick, e.tenant_index,
                                   e.kind.value))
        return ServiceFaultPlan(seed=seed, ticks=ticks,
                                events=tuple(events))

    def canonical(self):
        return tuple(
            (e.kind.value, e.at_tick, e.tenant_index, e.param,
             e.duration)
            for e in self.events
        )
