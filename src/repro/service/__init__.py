"""Multi-tenant enclave service: deterministic admission, backpressure,
and graceful degradation over one shared EPC (see docs/service.md)."""

from repro.service.admission import PagingBudget, TokenBucket
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.chaos import (
    ServiceFaultEvent,
    ServiceFaultKind,
    ServiceFaultPlan,
)
from repro.service.metrics import (
    OUTCOME_ABORTED,
    OUTCOME_COMPLETED,
    OUTCOME_DEGRADED,
    OUTCOME_SHED,
    OUTCOMES,
    SHED_REASONS,
    RequestResult,
    ServiceMetrics,
)
from repro.service.router import (
    EnclaveService,
    ServiceConfig,
    ServiceResult,
    run_service,
)
from repro.service.tenant import Tenant, TenantSpec, default_tenants

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "OUTCOMES",
    "OUTCOME_ABORTED",
    "OUTCOME_COMPLETED",
    "OUTCOME_DEGRADED",
    "OUTCOME_SHED",
    "SHED_REASONS",
    "CircuitBreaker",
    "EnclaveService",
    "PagingBudget",
    "RequestResult",
    "ServiceConfig",
    "ServiceFaultEvent",
    "ServiceFaultKind",
    "ServiceFaultPlan",
    "ServiceMetrics",
    "ServiceResult",
    "Tenant",
    "TenantSpec",
    "TokenBucket",
    "default_tenants",
    "run_service",
]
