"""Admission control for the multi-tenant enclave service.

Two deterministic rate controls guard the front door:

* :class:`TokenBucket` — classic token-bucket admission, refilled from
  the *simulated* clock (never wall time), one bucket per tenant.  A
  tenant that floods the service runs out of tokens and is shed with a
  structured rejection instead of starving its neighbours.

* :class:`PagingBudget` — the same bucket shape, but the currency is
  EPC page fetches rather than requests.  Paging is the contended
  resource in this regime (many tenants, one EPC): a tenant whose
  requests thrash pays its paging debt before it may submit again, so
  one thrashing working set cannot monopolize the shared paging
  bandwidth.  Debt is charged *after* execution (the fetch count is
  only known then), which is why the balance may go negative — the
  bucket then refuses admission until simulated time repays it.

Everything is integer arithmetic over cycle counts, so admission
decisions are bit-reproducible across runs and pool widths.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TokenBucket:
    """Deterministic token bucket refilled from simulated cycles.

    ``cycles_per_token`` is the refill period; ``capacity`` bounds the
    burst.  ``last_refill_cycles`` advances only in whole-token steps so
    fractional remainders carry over exactly (no drift, no floats).
    """

    capacity: int
    cycles_per_token: int
    tokens: int = None
    last_refill_cycles: int = 0

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("bucket capacity must be at least 1")
        if self.cycles_per_token < 1:
            raise ValueError("refill period must be at least 1 cycle")
        if self.tokens is None:
            self.tokens = self.capacity

    def refill(self, now_cycles):
        """Credit whole tokens earned since the last refill."""
        elapsed = now_cycles - self.last_refill_cycles
        if elapsed <= 0:
            return
        earned = elapsed // self.cycles_per_token
        if earned > 0:
            self.tokens = min(self.capacity, self.tokens + earned)
            self.last_refill_cycles += earned * self.cycles_per_token

    def try_take(self, now_cycles, count=1):
        """Admit ``count`` units if the bucket can pay; returns bool."""
        self.refill(now_cycles)
        if self.tokens >= count:
            self.tokens -= count
            return True
        return False


@dataclass
class PagingBudget:
    """A per-tenant budget of EPC page fetches, charged in arrears.

    ``allowance`` pages regenerate every ``cycles_per_page`` simulated
    cycles up to ``capacity``.  :meth:`charge` books the fetches a
    request actually performed (possibly driving the balance negative);
    :meth:`admits` refuses new work while the balance is non-positive.
    """

    capacity: int
    cycles_per_page: int
    balance: int = None
    last_refill_cycles: int = 0

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("paging budget capacity must be at least 1")
        if self.cycles_per_page < 1:
            raise ValueError("refill period must be at least 1 cycle")
        if self.balance is None:
            self.balance = self.capacity

    def refill(self, now_cycles):
        elapsed = now_cycles - self.last_refill_cycles
        if elapsed <= 0:
            return
        earned = elapsed // self.cycles_per_page
        if earned > 0:
            self.balance = min(self.capacity, self.balance + earned)
            self.last_refill_cycles += earned * self.cycles_per_page

    def admits(self, now_cycles):
        """Whether the tenant may submit new work right now."""
        self.refill(now_cycles)
        return self.balance > 0

    def charge(self, pages):
        """Book ``pages`` fetches against the budget (post-execution)."""
        if pages < 0:
            raise ValueError(f"negative paging charge: {pages}")
        self.balance -= pages
