"""Tenants: per-client enclaves multiplexed over one shared EPC.

Each tenant is one paying client of the service: its own enclave (own
layout base, own paging policy, own quota), its own YCSB-style key
distribution, and its own admission state (token bucket, paging
budget, circuit breaker).  All tenants' enclaves live on the *same*
:class:`~repro.host.kernel.HostKernel` and contend for the same EPC —
the regime the paper never measured and the one where the robustness
machinery earns its keep.

Tenants are launched and restored through
:class:`~repro.recovery.supervisor.RecoverySupervisor`, so an aborted
tenant goes through the full bounded-restart / verified-replay /
quarantine pipeline rather than being silently relaunched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.config import SystemConfig
from repro.recovery.program import EnclaveProgram
from repro.runtime.libos import EnclaveLayout
from repro.runtime.rate_limit import ProgressKind
from repro.service.admission import PagingBudget, TokenBucket
from repro.service.breaker import CircuitBreaker
from repro.service.metrics import LatencyWindow
from repro.sgx.params import PAGE_SIZE
from repro.workloads.ycsb import make_generator

#: Address-space stride between tenant enclaves (distinct bases, the
#: multi-enclave idiom from experiments/multi_enclave.py).
BASE_STRIDE = 0x10_0000_0000

#: Hard ceiling on pool width; fixes the replica address-space grid so
#: a tenant's replica bases never collide with another tenant's,
#: whatever mix of pool sizes a config chooses.
MAX_REPLICAS = 4

#: Heap pages each tenant's workload churns over.  Larger than any
#: tenant's resident budget, so every tenant pages under load.
POOL_PAGES = 96

#: Pages a pin_all tenant preloads and seals (its whole working set —
#: pinned tenants do not page after seal and are never balloon-shrunk).
PINNED_POOL_PAGES = 40

#: Floor for balloon-shrunk resident budgets: below this a tenant
#: cannot hold its pinned runtime region and shrinking becomes an
#: attack, not a negotiation.
BUDGET_FLOOR = 24


def tenant_config(policy_name, epc_pages, quota_pages):
    """A small paging-heavy :class:`SystemConfig` for one tenant
    (mirrors the chaos campaign's sizing so faults have teeth)."""
    common = dict(
        epc_pages=epc_pages,
        quota_pages=quota_pages,
        runtime_pages=8,
        code_pages=16,
        data_pages=16,
        heap_pages=256,
    )
    if policy_name == "pin_all":
        return SystemConfig.for_policy(
            "pin_all", enclave_managed_budget=min(120, quota_pages - 8),
            **common
        )
    if policy_name == "clusters":
        return SystemConfig.for_policy(
            "clusters", cluster_pages=8, enclave_managed_budget=64,
            **common
        )
    if policy_name == "rate_limit":
        return SystemConfig.for_policy(
            "rate_limit", max_faults_per_progress=64, grace_faults=512,
            enclave_managed_budget=64, **common
        )
    raise ValueError(f"service does not cover policy {policy_name!r}")


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one tenant."""

    name: str
    policy: str = "rate_limit"          # pin_all | clusters | rate_limit
    distribution: str = "uniform"       # YCSB generator name
    #: Requests this tenant submits per router tick (its offered load).
    arrivals_per_tick: int = 2
    #: Ops per request (key accesses against the tenant's pool).
    ops_per_request: int = 8
    #: Per-enclave EPC quota; the sum across tenants may exceed the
    #: shared EPC (that over-commit is the point).
    quota_pages: int = 128
    #: Token-bucket admission: burst capacity and refill period.
    bucket_capacity: int = 8
    cycles_per_token: int = 40_000
    #: Paging budget: fetch allowance and regeneration period.
    paging_capacity: int = 256
    cycles_per_page: int = 2_000
    #: Deadline per request, charged in simulated cycles.
    deadline_cycles: int = 60_000_000
    #: Breaker trip threshold (consecutive structured aborts).
    breaker_trip_after: int = 2
    #: Pool width: replica enclaves booted for this tenant.  Requests
    #: run on the elected primary and fail over to siblings when it is
    #: down, suspended, or quarantined.
    replicas: int = 1
    #: SLO: p95 latency target on the simulated clock.  A tenant whose
    #: sliding-window p95 exceeds this sheds its own new arrivals
    #: (structured, ``slo-pressure``) before healthy tenants degrade.
    slo_p95_cycles: int = 50_000_000
    #: Latency samples required before the SLO check can fire (a cold
    #: window must not shed the first requests of the run).
    slo_min_samples: int = 8
    #: Sliding-window size for the latency percentiles.
    slo_window: int = 32

    def __post_init__(self):
        if not 1 <= self.replicas <= MAX_REPLICAS:
            raise ValueError(
                f"pool width must be 1..{MAX_REPLICAS}, "
                f"got {self.replicas}"
            )

    @property
    def pinned(self):
        """pin_all tenants hold sealed working sets: never balloon-
        shrunk (tier 1) and never evicted (tier 2 rejects instead)."""
        return self.policy == "pin_all"


@dataclass(frozen=True)
class Request:
    """One admitted unit of work."""

    tenant: str
    request_id: int
    keys: tuple                  # pool indices to touch, in order
    writes: tuple                # parallel write flags
    issued_cycles: int
    deadline_cycles: int         # absolute simulated-cycle deadline
    #: Extra compute charged per op while the tenant is stalled
    #: (TENANT_STALL fault) — drives the request into its deadline.
    stall_cycles: int = 0
    #: ``(replica_index, vaddr)`` the first op must touch
    #: (TENANT_TAMPER probe), or None.  Replica-scoped because the
    #: vaddr only exists in the forged replica's address space.
    probe_vaddr: Optional[tuple] = None


class Tenant:
    """Runtime state of one tenant inside the service."""

    def __init__(self, spec, index, service_seed):
        self.spec = spec
        self.index = index
        self.pool_pages = (
            PINNED_POOL_PAGES if spec.pinned else POOL_PAGES
        )
        # Workload randomness: one stream per tenant, decoupled from
        # every other tenant and from the fault plan.
        self._rng = random.Random(
            (service_seed << 16) ^ (index * 0x9E37) ^ 0x5E21
        )
        self._generator = make_generator(
            spec.distribution, self.pool_pages, rng=self._rng
        )
        self.bucket = TokenBucket(
            capacity=spec.bucket_capacity,
            cycles_per_token=spec.cycles_per_token,
        )
        self.paging = PagingBudget(
            capacity=spec.paging_capacity,
            cycles_per_page=spec.cycles_per_page,
        )
        self.breaker = CircuitBreaker(trip_after=spec.breaker_trip_after)
        self.latency = LatencyWindow(capacity=spec.slo_window)
        # Fault-plan state (set by the service chaos layer).
        self.burst_until_tick = -1
        self.burst_factor = 1
        self.stall_until_tick = -1
        self.stall_cycles = 0
        #: Pending integrity probe: ``(replica_index, vaddr)``.  The
        #: vaddr lives in one replica's address space; a request that
        #: fails over to a sibling must *skip* the probe (and the
        #: router re-arms it) rather than touch a foreign address.
        self.pending_probe = None
        #: Retired mid-run (live churn): no new arrivals, no faults.
        self.departed = False
        # Degradation bookkeeping (tier-1 balloon shrink, restorable).
        self.shrunk_pages = 0
        # Lifetime counters.
        self.requests_issued = 0
        self.ops_executed = 0
        self.aborts = 0
        self.recoveries = 0

    # -- launch ------------------------------------------------------------

    def layout(self, replica=0):
        """Address-space layout for one replica.  Replicas occupy a
        fixed grid of ``MAX_REPLICAS`` slots per tenant so a request
        address unambiguously names ``(tenant, replica)``."""
        slot = self.index * MAX_REPLICAS + replica
        return EnclaveLayout(
            base=BASE_STRIDE * (slot + 1),
            runtime_pages=8, code_pages=16, data_pages=16,
            heap_pages=256,
        )

    def replica_name(self, replica):
        return f"{self.spec.name}/r{replica}"

    def program(self, epc_pages, replica=0):
        """The relaunchable recipe the recovery supervisor drives for
        one replica.  All replicas share the tenant's config and
        warmup, so any replica can serve any request verbatim."""
        return EnclaveProgram(
            config=tenant_config(
                self.spec.policy, epc_pages, self.spec.quota_pages
            ),
            layout=self.layout(replica),
            warmup=self._warmup,
            name=self.replica_name(replica),
        )

    def _warmup(self, runtime):
        """Deterministic bootstrap, replayed bit-identically on every
        relaunch (the restore fingerprint depends on it)."""
        heap = runtime.regions["heap"]
        if self.spec.policy == "pin_all":
            for i in range(self.pool_pages):
                runtime.access(heap.start + i * PAGE_SIZE)
            runtime.policy.seal()
        elif self.spec.policy == "clusters":
            runtime.allocator.alloc_pages(self.pool_pages)

    def pool(self, runtime):
        """The heap addresses requests touch (index ↔ vaddr)."""
        heap = runtime.regions["heap"]
        return [
            heap.start + i * PAGE_SIZE for i in range(self.pool_pages)
        ]

    # -- request generation ------------------------------------------------

    def arrivals(self, tick):
        """How many requests this tenant offers this tick."""
        n = self.spec.arrivals_per_tick
        if tick <= self.burst_until_tick:
            n *= self.burst_factor
        return n

    def make_request(self, now_cycles, tick):
        """Draw the next deterministic request from the tenant's
        generator stream."""
        spec = self.spec
        keys = tuple(
            self._generator.next() for _ in range(spec.ops_per_request)
        )
        writes = tuple(
            self._rng.random() < 0.25 for _ in range(spec.ops_per_request)
        )
        stall = self.stall_cycles if tick <= self.stall_until_tick else 0
        self.requests_issued += 1
        return Request(
            tenant=spec.name,
            request_id=self.requests_issued,
            keys=keys,
            writes=writes,
            issued_cycles=now_cycles,
            deadline_cycles=now_cycles + spec.deadline_cycles,
            stall_cycles=stall,
        )

    # -- execution helper --------------------------------------------------

    def progress_if_due(self, engine):
        """rate_limit tenants must report real progress or their own
        limiter kills them; every tenant reports uniformly so policies
        see identical op streams."""
        if self.ops_executed % 8 == 7:
            engine.progress(ProgressKind.SYSCALL)

    # -- observability -----------------------------------------------------

    def canonical(self):
        """Deterministic per-tenant tuple for run digests (never
        includes enclave ids — those are ambient across reruns)."""
        return (
            self.spec.name,
            self.spec.policy,
            self.requests_issued,
            self.ops_executed,
            self.aborts,
            self.recoveries,
            self.shrunk_pages,
            self.breaker.snapshot(),
            self.latency.snapshot(),
        )


def default_tenants(n, seed=0, replicas=1):
    """A deterministic mixed fleet: the three paper policies round-
    robin across ``n`` tenants, with varied distributions and loads."""
    policies = ("rate_limit", "clusters", "pin_all")
    distributions = ("zipf", "uniform", "hotspot90", "hotspot99")
    specs = []
    for i in range(n):
        policy = policies[i % len(policies)]
        specs.append(TenantSpec(
            name=f"tenant-{i}",
            policy=policy,
            distribution=distributions[i % len(distributions)],
            arrivals_per_tick=2 + (i % 2),
            quota_pages=128,
            replicas=replicas,
        ))
    return specs
