"""Tenant pools: N replica enclaves per tenant with failover.

One enclave per tenant makes every abort a service-visible outage: the
request that triggered it aborts, and everything queued behind it waits
out a recovery (or dies with the quarantine).  A *pool* keeps N
replicas of the tenant's enclave — same config, same warmup, distinct
address-space slots — and routes each request to a deterministically
elected **primary**:

* the primary is the lowest-index replica that is RUNNING (per the
  recovery supervisor), not suspended by the host, and not quarantined;
* when the primary aborts, is suspended (§5.2.1 whole-enclave swap),
  or exhausts its restart budget, election simply moves to the next
  healthy replica — a *failover*, counted and folded into the digest;
* only when **no** replica is healthy does the tenant become
  unavailable, and even that is structured: requests shed with
  ``pool-unavailable`` and the tenant's breaker latches.

Election is a pure function of replica health, so two runs with the
same seed elect the same primaries in the same order — pools add
availability without costing determinism.
"""

from __future__ import annotations

from repro.recovery.supervisor import RUNNING


class ReplicaHandle:
    """Mutable service-side state of one replica enclave."""

    def __init__(self, tenant_name, index, member_name):
        self.tenant_name = tenant_name
        self.index = index
        #: The recovery-supervisor member name (``tenant/rN``).
        self.member_name = member_name
        #: Host-suspended (REPLICA_SUSPEND fault): the enclave's whole
        #: working set is swapped out and it must not run until the
        #: matching resume restores every page.
        self.suspended = False
        #: Balloon loans outstanding against this replica (tier-1
        #: shrink); repaid per-replica so restore targets the enclave
        #: that actually gave up the frames.
        self.shrunk_pages = 0

    def canonical(self):
        return (self.member_name, self.suspended, self.shrunk_pages)


class TenantPool:
    """The replica set of one tenant, with deterministic election."""

    def __init__(self, tenant, recovery):
        self.tenant = tenant
        self.recovery = recovery
        self.replicas = [
            ReplicaHandle(
                tenant.spec.name, r, tenant.replica_name(r)
            )
            for r in range(tenant.spec.replicas)
        ]
        #: Index of the last elected primary; a change is a failover.
        self.last_primary = 0
        self.failovers = 0

    # -- health ------------------------------------------------------------

    def healthy(self, handle):
        """A replica may serve iff the supervisor says RUNNING and the
        host has not suspended it.  A member the supervisor no longer
        tracks (torn down at shutdown or retirement) is unhealthy, not
        an error — health probes outlive the fleet."""
        if handle.suspended:
            return False
        try:
            record = self.recovery.member(handle.member_name)
        except KeyError:
            return False
        return record.state == RUNNING

    def healthy_count(self):
        return sum(1 for h in self.replicas if self.healthy(h))

    # -- election ----------------------------------------------------------

    def elect_primary(self):
        """Lowest-index healthy replica, or ``None`` when the pool is
        exhausted.  The caller owns the all-unhealthy case — it must
        shed structured (``pool-unavailable``), never retry blindly."""
        for handle in self.replicas:
            if self.healthy(handle):
                if handle.index != self.last_primary:
                    self.failovers += 1
                    self.last_primary = handle.index
                return handle
        return None

    # -- observability -----------------------------------------------------

    def canonical(self):
        return (
            self.tenant.spec.name,
            self.last_primary,
            self.failovers,
            tuple(h.canonical() for h in self.replicas),
        )
