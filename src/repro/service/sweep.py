"""The cross-tenant contention sweep: policies × seeds over one EPC.

Each sweep point boots a homogeneous fleet (N tenants, one paper
policy) whose quotas deliberately over-commit the shared EPC, drives
the full service run, and classifies it into the three-way safety
invariant's classes plus the service's fourth legal class:

* ``completed``               — every request served cleanly;
* ``degraded-within-budget``  — served, with hardening mechanisms
  (bounded degradation, ballooning) absorbing the pressure;
* ``shed-within-budget``      — some requests refused, every refusal
  carrying a structured reason (the service *chose* the load to drop);
* ``aborted-structured``      — at least one enclave failed stop with
  a structured reason (and recovery/quarantine handled the corpse).

Anything else — an invariant violation inside any run — fails the
sweep.  With determinism checking on, every point runs twice and the
digests must agree; ``jobs > 1`` fans points over
:func:`repro.parallel.run_indexed` and must be bit-identical to the
serial sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.service.router import ServiceConfig, run_service
from repro.service.tenant import TenantSpec

SWEEP_POLICIES = ("pin_all", "clusters", "rate_limit")

RUN_COMPLETED = "completed"
RUN_DEGRADED = "degraded-within-budget"
RUN_SHED = "shed-within-budget"
RUN_ABORTED = "aborted-structured"

#: EPC sizing for sweep points: four tenants × 128-page quotas = 512
#: pages of quota over 224 pages of EPC, and combined working sets
#: that push occupancy into the tier-1/tier-2 bands under all three
#: policies (a pin_all fleet's sealed sets alone need ~200 pages).
SWEEP_TENANTS = 4
SWEEP_EPC_PAGES = 224
SWEEP_TICKS = 20

_DISTRIBUTIONS = ("zipf", "uniform", "hotspot90", "hotspot99")


def homogeneous_tenants(policy, n=SWEEP_TENANTS):
    """N tenants all under one paper policy, varied distributions."""
    return [
        TenantSpec(
            name=f"tenant-{i}",
            policy=policy,
            distribution=_DISTRIBUTIONS[i % len(_DISTRIBUTIONS)],
            arrivals_per_tick=2 + (i % 2),
            quota_pages=128,
        )
        for i in range(n)
    ]


def sweep_config(seed, policy, tenants=SWEEP_TENANTS,
                 epc_pages=SWEEP_EPC_PAGES, ticks=SWEEP_TICKS):
    return ServiceConfig(
        seed=seed,
        tenants=homogeneous_tenants(policy, tenants),
        epc_pages=epc_pages,
        ticks=ticks,
    )


def classify(result):
    """Run-level outcome class (the four-way invariant)."""
    if result.outcome_counts["structured-abort"]:
        return RUN_ABORTED
    if result.outcome_counts["shed"]:
        return RUN_SHED
    if result.outcome_counts["degraded-in-budget"]:
        return RUN_DEGRADED
    return RUN_COMPLETED


@dataclass
class SweepResult:
    """Aggregate of a full contention sweep."""

    points: list = field(default_factory=list)   # (seed, policy, class, ServiceResult)
    determinism_failures: list = field(default_factory=list)

    @property
    def violations(self):
        return [
            (seed, policy, v)
            for seed, policy, _, result in self.points
            for v in result.violations
        ]

    @property
    def ok(self):
        return not self.violations and not self.determinism_failures

    def class_counts(self):
        counts = {}
        for _, _, klass, _ in self.points:
            counts[klass] = counts.get(klass, 0) + 1
        return dict(sorted(counts.items()))

    def breaker_trips(self):
        return sum(r.breaker_trips for _, _, _, r in self.points)

    def breaker_closes(self):
        return sum(r.breaker_closes for _, _, _, r in self.points)


def _sweep_point(task):
    """Worker for one ``(seed, policy, check)`` point — top-level and
    pure, so :func:`repro.parallel.run_indexed` can fork it; each point
    boots its own kernel, so points are fully independent."""
    seed, policy, check = task
    result = run_service(sweep_config(seed, policy))
    rerun_digest = (
        run_service(sweep_config(seed, policy)).digest if check else None
    )
    return result, rerun_digest


def run_sweep(seeds, policies=SWEEP_POLICIES, check_determinism=True,
              jobs=1):
    """Sweep ``seeds`` × ``policies``; returns a :class:`SweepResult`.

    Results merge in canonical seed-outer, policy-inner order, so the
    sweep is identical at any ``jobs`` width."""
    from repro.parallel import run_indexed

    tasks = [
        (seed, policy, check_determinism)
        for seed in seeds for policy in policies
    ]
    outcomes = run_indexed(_sweep_point, tasks, jobs=jobs)
    sweep = SweepResult()
    for (seed, policy, _), (result, rerun_digest) in zip(tasks, outcomes):
        if rerun_digest is not None and rerun_digest != result.digest:
            sweep.determinism_failures.append(
                (seed, policy, result.digest, rerun_digest)
            )
        sweep.points.append((seed, policy, classify(result), result))
    return sweep


def sweep_report(sweep, seeds, policies, jobs):
    """The ``BENCH_service.json`` payload (sorted keys, JSON-safe)."""
    return {
        "ok": sweep.ok,
        "seeds": list(seeds),
        "policies": list(policies),
        "jobs": jobs,
        "classes": sweep.class_counts(),
        "breaker_trips": sweep.breaker_trips(),
        "breaker_closes": sweep.breaker_closes(),
        "violations": [
            {"seed": seed, "policy": policy, "message": message}
            for seed, policy, message in sweep.violations
        ],
        "determinism_failures": [
            {"seed": seed, "policy": policy, "digests": [first, second]}
            for seed, policy, first, second in sweep.determinism_failures
        ],
        "points": [
            {
                "seed": seed,
                "policy": policy,
                "class": klass,
                "outcomes": result.outcome_counts,
                "shed_by_reason": result.shed_by_reason,
                "abort_reasons": result.abort_reasons,
                "breaker_trips": result.breaker_trips,
                "breaker_closes": result.breaker_closes,
                "recoveries": result.recoveries,
                "quarantines": result.quarantines,
                "cycles": result.cycles,
                "digest": result.digest,
            }
            for seed, policy, klass, result in sweep.points
        ],
    }
