"""The cross-tenant contention sweep: policies × seeds over one EPC.

Each sweep point boots a homogeneous fleet (N tenants, one paper
policy) whose quotas deliberately over-commit the shared EPC, drives
the full service run, and classifies it into the three-way safety
invariant's classes plus the service's fourth legal class:

* ``completed``               — every request served cleanly;
* ``degraded-within-budget``  — served, with hardening mechanisms
  (bounded degradation, ballooning) absorbing the pressure;
* ``shed-within-budget``      — some requests refused, every refusal
  carrying a structured reason (the service *chose* the load to drop);
* ``aborted-structured``      — at least one enclave failed stop with
  a structured reason (and recovery/quarantine handled the corpse).

Anything else — an invariant violation inside any run — fails the
sweep.  With determinism checking on, every point runs twice and the
digests must agree; ``jobs > 1`` fans points over
:func:`repro.parallel.run_indexed` and must be bit-identical to the
serial sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.service.router import ServiceConfig, run_service
from repro.service.tenant import TenantSpec

SWEEP_POLICIES = ("pin_all", "clusters", "rate_limit")

RUN_COMPLETED = "completed"
RUN_DEGRADED = "degraded-within-budget"
RUN_SHED = "shed-within-budget"
RUN_ABORTED = "aborted-structured"

#: EPC sizing for sweep points: four tenants × 128-page quotas = 512
#: pages of quota over 224 pages of EPC, and combined working sets
#: that push occupancy into the tier-1/tier-2 bands under all three
#: policies (a pin_all fleet's sealed sets alone need ~200 pages).
SWEEP_TENANTS = 4
SWEEP_EPC_PAGES = 224
SWEEP_TICKS = 20

#: Pool-failover sweep sizing: the same four-tenant fleets, but two
#: replica enclaves per tenant.  The EPC doubles (a pin_all fleet
#: seals every replica's working set) while quotas still over-commit
#: it, so pool failover happens *under* tier pressure, not beside it.
POOL_REPLICAS = 2
POOL_EPC_PAGES = 448
POOL_TICKS = 20

_DISTRIBUTIONS = ("zipf", "uniform", "hotspot90", "hotspot99")


def homogeneous_tenants(policy, n=SWEEP_TENANTS, replicas=1):
    """N tenants all under one paper policy, varied distributions."""
    return [
        TenantSpec(
            name=f"tenant-{i}",
            policy=policy,
            distribution=_DISTRIBUTIONS[i % len(_DISTRIBUTIONS)],
            arrivals_per_tick=2 + (i % 2),
            quota_pages=128,
            replicas=replicas,
        )
        for i in range(n)
    ]


def sweep_config(seed, policy, tenants=SWEEP_TENANTS,
                 epc_pages=SWEEP_EPC_PAGES, ticks=SWEEP_TICKS):
    return ServiceConfig(
        seed=seed,
        tenants=homogeneous_tenants(policy, tenants),
        epc_pages=epc_pages,
        ticks=ticks,
    )


def pool_sweep_config(seed, policy, tenants=SWEEP_TENANTS,
                      epc_pages=POOL_EPC_PAGES, ticks=POOL_TICKS,
                      replicas=POOL_REPLICAS):
    return ServiceConfig(
        seed=seed,
        tenants=homogeneous_tenants(policy, tenants, replicas=replicas),
        epc_pages=epc_pages,
        ticks=ticks,
    )


def classify(result):
    """Run-level outcome class (the four-way invariant)."""
    if result.outcome_counts["structured-abort"]:
        return RUN_ABORTED
    if result.outcome_counts["shed"]:
        return RUN_SHED
    if result.outcome_counts["degraded-in-budget"]:
        return RUN_DEGRADED
    return RUN_COMPLETED


@dataclass
class SweepResult:
    """Aggregate of a full contention sweep."""

    points: list = field(default_factory=list)   # (seed, policy, class, ServiceResult)
    determinism_failures: list = field(default_factory=list)

    @property
    def violations(self):
        return [
            (seed, policy, v)
            for seed, policy, _, result in self.points
            for v in result.violations
        ]

    @property
    def ok(self):
        return not self.violations and not self.determinism_failures

    def class_counts(self):
        counts = {}
        for _, _, klass, _ in self.points:
            counts[klass] = counts.get(klass, 0) + 1
        return dict(sorted(counts.items()))

    def breaker_trips(self):
        return sum(r.breaker_trips for _, _, _, r in self.points)

    def breaker_closes(self):
        return sum(r.breaker_closes for _, _, _, r in self.points)


def _sweep_point(task):
    """Worker for one ``(seed, policy, check)`` point — top-level and
    pure, so :func:`repro.parallel.run_indexed` can fork it; each point
    boots its own kernel, so points are fully independent."""
    seed, policy, check = task
    result = run_service(sweep_config(seed, policy))
    rerun_digest = (
        run_service(sweep_config(seed, policy)).digest if check else None
    )
    return result, rerun_digest


def _pool_point(task):
    """Worker for one pool-failover ``(seed, policy, check)`` point —
    same contract as :func:`_sweep_point`, pooled fleets."""
    seed, policy, check = task
    result = run_service(pool_sweep_config(seed, policy))
    rerun_digest = (
        run_service(pool_sweep_config(seed, policy)).digest
        if check else None
    )
    return result, rerun_digest


def throughput_milli(result):
    """Served requests (completed + degraded) per million simulated
    cycles, in thousandths — integer, so frontier maths stays exact."""
    served = (result.outcome_counts["completed"]
              + result.outcome_counts["degraded-in-budget"])
    if result.cycles <= 0:
        return 0
    return served * 1_000_000_000 // result.cycles


def fairness_milli(result):
    """Jain's fairness index over per-tenant executed ops, in
    thousandths (1000 = perfectly even service across tenants)."""
    ops = [canon[3] for canon in result.tenants]
    total = sum(ops)
    squares = sum(x * x for x in ops)
    if not ops or squares == 0:
        return 1000
    return (total * total * 1000) // (len(ops) * squares)


def _run_points(worker, seeds, policies, check_determinism, jobs):
    from repro.parallel import run_indexed

    tasks = [
        (seed, policy, check_determinism)
        for seed in seeds for policy in policies
    ]
    outcomes = run_indexed(worker, tasks, jobs=jobs)
    sweep = SweepResult()
    for (seed, policy, _), (result, rerun_digest) in zip(tasks, outcomes):
        if rerun_digest is not None and rerun_digest != result.digest:
            sweep.determinism_failures.append(
                (seed, policy, result.digest, rerun_digest)
            )
        sweep.points.append((seed, policy, classify(result), result))
    return sweep


def run_sweep(seeds, policies=SWEEP_POLICIES, check_determinism=True,
              jobs=1):
    """Sweep ``seeds`` × ``policies``; returns a :class:`SweepResult`.

    Results merge in canonical seed-outer, policy-inner order, so the
    sweep is identical at any ``jobs`` width."""
    return _run_points(_sweep_point, seeds, policies,
                       check_determinism, jobs)


def run_pool_sweep(seeds, policies=SWEEP_POLICIES,
                   check_determinism=True, jobs=1):
    """The pool-failover frontier: ``seeds`` × ``policies`` with
    two-replica pools under the pooled fault family (tamper ladders,
    AEX storms, suspend/resume).  Same merge discipline as
    :func:`run_sweep`: identical at any ``jobs`` width."""
    return _run_points(_pool_point, seeds, policies,
                       check_determinism, jobs)


def sweep_report(sweep, seeds, policies, jobs):
    """The ``BENCH_service.json`` payload (sorted keys, JSON-safe)."""
    return {
        "ok": sweep.ok,
        "seeds": list(seeds),
        "policies": list(policies),
        "jobs": jobs,
        "classes": sweep.class_counts(),
        "breaker_trips": sweep.breaker_trips(),
        "breaker_closes": sweep.breaker_closes(),
        "violations": [
            {"seed": seed, "policy": policy, "message": message}
            for seed, policy, message in sweep.violations
        ],
        "determinism_failures": [
            {"seed": seed, "policy": policy, "digests": [first, second]}
            for seed, policy, first, second in sweep.determinism_failures
        ],
        "points": [
            {
                "seed": seed,
                "policy": policy,
                "class": klass,
                "outcomes": result.outcome_counts,
                "shed_by_reason": result.shed_by_reason,
                "abort_reasons": result.abort_reasons,
                "breaker_trips": result.breaker_trips,
                "breaker_closes": result.breaker_closes,
                "recoveries": result.recoveries,
                "quarantines": result.quarantines,
                "cycles": result.cycles,
                "digest": result.digest,
            }
            for seed, policy, klass, result in sweep.points
        ],
    }


def pool_report(sweep, seeds, policies, jobs):
    """The pool-failover throughput/fairness frontier — the
    ``pool_frontier`` section of ``BENCH_service.json``.  Integers
    only (milli units) so the committed baseline diffs bit-exactly."""
    by_policy = {}
    points = []
    for seed, policy, klass, result in sweep.points:
        tp = throughput_milli(result)
        fair = fairness_milli(result)
        points.append({
            "seed": seed,
            "policy": policy,
            "class": klass,
            "throughput_milli_per_mcycle": tp,
            "fairness_milli": fair,
            "failovers": result.failovers,
            "quarantines": result.quarantines,
            "recoveries": result.recoveries,
            "shed_by_reason": result.shed_by_reason,
            "digest": result.digest,
        })
        bucket = by_policy.setdefault(policy, {"tp": [], "fair": [],
                                               "failovers": 0})
        bucket["tp"].append(tp)
        bucket["fair"].append(fair)
        bucket["failovers"] += result.failovers
    frontier = {
        policy: {
            "mean_throughput_milli_per_mcycle":
                sum(b["tp"]) // max(1, len(b["tp"])),
            "mean_fairness_milli":
                sum(b["fair"]) // max(1, len(b["fair"])),
            "failovers": b["failovers"],
        }
        for policy, b in sorted(by_policy.items())
    }
    return {
        "ok": sweep.ok,
        "seeds": list(seeds),
        "policies": list(policies),
        "jobs": jobs,
        "replicas": POOL_REPLICAS,
        "classes": sweep.class_counts(),
        "frontier": frontier,
        "determinism_failures": [
            {"seed": seed, "policy": policy, "digests": [first, second]}
            for seed, policy, first, second in sweep.determinism_failures
        ],
        "points": points,
    }
