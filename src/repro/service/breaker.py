"""Per-tenant circuit breaker over the runtime's backoff machinery.

A tenant whose enclave keeps aborting (IntegrityAbort, ChaosAbort,
quarantine) is a liability to its neighbours: every failed request
burns queue slots, paging bandwidth, and — per §5.3 — leaks one bit per
restart through the termination channel.  The breaker converts repeated
failure into *cheap structured rejection*:

::

    CLOSED --failures >= trip_after--> OPEN
    OPEN   --cooldown elapsed-------->  HALF_OPEN (one probe admitted)
    HALF_OPEN --probe succeeds-------> CLOSED
    HALF_OPEN --probe fails----------> OPEN (cooldown escalates)

Cooldowns come from :class:`repro.runtime.backoff.RetryPolicy` — the
same bounded, cycle-priced exponential schedule the paging runtime uses
for denied host calls — and are measured on the *simulated* clock, so
breaker behaviour is as reproducible as everything else.  A quarantined
tenant latches the breaker open permanently: the recovery supervisor
has already judged that restarts must stop.
"""

from __future__ import annotations

from repro.runtime.backoff import RetryPolicy

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-counting breaker for one tenant."""

    def __init__(self, trip_after=2, cooldown=None,
                 window_cycles=150_000_000):
        if trip_after < 1:
            raise ValueError("breaker must tolerate at least one failure")
        self.trip_after = trip_after
        #: Failures are counted over a sliding window of simulated
        #: cycles, not consecutively: a tenant whose enclave keeps
        #: dying trips the breaker even when healthy requests complete
        #: between the aborts (abort → recover → abort again is exactly
        #: the restart-churn pattern §5.3 warns about).
        self.window_cycles = window_cycles
        #: Cooldown schedule: trip number N waits
        #: ``cooldown.wait_cycles(min(N, max_attempts))`` cycles.
        # Base cooldown spans many router ticks of idle clock but stays
        # well inside one service run, so a tripped breaker reaches
        # HALF_OPEN (and can prove recovery) before the run drains.
        self.cooldown = cooldown or RetryPolicy(
            max_attempts=4, base_cycles=8_000_000, multiplier=4
        )
        self.state = CLOSED
        #: Recent failure timestamps, pruned to the window and bounded
        #: by ``trip_after`` (the count can never usefully exceed it).
        self.recent_failures = []
        self.trip_count = 0
        self.open_until_cycles = 0
        self.latched = False
        #: Whether the HALF_OPEN probe is actually outstanding.  The
        #: state alone is not enough: a probe can vanish without an
        #: outcome report (shed by a departure drain, cancelled by its
        #: deadline) and a breaker that trusts "HALF_OPEN means a probe
        #: is in flight" then rejects every request forever.
        self.probe_in_flight = False
        # Lifetime transition counters (metrics snapshot).
        self.trips = 0
        self.half_opens = 0
        self.closes = 0
        self.rejections = 0
        self.probe_cancels = 0

    # -- admission ---------------------------------------------------------

    def allow(self, now_cycles):
        """Whether one request may pass right now.

        OPEN flips to HALF_OPEN once the cooldown has elapsed; the
        HALF_OPEN state admits exactly one probe, then rejects until
        the probe reports back.
        """
        if self.latched:
            self.rejections += 1
            return False
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now_cycles >= self.open_until_cycles:
                self.state = HALF_OPEN
                self.half_opens += 1
                self.probe_in_flight = True
                return True
            self.rejections += 1
            return False
        # HALF_OPEN: admit exactly one probe.  If the last probe was
        # lost without an outcome report, re-arm rather than rejecting
        # until the heat-death of the run.
        if not self.probe_in_flight:
            self.probe_in_flight = True
            return True
        self.rejections += 1
        return False

    # -- outcome reporting -------------------------------------------------

    def record_success(self):
        """A request completed; a HALF_OPEN probe success re-closes the
        breaker and forgives the failure history."""
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self.trip_count = 0
            self.recent_failures.clear()
            self.closes += 1
            self.probe_in_flight = False

    def record_failure(self, now_cycles):
        """A request aborted; trip once the window holds enough."""
        horizon = now_cycles - self.window_cycles
        self.recent_failures = [
            t for t in self.recent_failures if t > horizon
        ]
        self.recent_failures.append(now_cycles)
        if len(self.recent_failures) > self.trip_after:
            del self.recent_failures[0]
        if self.state == HALF_OPEN or \
                len(self.recent_failures) >= self.trip_after:
            self._trip(now_cycles)

    def cancel_probe(self):
        """The half-open probe was cancelled (deadline, tenant down,
        departure drain) before the enclave could prove anything:
        return to OPEN without escalating the cooldown, so the next
        ``allow`` re-probes.  Idempotent and safe in any state — a
        departing tenant cancels unconditionally."""
        if self.state == HALF_OPEN:
            self.state = OPEN
            self.probe_cancels += 1
        self.probe_in_flight = False

    def latch_open(self):
        """Permanently open (tenant quarantined by the supervisor)."""
        self.latched = True
        self.state = OPEN
        self.probe_in_flight = False
        self.trips += 1

    def _trip(self, now_cycles):
        self.state = OPEN
        self.trips += 1
        self.trip_count += 1
        self.probe_in_flight = False
        attempt = min(self.trip_count, self.cooldown.max_attempts)
        self.open_until_cycles = (
            now_cycles + self.cooldown.wait_cycles(attempt)
        )
        self.recent_failures.clear()

    # -- observability -----------------------------------------------------

    def snapshot(self):
        """Canonical counter tuple for metrics and run digests."""
        return (
            self.state,
            self.trips,
            self.half_opens,
            self.closes,
            self.rejections,
            self.latched,
            self.probe_cancels,
        )
