"""Deterministic fan-out over independent sweep points.

Every sweep in this repo — experiment grid points, chaos
``(seed, policy)`` pairs, sensitivity perturbations — shares one shape:
a list of *independent* points, each booting its own simulated machine
and returning a picklable result.  This module runs such a list across
a process pool while guaranteeing the output is byte-identical to the
serial run:

* Each point is tagged with its index before submission.
* Workers may finish in any order (``imap_unordered``), but results are
  re-sorted by that index before being returned — the *canonical merge
  order* the ``determinism/parallel-merge`` analyzer rule enforces.
* Workers are plain top-level functions over picklable arguments, so
  the ``fork`` and ``spawn`` start methods behave identically.
* Each point's simulation owns a private :class:`~repro.clock.Clock`
  and RNGs seeded from the point itself, so nothing about scheduling,
  process identity, or wall time can reach a result.

With ``jobs <= 1`` the pool is bypassed entirely — a plain in-process
loop — which is both the fallback and the reference the determinism
tests compare against.
"""

from __future__ import annotations

import multiprocessing


def default_jobs():
    """A sensible ``--jobs`` default: the machine's core count."""
    try:
        return max(1, multiprocessing.cpu_count())
    except NotImplementedError:
        return 1


def _invoke(task):
    """Pool worker: run one indexed point.  Top-level so it pickles."""
    index, fn, item = task
    return index, fn(item)


def _task_index(pair):
    return pair[0]


def run_indexed(fn, items, jobs=1):
    """``[fn(x) for x in items]``, fanned out over ``jobs`` processes.

    Results are merged in item order regardless of completion order,
    so the returned list is identical to the serial evaluation.  ``fn``
    must be picklable (a module-level function or ``functools.partial``
    of one) and must not rely on mutable global state — each worker
    process gets its own interpreter.
    """
    items = list(items)
    if jobs is None:
        jobs = 1
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]

    # ``fork`` is cheapest and inherits the loaded modules; fall back
    # to the platform default (spawn) where fork is unavailable.
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        ctx = multiprocessing.get_context()

    tasks = [(i, fn, item) for i, item in enumerate(items)]
    nproc = min(jobs, len(tasks))
    with ctx.Pool(processes=nproc) as pool:
        indexed = sorted(pool.imap_unordered(_invoke, tasks),
                         key=_task_index)
    return [result for _, result in indexed]
