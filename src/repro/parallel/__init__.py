"""Deterministic parallel execution of independent sweep points."""

from repro.parallel.runner import default_jobs, run_indexed

__all__ = ["default_jobs", "run_indexed"]
