"""``python -m repro bench``: wall-clock A/B of the access engine.

Simulated results in this project are deterministic, so performance
work has exactly one observable: host wall-clock.  This harness times
three representative slices — the Figure 6 uthash serving loop, the
Figure 8 Memcached serving loop, and a chaos-campaign smoke sweep —
under two configurations:

* **baseline** — the pre-PR serial path: translation fast path
  disabled (``fastpath=False``), one engine call per page, one compute
  charge per chain node, ``jobs=1``.  The legacy drivers below replay
  the exact pre-PR application call structure (see the git history of
  ``apps/uthash.py`` / ``apps/memcached.py``), so the baseline is the
  code this PR replaced, not a strawman.
* **optimized** — the shipped path: epoch-guarded translation memo,
  batched ``data_access_run`` accesses, bulk compute charges, and
  ``--jobs N`` sharding for the chaos sweep.

Both configurations must produce **bit-identical simulated results** —
cycle totals, fault counts, TLB hits, walk counts, chaos digests.  The
harness asserts this per slice and refuses to report a speedup over a
baseline that computed something else.  Output goes to
``BENCH_simwall.json`` (see docs/performance.md for the schema).

Wall-clock reads here are the *measurement*, not chatter — this module
is exempted from the determinism pass by configuration
(``repro.analysis.config.determinism_exempt``).
"""

from __future__ import annotations

import argparse
import json
import random
import time

from repro.apps.memcached import Memcached
from repro.apps.uthash import UthashTable
from repro.core.config import SystemConfig, set_fastpath_default
from repro.core.system import AutarkySystem
from repro.sgx.params import PAGE_SIZE

#: Requests per timed slice — large enough that per-request costs
#: dominate boot/warmup noise, small enough for a CI smoke job.
FIG6_REQUESTS = 200_000
FIG8_REQUESTS = 25_000
CHAOS_SEEDS = 3


# -- the pre-PR serial baseline ------------------------------------------


class LegacyEngine:
    """The pre-PR engine call structure, replayed on today's stack.

    One ``runtime.access`` per page and one ``runtime.compute`` per
    charge — no batching, no bulk accounting.  Simulated behaviour is
    identical to the batched path (same accesses in the same order,
    same totals); only the Python call count differs, which is the
    thing being measured.
    """

    def __init__(self, engine):
        self._engine = engine
        self.runtime = engine.runtime

    def data_access(self, vaddr, write=False):
        self._engine.data_access(vaddr, write=write)

    def data_access_run(self, vaddrs, write=False):
        for vaddr in vaddrs:
            self._engine.data_access(vaddr, write=write)

    def compute(self, cycles):
        self.runtime.compute(cycles)

    def progress(self, kind):
        self._engine.progress(kind)

    def region(self, name):
        return self._engine.region(name)


def _legacy_uthash_lookup(table, engine, item):
    """apps/uthash.py:lookup as it stood before the batched rewrite."""
    table.lookups += 1
    engine.data_access(table.bucket_page(table.bucket_of(item)))
    pos = table.chain_position(item)
    for node in table.chain_items(table.bucket_of(item), pos):
        engine.data_access(table.item_page(node))
        engine.compute(table.NODE_COMPUTE)
    return item


def _legacy_memcached_get(server, engine, key):
    """apps/memcached.py:get as it stood before the batched rewrite."""
    server.gets += 1
    engine.compute(server.REQUEST_COMPUTE)
    engine.data_access(server.index_page(key))
    engine.data_access(server.item_page(key))
    engine.compute(server.ITEM_COMPUTE)


# -- slices ----------------------------------------------------------------


def _fingerprint(system, **extra):
    """The simulated observables a slice must reproduce exactly."""
    kernel = system.kernel
    fp = {
        "cycles": kernel.clock.cycles,
        "faults": kernel.cpu.fault_count,
        "tlb_hits": kernel.tlb.hits,
        "walks": kernel.mmu.walks,
    }
    fp.update(extra)
    return fp


def _fig6_slice(fast):
    """Steady-state uthash GETs under 8-page clusters.

    The budget covers the whole table, so after the warmup sweep the
    serving loop is translation-bound — the regime the fast path
    targets (the full Figure 6 sweep is paging-bound and is covered by
    the experiments themselves).
    """
    data_bytes = 8 * 1024 * 1024
    system = AutarkySystem(SystemConfig.for_policy(
        "clusters", cluster_pages=8,
        epc_pages=8_192, quota_pages=6_500, enclave_managed_budget=6_000,
        heap_pages=2_800, code_pages=32, data_pages=32, runtime_pages=8,
    ))
    engine = system.engine()
    if not fast:
        engine = LegacyEngine(engine)
    table = UthashTable(engine, system.heap_start(), data_bytes)
    system.runtime.allocator.alloc_pages(table.total_pages_after_rehash())
    heap = system.heap_start()
    engine.data_access_run(
        [heap + i * PAGE_SIZE for i in range(table.total_pages)]
    )

    rng = random.Random(7)
    keys = [rng.randrange(table.n_items) for _ in range(FIG6_REQUESTS)]
    # One untimed warmup pass (demand faults settle, caches fill), then
    # time a steady-state pass over the same stream.  Both passes run
    # in both modes, so the fingerprints cover identical work.
    if fast:
        for key in keys:
            table.lookup(key)
        started = time.perf_counter()
        for key in keys:
            table.lookup(key)
    else:
        for key in keys:
            _legacy_uthash_lookup(table, engine, key)
        started = time.perf_counter()
        for key in keys:
            _legacy_uthash_lookup(table, engine, key)
    elapsed = time.perf_counter() - started
    return elapsed, _fingerprint(system, lookups=table.lookups)


def _fig8_slice(fast):
    """Steady-state Memcached GETs (hotspot99) under 10-page clusters."""
    data_bytes = 16 * 1024 * 1024
    system = AutarkySystem(SystemConfig.for_policy(
        "clusters", cluster_pages=10,
        epc_pages=8_192, quota_pages=6_500, enclave_managed_budget=6_000,
        heap_pages=4_800, code_pages=32, data_pages=32, runtime_pages=8,
    ))
    engine = system.engine()
    if not fast:
        engine = LegacyEngine(engine)
    server = Memcached(engine, system.heap_start(), data_bytes)
    system.runtime.allocator.alloc_pages(server.total_pages)
    heap = system.heap_start()
    engine.data_access_run(
        [heap + i * PAGE_SIZE for i in range(server.total_pages)],
        write=True,
    )

    from repro.workloads.ycsb import make_generator
    keys = make_generator(
        "hotspot99", server.n_keys, seed=11
    ).keys(FIG8_REQUESTS)
    from repro.runtime.rate_limit import ProgressKind
    # Untimed warmup pass, then a timed steady-state pass (see
    # _fig6_slice).
    if fast:
        server.serve(keys)
        started = time.perf_counter()
        server.serve(keys)
    else:
        for key in keys:
            engine.progress(ProgressKind.IO)
            _legacy_memcached_get(server, engine, key)
        started = time.perf_counter()
        for key in keys:
            engine.progress(ProgressKind.IO)
            _legacy_memcached_get(server, engine, key)
    elapsed = time.perf_counter() - started
    return elapsed, _fingerprint(system, gets=server.gets)


def _chaos_slice(fast, jobs):
    """Chaos smoke sweep; optimized mode also exercises ``--jobs``."""
    from repro.chaos.campaign import run_campaign
    started = time.perf_counter()
    result = run_campaign(
        range(CHAOS_SEEDS), check_determinism=False,
        jobs=jobs if fast else 1,
    )
    elapsed = time.perf_counter() - started
    digests = {
        f"{r.seed}/{r.policy}": r.digest for r in result.runs
    }
    return elapsed, {
        "digests": digests,
        "violations": len(result.violations),
    }


SLICES = (
    ("fig6_uthash", lambda fast, jobs: _fig6_slice(fast)),
    ("fig8_memcached", lambda fast, jobs: _fig8_slice(fast)),
    ("chaos_smoke", _chaos_slice),
)


# -- harness ---------------------------------------------------------------


def run_bench(jobs=1):
    """Run every slice in both modes; returns the report dict.

    The fast-path default is toggled around each run so freshly booted
    systems inherit the mode; it is restored before returning.
    """
    slices = []
    total_base = total_opt = 0.0
    identical = True
    prev = set_fastpath_default(True)
    try:
        for name, fn in SLICES:
            set_fastpath_default(False)
            base_s, base_fp = fn(False, jobs)
            set_fastpath_default(True)
            opt_s, opt_fp = fn(True, jobs)
            same = base_fp == opt_fp
            identical = identical and same
            total_base += base_s
            total_opt += opt_s
            slices.append({
                "name": name,
                "baseline_s": round(base_s, 4),
                "optimized_s": round(opt_s, 4),
                "speedup": round(base_s / opt_s, 2) if opt_s else None,
                "identical_results": same,
                "fingerprint": base_fp if same else {
                    "baseline": base_fp, "optimized": opt_fp,
                },
            })
    finally:
        set_fastpath_default(prev)
    return {
        "jobs": jobs,
        "slices": slices,
        "total": {
            "baseline_s": round(total_base, 4),
            "optimized_s": round(total_opt, 4),
            "speedup": round(total_base / total_opt, 2)
            if total_opt else None,
        },
        "identical_results": identical,
    }


def run(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="wall-clock A/B: fast-path engine + parallel "
                    "runner vs the pre-PR serial path",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the chaos slice's optimized run "
             "(default: 1)",
    )
    parser.add_argument(
        "--output", default="BENCH_simwall.json", metavar="PATH",
        help="where to write the JSON report "
             "(default: BENCH_simwall.json)",
    )
    args = parser.parse_args(argv)

    report = run_bench(jobs=args.jobs)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    width = max(len(s["name"]) for s in report["slices"])
    print(f"{'slice'.ljust(width)}  baseline   optimized  speedup  "
          f"identical")
    for s in report["slices"]:
        print(f"{s['name'].ljust(width)}  "
              f"{s['baseline_s']:7.3f}s   {s['optimized_s']:7.3f}s  "
              f"{s['speedup']:6.2f}x  {s['identical_results']}")
    total = report["total"]
    print(f"{'TOTAL'.ljust(width)}  "
          f"{total['baseline_s']:7.3f}s   {total['optimized_s']:7.3f}s  "
          f"{total['speedup']:6.2f}x")
    print(f"report written to {args.output}")
    if not report["identical_results"]:
        print("FAIL: simulated results differ between modes")
        return 1
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(run())
