"""``python -m repro bench``: wall-clock A/B of the access engine.

Simulated results in this project are deterministic, so performance
work has exactly one observable: host wall-clock.  This harness times
three representative slices — the Figure 6 uthash serving loop, the
Figure 8 Memcached serving loop, and a chaos-campaign smoke sweep —
under two configurations:

* **baseline** — the pre-PR serial path: translation fast path
  disabled (tier "off"), one engine call per page, one compute charge
  per chain node, ``jobs=1``.  The legacy drivers below replay the
  exact pre-PR application call structure (see the git history of
  ``apps/uthash.py`` / ``apps/memcached.py``), so the baseline is the
  code this PR replaced, not a strawman.
* **optimized** — the shipped path at the selected fast-path tier
  (``--tier memo`` = the epoch-guarded per-page memo alone,
  ``--tier columnar`` = memo + the batch interpreter of
  :mod:`repro.sgx.columnar`, the default), batched
  ``data_access_run`` accesses, planned ``make_run``/``replay``
  traces, bulk compute charges, and ``--jobs N`` sharding for the
  chaos sweep.

Both configurations must produce **bit-identical simulated results** —
cycle totals, fault counts, TLB hits, walk counts, chaos digests.  The
harness asserts this per slice and refuses to report a speedup over a
baseline that computed something else.

Output is a **trajectory**: ``BENCH_simwall.json`` holds a list of
dated entries, one appended per run, so the committed file records the
performance history across PRs rather than a single overwritable
snapshot.  ``--baseline`` additionally gates the fresh run against the
last committed entry (fingerprint drift fails immediately; a per-slice
speedup below 90% of the recorded one fails as a regression).  See
docs/performance.md for the schema.

Wall-clock and timestamp reads here are the *measurement*, not chatter
— this module is exempted from the determinism pass by configuration
(``repro.analysis.config.determinism_exempt``).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import time

from repro.apps.memcached import Memcached
from repro.apps.uthash import UthashTable
from repro.core.config import SystemConfig, set_fastpath_default
from repro.core.system import AutarkySystem
from repro.sgx.columnar import TIER_COLUMNAR, TIER_MEMO, TIER_OFF
from repro.sgx.params import PAGE_SIZE

#: Requests per timed slice — large enough that per-request costs
#: dominate boot/warmup noise, small enough for a CI smoke job.
FIG6_REQUESTS = 200_000
FIG8_REQUESTS = 100_000
CHAOS_SEEDS = 3

#: ``--baseline`` fails when a slice's fresh speedup drops below this
#: fraction of the trajectory's median speedup for that slice.  The
#: margin is wide because shared-runner wall clocks routinely wobble
#: ±15%; the gate is for structural regressions (a broken or disabled
#: tier shows up as a 3x+ drop), while drift is visible in the
#: committed trajectory itself.
REGRESSION_FLOOR = 0.75
#: Trailing trajectory entries the median is taken over.
GATE_WINDOW = 5
#: Slices whose committed speedup is below this are not wall-clock
#: gated: they are not fast-path-bound (the chaos sweep hovers at
#: ~1x), so their regression signal is noise; their correctness is
#: still gated through the fingerprint digest.
GATE_MIN_SPEEDUP = 1.5


# -- the pre-PR serial baseline ------------------------------------------


class LegacyEngine:
    """The pre-PR engine call structure, replayed on today's stack.

    One ``runtime.access`` per page and one ``runtime.compute`` per
    charge — no batching, no bulk accounting, no planned traces.
    Simulated behaviour is identical to the batched path (same accesses
    in the same order, same totals); only the Python call count
    differs, which is the thing being measured.
    """

    def __init__(self, engine):
        self._engine = engine
        self.runtime = engine.runtime

    def data_access(self, vaddr, write=False):
        self._engine.data_access(vaddr, write=write)

    def data_access_run(self, vaddrs, write=False):
        for vaddr in vaddrs:
            self._engine.data_access(vaddr, write=write)

    def make_run(self, vaddrs):
        return list(vaddrs)

    def replay(self, trace):
        run, cycles = trace
        for vaddr in run:
            self._engine.data_access(vaddr)
        self.runtime.compute(cycles)

    def compute(self, cycles):
        self.runtime.compute(cycles)

    def progress(self, kind):
        self._engine.progress(kind)

    def region(self, name):
        return self._engine.region(name)


def _legacy_uthash_lookup(table, engine, item):
    """apps/uthash.py:lookup as it stood before the batched rewrite."""
    table.lookups += 1
    engine.data_access(table.bucket_page(table.bucket_of(item)))
    pos = table.chain_position(item)
    for node in table.chain_items(table.bucket_of(item), pos):
        engine.data_access(table.item_page(node))
        engine.compute(table.NODE_COMPUTE)
    return item


def _legacy_memcached_get(server, engine, key):
    """apps/memcached.py:get as it stood before the batched rewrite."""
    server.gets += 1
    engine.compute(server.REQUEST_COMPUTE)
    engine.data_access(server.index_page(key))
    engine.data_access(server.item_page(key))
    engine.compute(server.ITEM_COMPUTE)


# -- slices ----------------------------------------------------------------


def _best_of_two(one_pass):
    """Warmup pass (untimed), then two timed passes; returns the
    faster.  Host noise is strictly additive, so the minimum is the
    better estimate of the code's actual cost."""
    one_pass()
    started = time.perf_counter()
    one_pass()
    first = time.perf_counter() - started
    started = time.perf_counter()
    one_pass()
    return min(first, time.perf_counter() - started)


def _fingerprint(system, **extra):
    """The simulated observables a slice must reproduce exactly."""
    kernel = system.kernel
    fp = {
        "cycles": kernel.clock.cycles,
        "faults": kernel.cpu.fault_count,
        "tlb_hits": kernel.tlb.hits,
        "walks": kernel.mmu.walks,
    }
    fp.update(extra)
    return fp


def _fig6_slice(fast):
    """Steady-state uthash GETs under 8-page clusters.

    The budget covers the whole table, so after the warmup sweep the
    serving loop is translation-bound — the regime the fast path
    targets (the full Figure 6 sweep is paging-bound and is covered by
    the experiments themselves).
    """
    data_bytes = 8 * 1024 * 1024
    system = AutarkySystem(SystemConfig.for_policy(
        "clusters", cluster_pages=8,
        epc_pages=8_192, quota_pages=6_500, enclave_managed_budget=6_000,
        heap_pages=2_800, code_pages=32, data_pages=32, runtime_pages=8,
    ))
    engine = system.engine()
    if not fast:
        engine = LegacyEngine(engine)
    table = UthashTable(engine, system.heap_start(), data_bytes)
    system.runtime.allocator.alloc_pages(table.total_pages_after_rehash())
    heap = system.heap_start()
    engine.data_access_run(
        [heap + i * PAGE_SIZE for i in range(table.total_pages)]
    )

    rng = random.Random(7)
    keys = [rng.randrange(table.n_items) for _ in range(FIG6_REQUESTS)]
    # One untimed warmup pass (demand faults settle, caches fill), then
    # two timed steady-state passes over the same stream, keeping the
    # faster one (host noise only ever slows a pass down).  All passes
    # run in both modes, so the fingerprints cover identical work.
    if fast:
        def one_pass():
            for key in keys:
                table.lookup(key)
    else:
        def one_pass():
            for key in keys:
                _legacy_uthash_lookup(table, engine, key)
    elapsed = _best_of_two(one_pass)
    return elapsed, _fingerprint(system, lookups=table.lookups)


def _fig8_slice(fast):
    """Steady-state Memcached GETs (hotspot99) under 10-page clusters."""
    data_bytes = 16 * 1024 * 1024
    system = AutarkySystem(SystemConfig.for_policy(
        "clusters", cluster_pages=10,
        epc_pages=8_192, quota_pages=6_500, enclave_managed_budget=6_000,
        heap_pages=4_800, code_pages=32, data_pages=32, runtime_pages=8,
    ))
    engine = system.engine()
    if not fast:
        engine = LegacyEngine(engine)
    server = Memcached(engine, system.heap_start(), data_bytes)
    system.runtime.allocator.alloc_pages(server.total_pages)
    heap = system.heap_start()
    engine.data_access_run(
        [heap + i * PAGE_SIZE for i in range(server.total_pages)],
        write=True,
    )

    from repro.workloads.ycsb import make_generator
    keys = make_generator(
        "hotspot99", server.n_keys, seed=11
    ).keys(FIG8_REQUESTS)
    from repro.runtime.rate_limit import ProgressKind
    # Untimed warmup pass, then two timed steady-state passes, keeping
    # the faster one (see _fig6_slice).
    if fast:
        one_pass = lambda: server.serve(keys)
    else:
        def one_pass():
            for key in keys:
                engine.progress(ProgressKind.IO)
                _legacy_memcached_get(server, engine, key)
    elapsed = _best_of_two(one_pass)
    return elapsed, _fingerprint(system, gets=server.gets)


def _chaos_slice(fast, jobs):
    """Chaos smoke sweep; optimized mode also exercises ``--jobs``."""
    from repro.chaos.campaign import run_campaign
    started = time.perf_counter()
    result = run_campaign(
        range(CHAOS_SEEDS), check_determinism=False,
        jobs=jobs if fast else 1,
    )
    elapsed = time.perf_counter() - started
    digests = {
        f"{r.seed}/{r.policy}": r.digest for r in result.runs
    }
    return elapsed, {
        "digests": digests,
        "violations": len(result.violations),
    }


SLICES = (
    ("fig6_uthash", lambda fast, jobs: _fig6_slice(fast)),
    ("fig8_memcached", lambda fast, jobs: _fig8_slice(fast)),
    ("chaos_smoke", _chaos_slice),
)


# -- harness ---------------------------------------------------------------


def fingerprints_digest(slices):
    """SHA-256 over the canonical JSON of every slice fingerprint —
    one string that must match across tiers, job counts, and PRs."""
    canon = json.dumps(
        {s["name"]: s["fingerprint"] for s in slices},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(canon.encode()).hexdigest()


def run_bench(jobs=1, tier=TIER_COLUMNAR):
    """Run every slice in both modes; returns one trajectory entry.

    The fast-path default is toggled around each run so freshly booted
    systems inherit the mode; it is restored before returning.
    """
    slices = []
    total_base = total_opt = 0.0
    identical = True
    prev = set_fastpath_default(tier)
    try:
        for name, fn in SLICES:
            set_fastpath_default(TIER_OFF)
            base_s, base_fp = fn(False, jobs)
            set_fastpath_default(tier)
            opt_s, opt_fp = fn(True, jobs)
            same = base_fp == opt_fp
            identical = identical and same
            total_base += base_s
            total_opt += opt_s
            slices.append({
                "name": name,
                "baseline_s": round(base_s, 4),
                "optimized_s": round(opt_s, 4),
                "speedup": round(base_s / opt_s, 2) if opt_s else None,
                "identical_results": same,
                "fingerprint": base_fp if same else {
                    "baseline": base_fp, "optimized": opt_fp,
                },
            })
    finally:
        set_fastpath_default(prev)
    return {
        "recorded_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "jobs": jobs,
        "tier": tier,
        "slices": slices,
        "total": {
            "baseline_s": round(total_base, 4),
            "optimized_s": round(total_opt, 4),
            "speedup": round(total_base / total_opt, 2)
            if total_opt else None,
        },
        "identical_results": identical,
        "fingerprints_sha256": fingerprints_digest(slices),
    }


# -- the trajectory file ---------------------------------------------------


def load_trajectory(path):
    """Read ``path`` as a trajectory, converting a pre-PR single-run
    snapshot (schema 1, a bare report dict) into a one-entry list."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return {"schema": 2, "entries": []}
    if isinstance(data, dict) and data.get("schema") == 2:
        return data
    # Legacy snapshot: a bare report without timestamps or digest.
    entry = dict(data)
    entry.setdefault("recorded_at", None)
    entry.setdefault("tier", TIER_MEMO)
    if "fingerprints_sha256" not in entry:
        entry["fingerprints_sha256"] = fingerprints_digest(
            entry.get("slices", [])
        )
    return {"schema": 2, "entries": [entry]}


def append_entry(path, entry):
    """Append ``entry`` to the trajectory at ``path`` (created if
    missing); returns the updated trajectory."""
    traj = load_trajectory(path)
    traj["entries"].append(entry)
    with open(path, "w") as fh:
        json.dump(traj, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return traj


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def check_against_baseline(entry, trajectory):
    """Gate a fresh ``entry`` against the committed trajectory.

    Returns a list of failure strings (empty = pass): any fingerprint
    digest divergence from the last entry (fingerprints are
    tier-independent by contract, so any entry is a valid reference),
    and any fast-path-bound slice whose speedup fell below
    ``REGRESSION_FLOOR`` of the median over the trailing
    ``GATE_WINDOW`` entries *of the same tier* (wall clock is only
    comparable within a tier; a tier with no committed history gets
    the digest gate alone).
    """
    if not trajectory["entries"]:
        return []
    last = trajectory["entries"][-1]
    window = [
        e for e in trajectory["entries"]
        if e.get("tier") == entry["tier"]
    ][-GATE_WINDOW:]
    failures = []
    if entry["fingerprints_sha256"] != last["fingerprints_sha256"]:
        failures.append(
            "fingerprint divergence: simulated results differ from the "
            f"committed baseline ({entry['fingerprints_sha256'][:12]} vs "
            f"{last['fingerprints_sha256'][:12]})"
        )
    for s in entry["slices"]:
        history = [
            old["speedup"]
            for e in window
            for old in e.get("slices", [])
            if old["name"] == s["name"] and old.get("speedup")
        ]
        if not history or not s["speedup"]:
            continue
        committed = _median(history)
        if committed < GATE_MIN_SPEEDUP:
            continue  # not fast-path-bound; digest-gated only
        floor = committed * REGRESSION_FLOOR
        if s["speedup"] < floor:
            failures.append(
                f"{s['name']}: speedup {s['speedup']:.2f}x below "
                f"{REGRESSION_FLOOR:.0%} of committed median "
                f"{committed:.2f}x"
            )
    return failures


# -- profiling -------------------------------------------------------------


def profile_slice(name, jobs=1, tier=TIER_COLUMNAR, top=25):
    """cProfile one slice's optimized run; prints top-N by cumulative
    time.  Profiling is observational — simulated results are the same
    as an unprofiled run, just slower on the wall clock."""
    import cProfile
    import pstats

    for slice_name, fn in SLICES:
        if slice_name == name:
            break
    else:
        raise SystemExit(
            f"unknown slice {name!r}; choose from "
            f"{', '.join(s[0] for s in SLICES)}"
        )
    prev = set_fastpath_default(tier)
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        fn(True, jobs)
        profiler.disable()
    finally:
        set_fastpath_default(prev)
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    print(f"profile of {name} (tier={tier}), top {top} by cumulative:")
    stats.print_stats(top)


# -- CLI -------------------------------------------------------------------


def _print_report(report):
    width = max(len(s["name"]) for s in report["slices"])
    print(f"{'slice'.ljust(width)}  baseline   optimized  speedup  "
          f"identical")
    for s in report["slices"]:
        print(f"{s['name'].ljust(width)}  "
              f"{s['baseline_s']:7.3f}s   {s['optimized_s']:7.3f}s  "
              f"{s['speedup']:6.2f}x  {s['identical_results']}")
    total = report["total"]
    print(f"{'TOTAL'.ljust(width)}  "
          f"{total['baseline_s']:7.3f}s   {total['optimized_s']:7.3f}s  "
          f"{total['speedup']:6.2f}x")


def run(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="wall-clock A/B: fast-path engine + parallel "
                    "runner vs the pre-PR serial path",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the chaos slice's optimized run "
             "(default: 1)",
    )
    parser.add_argument(
        "--tier", choices=(TIER_MEMO, TIER_COLUMNAR),
        default=TIER_COLUMNAR,
        help="fast-path tier for the optimized runs "
             "(default: columnar)",
    )
    parser.add_argument(
        "--output", default="BENCH_simwall.json", metavar="PATH",
        help="trajectory file to append to "
             "(default: BENCH_simwall.json)",
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="gate the fresh run against the trajectory's last entry: "
             "fail on fingerprint divergence or a per-slice speedup "
             f"below {REGRESSION_FLOOR:.0%} of the recorded one",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="do not append the fresh entry to the trajectory file",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile one slice's optimized run instead of the A/B "
             "(see --profile-slice / --profile-top)",
    )
    parser.add_argument(
        "--profile-slice", default="fig6_uthash", metavar="NAME",
        help="slice to profile with --profile (default: fig6_uthash)",
    )
    parser.add_argument(
        "--profile-top", type=int, default=25, metavar="N",
        help="rows of profile output (default: 25)",
    )
    args = parser.parse_args(argv)

    if args.profile:
        profile_slice(args.profile_slice, jobs=args.jobs,
                      tier=args.tier, top=args.profile_top)
        return 0

    report = run_bench(jobs=args.jobs, tier=args.tier)
    _print_report(report)

    failures = []
    if args.baseline:
        failures = check_against_baseline(
            report, load_trajectory(args.output)
        )
        for failure in failures:
            print(f"FAIL: {failure}")
        if not failures:
            print("baseline gate: ok")

    if not args.no_write:
        traj = append_entry(args.output, report)
        print(f"entry {len(traj['entries'])} appended to {args.output}")

    if not report["identical_results"]:
        print("FAIL: simulated results differ between modes")
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    import sys
    sys.exit(run())
