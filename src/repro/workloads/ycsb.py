"""YCSB key-distribution generators (workload C is 100% GETs).

Implements the generators the Memcached experiment needs (§7.3 /
Figure 8): uniform, the standard YCSB scrambled-zipfian with θ = 0.99,
and hotspot (a hot fraction of the keyspace receiving a hot fraction
of the traffic — the paper uses 1% of keys at 90% and 99%).

Every generator draws from an explicitly seeded ``random.Random`` —
either its own (``seed=``) or one threaded in by the caller (``rng=``),
so multi-generator experiments can share a single deterministic stream.
The process-global ``random`` module is never touched (the
``determinism`` rule of ``python -m repro analyze`` enforces this).
"""

from __future__ import annotations

import random


class UniformGenerator:
    """Keys uniform over [0, n)."""

    def __init__(self, n, seed=11, rng=None):
        self.n = n
        self._rng = rng or random.Random(seed)

    def next(self):
        return self._rng.randrange(self.n)

    def keys(self, count):
        return [self.next() for _ in range(count)]


class ZipfianGenerator:
    """YCSB's ZipfianGenerator with FNV scrambling.

    The scramble spreads the popular items across the keyspace so
    popularity is not correlated with key order — exactly what YCSB's
    ``ScrambledZipfianGenerator`` does.
    """

    FNV_OFFSET = 0xCBF29CE484222325
    FNV_PRIME = 0x100000001B3

    def __init__(self, n, theta=0.99, seed=13, scrambled=True, rng=None):
        if n < 2:
            raise ValueError("need at least two items")
        self.n = n
        self.theta = theta
        self.scrambled = scrambled
        self._rng = rng or random.Random(seed)

        self.zetan = self._zeta(n, theta)
        self.zeta2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (
            (1.0 - (2.0 / n) ** (1.0 - theta))
            / (1.0 - self.zeta2 / self.zetan)
        )

    @staticmethod
    def _zeta(n, theta):
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self):
        u = self._rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5 ** self.theta:
            rank = 1
        else:
            rank = int(self.n * ((self.eta * u) - self.eta + 1.0)
                       ** self.alpha)
            rank = min(rank, self.n - 1)
        if not self.scrambled:
            return rank
        return self._fnv(rank) % self.n

    @classmethod
    def _fnv(cls, value):
        h = cls.FNV_OFFSET
        for _ in range(8):
            byte = value & 0xFF
            value >>= 8
            h = ((h ^ byte) * cls.FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        return h

    def keys(self, count):
        return [self.next() for _ in range(count)]


class HotspotGenerator:
    """``hot_opn_fraction`` of operations hit ``hot_set_fraction`` of keys.

    The paper's hotspot configurations: 1% of the entries as the hot
    set with an access probability of 90% or 99%.
    """

    def __init__(self, n, hot_set_fraction=0.01, hot_opn_fraction=0.9,
                 seed=17, rng=None):
        self.n = n
        self.hot_keys = max(1, int(n * hot_set_fraction))
        self.hot_opn_fraction = hot_opn_fraction
        self._rng = rng or random.Random(seed)

    def next(self):
        if self._rng.random() < self.hot_opn_fraction:
            return self._rng.randrange(self.hot_keys)
        return self.hot_keys + self._rng.randrange(self.n - self.hot_keys)

    def keys(self, count):
        return [self.next() for _ in range(count)]


def make_generator(name, n, seed=23, rng=None):
    """Factory for the four Figure 8 distributions.

    Pass ``rng`` to thread one shared seeded stream through several
    generators (e.g. a warm-up and a measured phase that must not
    re-correlate when one of them changes its draw count).
    """
    if name == "uniform":
        return UniformGenerator(n, seed=seed, rng=rng)
    if name == "zipf":
        return ZipfianGenerator(n, theta=0.99, seed=seed, rng=rng)
    if name == "hotspot90":
        return HotspotGenerator(n, hot_opn_fraction=0.90, seed=seed,
                                rng=rng)
    if name == "hotspot99":
        return HotspotGenerator(n, hot_opn_fraction=0.99, seed=seed,
                                rng=rng)
    raise ValueError(f"unknown distribution {name!r}")


def zipf_hit_estimate(theta, n, cache_fraction):
    """Analytic cache-hit estimate for a zipfian stream (sanity checks):
    the probability mass of the top ``cache_fraction`` of items."""
    cutoff = max(1, int(n * cache_fraction))
    num = sum(1.0 / (i ** theta) for i in range(1, cutoff + 1))
    den = sum(1.0 / (i ** theta) for i in range(1, n + 1))
    return num / den
