"""nbench kernels for the architecture-overhead analysis (§7).

"TLB fill reads the entire PTE including access/dirty bits, so the only
overhead arises from the check itself, and depends on the number of
fills. ... Pessimistically assuming a 10-cycle overhead on each fill,
the geometric mean slowdown is 0.07% across all 10 benchmark
applications."

Each kernel is modelled by its memory behaviour: working-set size, the
fraction of accesses that stray outside the TLB-resident hot set, and
the arithmetic work per access.  Running a kernel through the simulator
with a capacity-limited TLB produces a real fill stream; the Autarky
check then costs exactly ``fills × autarky_ad_check`` cycles, which the
experiment reports as a slowdown — the same arithmetic the paper does
over measured fill counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sgx.params import PAGE_SIZE, AccessType


@dataclass(frozen=True)
class NbenchKernel:
    """Memory-behaviour profile of one nbench application."""

    name: str
    ws_pages: int          # total working set (fits EPC: no paging)
    hot_pages: int         # TLB-friendly hot subset
    stray_fraction: float  # accesses that wander over the full set
    compute_per_access: int
    write_fraction: float = 0.3


#: Profiles loosely derived from the BYTEmark documentation: sorts and
#: assignment are pointer-chasing over MBs; FP kernels are tiny and
#: compute-bound; huffman/idea stream small buffers.
NBENCH_KERNELS = [
    NbenchKernel("numeric sort", 512, 96, 0.10, 700),
    NbenchKernel("string sort", 512, 96, 0.12, 800),
    NbenchKernel("bitfield", 512, 64, 0.04, 900),
    NbenchKernel("fp emulation", 64, 48, 0.02, 1_800),
    NbenchKernel("fourier", 16, 16, 0.01, 2_500),
    NbenchKernel("assignment", 256, 64, 0.15, 650),
    NbenchKernel("idea", 32, 24, 0.02, 1_200),
    NbenchKernel("huffman", 128, 48, 0.05, 900),
    NbenchKernel("neural net", 128, 64, 0.03, 2_000),
    NbenchKernel("lu decomposition", 64, 48, 0.04, 1_500),
]


def run_kernel(runtime, kernel, ops=4_000, seed=3, rng=None):
    """Execute one kernel inside an enclave runtime.

    Returns ``(cycles, tlb_fills, ad_checks)`` for the measured loop.
    The caller preloads the working set; this loop performs no paging,
    matching "its datasets fit in EPC (no paging)".

    The access stream comes from a seeded private ``random.Random``
    (pass ``rng`` to share one stream across kernels; the process-global
    ``random`` module is never used).
    """
    heap = runtime.regions["heap"]
    if kernel.ws_pages > heap.npages:
        raise ValueError(f"{kernel.name}: working set exceeds the heap")
    rng = rng or random.Random(seed)
    kernel_mmu = runtime.kernel.mmu
    clock = runtime.kernel.clock

    cycles0 = clock.cycles
    fills0 = kernel_mmu.tlb.fills
    checks0 = kernel_mmu.ad_checks

    for i in range(ops):
        if rng.random() < kernel.stray_fraction:
            page = rng.randrange(kernel.ws_pages)
        else:
            page = rng.randrange(kernel.hot_pages)
        write = rng.random() < kernel.write_fraction
        runtime.access(
            heap.start + page * PAGE_SIZE,
            AccessType.WRITE if write else AccessType.READ,
        )
        runtime.compute(kernel.compute_per_access)

    return (
        clock.cycles - cycles0,
        kernel_mmu.tlb.fills - fills0,
        kernel_mmu.ad_checks - checks0,
    )
