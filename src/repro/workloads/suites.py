"""Phoenix and PARSEC application profiles for Figure 7 (§7.2).

Figure 7 runs 14 of the 15 applications from the suites Varys used
(vips does not run in Graphene) under rate-limited demand paging, with
EPC restricted to ~100 MB so the larger inputs page.  What determines
each bar is the application's *fault rate versus compute ratio*, so
each profile specifies: the working set (how far it overflows the
quota), how often an operation strays to a cold page (one fault), the
arithmetic per operation, and how frequently the libOS observes
progress.

Fault-rate targets (the right axis of Figure 7) shape the profiles:
compute-bound apps (blackscholes, matrix multiply) barely fault;
streaming apps (dedup, x264, bodytrack) fault tens of thousands of
times per second and pay the most.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.runtime.rate_limit import ProgressKind
from repro.sgx.params import PAGE_SIZE, AccessType


@dataclass(frozen=True)
class SuiteApp:
    """Synthetic profile of one Phoenix/PARSEC application."""

    name: str
    suite: str
    ws_pages: int            # working set, > quota for paging apps
    hot_pages: int           # stays resident
    cold_stride: int         # touch a cold page every N ops (0 = never)
    hot_accesses_per_op: int
    compute_per_op: int
    progress_every: int = 8  # ops per libOS progress event


#: Calibrated so baseline fault rates span ~0.5k-40k faults/s as in
#: Figure 7's right axis.  quota for the experiment is ~25,600 pages
#: (100 MB); hot sets fit, cold sweeps page.
SUITE_APPS = [
    SuiteApp("kmeans", "phoenix", 40_000, 2_000, 8, 3, 150_000),
    SuiteApp("linreg", "phoenix", 32_000, 1_500, 12, 2, 200_000),
    SuiteApp("wcount", "phoenix", 40_000, 2_000, 3, 3, 150_000),
    SuiteApp("pca", "phoenix", 36_000, 2_500, 6, 4, 155_000),
    SuiteApp("smatch", "phoenix", 48_000, 1_500, 2, 2, 140_000),
    SuiteApp("mmult", "phoenix", 30_000, 3_000, 14, 4, 170_000),
    SuiteApp("btrack", "parsec", 56_000, 2_000, 1, 3, 85_000),
    SuiteApp("canneal", "parsec", 64_000, 2_500, 2, 4, 115_000),
    SuiteApp("scluster", "parsec", 48_000, 2_000, 2, 3, 180_000),
    SuiteApp("swap", "parsec", 36_000, 1_500, 5, 2, 155_000),
    SuiteApp("dedup", "parsec", 60_000, 1_500, 2, 2, 100_000),
    SuiteApp("bscholes", "parsec", 30_000, 2_000, 20, 2, 240_000),
    SuiteApp("fluid", "parsec", 44_000, 2_500, 4, 3, 140_000),
    SuiteApp("x264", "parsec", 52_000, 2_000, 2, 3, 140_000),
]


def app_by_name(name):
    for app in SUITE_APPS:
        if app.name == name:
            return app
    raise KeyError(name)


def run_suite_app(runtime, app, ops=600, seed=5):
    """Run one application profile; returns the number of cold touches.

    The cold pointer sweeps cyclically through the cold portion of the
    working set, so in steady state every cold touch is a fault —
    deterministic demand paging, no randomness in the fault count.
    """
    heap = runtime.regions["heap"]
    if app.ws_pages > heap.npages:
        raise ValueError(f"{app.name}: working set exceeds the heap")
    rng = random.Random(seed)
    cold_base = app.hot_pages
    cold_span = app.ws_pages - app.hot_pages
    cold_ptr = 0
    cold_touches = 0

    for i in range(ops):
        if i % app.progress_every == 0:
            runtime.progress(ProgressKind.IO)
        for _ in range(app.hot_accesses_per_op):
            page = rng.randrange(app.hot_pages)
            runtime.access(heap.start + page * PAGE_SIZE, AccessType.READ)
        if app.cold_stride and i % app.cold_stride == 0:
            page = cold_base + cold_ptr
            cold_ptr = (cold_ptr + 1) % cold_span
            cold_touches += 1
            runtime.access(
                heap.start + page * PAGE_SIZE, AccessType.WRITE
            )
        runtime.compute(app.compute_per_op)
    return cold_touches
