"""Trace recording and replay: run captured access streams as workloads.

Lets users bring their own workloads without writing app models: record
a trace once (from any engine via
:class:`~repro.core.trace.TraceRecorder`, or from an external tool in
the same format), then replay it under any policy/configuration for
apples-to-apples comparisons.

Format: one event per line, ``kind vaddr_hex [w]`` or
``compute cycles`` / ``progress kind`` — trivially greppable and
diffable:

    data 0x1000049000 w
    code 0x100000a000
    compute 12000
    progress io
"""

from __future__ import annotations

import io

from repro.errors import PolicyError
from repro.runtime.rate_limit import ProgressKind


def dump_trace(events, fileobj):
    """Serialize :class:`~repro.core.trace.TraceEvent` objects (or any
    objects with .kind/.vaddr/.write) plus raw tuples."""
    for event in events:
        if event.kind == "data":
            suffix = " w" if event.write else ""
            fileobj.write(f"data {event.vaddr:#x}{suffix}\n")
        elif event.kind == "code":
            fileobj.write(f"code {event.vaddr:#x}\n")
        else:
            raise PolicyError(f"unknown event kind {event.kind!r}")


def dumps_trace(events):
    buffer = io.StringIO()
    dump_trace(events, buffer)
    return buffer.getvalue()


def parse_trace(lines):
    """Parse trace lines into replayable operation tuples."""
    ops = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        kind = fields[0]
        try:
            if kind == "data":
                write = len(fields) > 2 and fields[2] == "w"
                ops.append(("data", int(fields[1], 16), write))
            elif kind == "code":
                ops.append(("code", int(fields[1], 16)))
            elif kind == "compute":
                ops.append(("compute", int(fields[1])))
            elif kind == "progress":
                ops.append(("progress", ProgressKind(fields[1])))
            else:
                raise ValueError(f"unknown kind {kind!r}")
        except (IndexError, ValueError) as exc:
            raise PolicyError(
                f"trace line {lineno}: cannot parse {line!r} ({exc})"
            ) from exc
    return ops


class TraceReplayer:
    """Replays parsed operations through an engine."""

    def __init__(self, engine):
        self.engine = engine
        self.replayed = 0

    def replay(self, ops):
        """Run every operation; returns the count executed."""
        for op in ops:
            kind = op[0]
            if kind == "data":
                self.engine.data_access(op[1], write=op[2])
            elif kind == "code":
                self.engine.code_access(op[1])
            elif kind == "compute":
                self.engine.compute(op[1])
            elif kind == "progress":
                self.engine.progress(op[1])
            else:
                raise PolicyError(f"unknown op {kind!r}")
            self.replayed += 1
        return self.replayed

    def replay_text(self, text):
        return self.replay(parse_trace(text.splitlines()))

    def replay_file(self, path):
        with open(path) as f:
            return self.replay(parse_trace(f))
