"""Workload generators for the evaluation suites.

* :mod:`repro.workloads.ycsb` — YCSB key distributions (workload C).
* :mod:`repro.workloads.nbench` — the 10 nbench kernels as TLB-fill
  profiles (architecture-overhead analysis, §7).
* :mod:`repro.workloads.suites` — the 14 Phoenix/PARSEC applications
  as fault-rate-calibrated synthetic profiles (Figure 7).
"""

from repro.workloads.ycsb import (
    UniformGenerator,
    ZipfianGenerator,
    HotspotGenerator,
    make_generator,
)
from repro.workloads.nbench import NBENCH_KERNELS, NbenchKernel, run_kernel
from repro.workloads.suites import (
    SUITE_APPS,
    SuiteApp,
    run_suite_app,
)
from repro.workloads.replay import (
    TraceReplayer,
    dump_trace,
    dumps_trace,
    parse_trace,
)

__all__ = [
    "TraceReplayer",
    "dump_trace",
    "dumps_trace",
    "parse_trace",
    "UniformGenerator",
    "ZipfianGenerator",
    "HotspotGenerator",
    "make_generator",
    "NBENCH_KERNELS",
    "NbenchKernel",
    "run_kernel",
    "SUITE_APPS",
    "SuiteApp",
    "run_suite_app",
]
