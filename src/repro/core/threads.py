"""Multi-threaded enclave execution (multiple TCS).

SGX enclaves are multi-threaded: each logical core enters on its own
exclusive TCS, with its own SSA stack and pending-exception flag.  The
paper's prototype mostly runs single-threaded (its ORAM store is not
thread-safe, §7.3) but the *mechanisms* are per-thread: a fault on one
thread must not let the OS silently resume another, and the SGX2 evict
path freezes pages read-only precisely so concurrent writers fault
(§6).

This module provides a deterministic cooperative scheduler that
interleaves several enclave threads' operation streams — enough to test
those per-thread semantics without modelling preemptive parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EnclaveTerminated, SgxError
from repro.sgx.params import AccessType


@dataclass
class EnclaveThread:
    """One logical thread: a TCS plus a queue of pending operations.

    Operations are ``("access", vaddr, AccessType)``,
    ``("compute", cycles)`` or ``("progress", kind)``.
    """

    name: str
    tcs: object
    ops: list = field(default_factory=list)
    completed: int = 0
    terminated: bool = False

    def push(self, *ops):
        self.ops.extend(ops)
        return self


class ThreadScheduler:
    """Round-robin interleaving of enclave threads.

    The schedule is deterministic (round-robin with a configurable
    quantum), so tests and experiments are exactly reproducible.
    """

    def __init__(self, runtime, quantum=1):
        if quantum < 1:
            raise ValueError("quantum must be at least 1")
        self.runtime = runtime
        self.quantum = quantum
        self.threads = []

    def spawn(self, name):
        """Add a thread on a fresh exclusive TCS.

        SGX2 lets a running enclave accept new TCS pages (EAUG +
        EACCEPT with the TCS type); we model the result — a fresh
        per-thread control structure — directly."""
        from repro.sgx.tcs import Tcs
        tcs = Tcs()
        self.runtime.enclave.add_tcs(tcs)
        thread = EnclaveThread(name=name, tcs=tcs)
        self.threads.append(thread)
        return thread

    def adopt_main(self, name="main"):
        """Wrap the runtime's launch TCS as a schedulable thread."""
        thread = EnclaveThread(name=name, tcs=self.runtime.tcs)
        self.threads.append(thread)
        return thread

    def run(self):
        """Drain all threads; returns ops completed per thread.

        A thread whose operation terminates the enclave stops the
        whole schedule (the enclave is dead for everyone).
        """
        pending = [t for t in self.threads if t.ops]
        while pending:
            for thread in list(pending):
                for _ in range(self.quantum):
                    if not thread.ops:
                        break
                    self._step(thread)
                    if thread.terminated:
                        raise EnclaveTerminated(
                            f"thread {thread.name} died; enclave gone"
                        )
            pending = [t for t in self.threads
                       if t.ops and not t.terminated]
        return {t.name: t.completed for t in self.threads}

    def _step(self, thread):
        op = thread.ops.pop(0)
        kind = op[0]
        try:
            if kind == "access":
                _, vaddr, access = op
                self.runtime.kernel.cpu.access(
                    self.runtime.enclave, thread.tcs, vaddr, access,
                )
            elif kind == "compute":
                self.runtime.compute(op[1])
            elif kind == "progress":
                self.runtime.progress(op[1])
            else:
                raise SgxError(f"unknown thread op {kind!r}")
        except EnclaveTerminated:
            thread.terminated = True
            return
        thread.completed += 1


def access_op(vaddr, write=False):
    return ("access", vaddr,
            AccessType.WRITE if write else AccessType.READ)


def compute_op(cycles):
    return ("compute", cycles)
