"""System introspection: cross-layer views for debugging and teaching.

The same physical page is described by four independent layers — the
OS page table, the hardware EPCM, the enclave's self-pager, and the
backing store — and controlled-channel bugs live exactly in their
disagreements.  :func:`page_view` lines the four up for one address;
:func:`system_summary` does the fleet-level accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sgx.params import page_base, vpn_of


@dataclass
class PageView:
    """Everything every layer believes about one enclave page."""

    vaddr: int
    region: Optional[str]
    # OS page table
    pte_present: Optional[bool]
    pte_writable: Optional[bool]
    pte_accessed: Optional[bool]
    pte_dirty: Optional[bool]
    # hardware
    backed_pfn: Optional[int]
    epcm_valid: Optional[bool]
    epcm_blocked: Optional[bool]
    epcm_pending: Optional[bool]
    # enclave runtime
    enclave_managed: bool
    pager_resident: Optional[bool]
    clusters: list = field(default_factory=list)
    # untrusted memory
    swapped_copy: bool = False

    def consistent(self):
        """Cross-layer consistency: the disagreements that are either
        bugs or attacks in progress."""
        problems = []
        if self.pager_resident and self.backed_pfn is None:
            problems.append(
                "pager believes resident but no EPC frame backs it"
            )
        if self.pager_resident and self.pte_present is False:
            problems.append(
                "pager believes resident but the PTE is not present "
                "(unmap attack in progress?)"
            )
        if self.backed_pfn is not None and self.epcm_valid is False:
            problems.append("backed frame with invalid EPCM entry")
        if self.swapped_copy and self.backed_pfn is not None:
            problems.append(
                "page is simultaneously resident and swapped out"
            )
        return problems


def page_view(system, vaddr):
    """Assemble the four-layer view of one page."""
    base = page_base(vaddr)
    vpn = vpn_of(base)
    kernel = system.kernel
    runtime = system.runtime
    enclave = system.enclave

    pte = kernel.page_table.lookup(base)
    pfn = enclave.backed.get(vpn)
    entry = kernel.epcm.entry(pfn) if pfn is not None else None
    region = runtime.region_of(base)

    return PageView(
        vaddr=base,
        region=region.name if region else None,
        pte_present=pte.present if pte else None,
        pte_writable=pte.writable if pte else None,
        pte_accessed=pte.accessed if pte else None,
        pte_dirty=pte.dirty if pte else None,
        backed_pfn=pfn,
        epcm_valid=entry.valid if entry else None,
        epcm_blocked=entry.blocked if entry else None,
        epcm_pending=entry.pending if entry else None,
        enclave_managed=runtime.pager.is_managed(base),
        pager_resident=runtime.pager.is_resident(base)
        if runtime.pager.is_managed(base) else None,
        clusters=runtime.clusters.ay_get_cluster_ids(base),
        swapped_copy=kernel.backing.has(enclave.enclave_id, base),
    )


@dataclass
class SystemSummary:
    """Fleet-level accounting of one assembled system."""

    policy: str
    epc_total: int
    epc_used: int
    enclave_backed: int
    pager_resident: int
    pager_budget: int
    swapped_pages: int
    cluster_count: int
    faults_total: int
    pages_in: int
    pages_out: int
    aex_count: int
    cycles: int

    def lines(self):
        return [
            f"policy:           {self.policy}",
            f"EPC:              {self.epc_used}/{self.epc_total} "
            f"frames in use",
            f"enclave backed:   {self.enclave_backed} pages "
            f"(pager: {self.pager_resident}/{self.pager_budget})",
            f"swapped out:      {self.swapped_pages} pages",
            f"clusters:         {self.cluster_count}",
            f"faults:           {self.faults_total} "
            f"(in {self.pages_in} / out {self.pages_out} pages)",
            f"AEXs:             {self.aex_count}",
            f"simulated cycles: {self.cycles:,}",
        ]


def system_summary(system):
    kernel = system.kernel
    runtime = system.runtime
    swapped = sum(
        1 for (eid, _v) in kernel.backing._pages
        if eid == system.enclave.enclave_id
    )
    return SystemSummary(
        policy=system.policy.name if system.policy else "baseline",
        epc_total=kernel.epc.total_pages,
        epc_used=kernel.epc.used_pages,
        enclave_backed=len(system.enclave.backed),
        pager_resident=runtime.pager.resident_count(),
        pager_budget=runtime.pager.budget_pages,
        swapped_pages=swapped,
        cluster_count=runtime.clusters.cluster_count(),
        faults_total=kernel.cpu.fault_count,
        pages_in=kernel.driver.pages_in,
        pages_out=kernel.driver.pages_out,
        aex_count=kernel.cpu.aex_count,
        cycles=kernel.clock.cycles,
    )


def audit(system, sample_pages=None):
    """Cross-layer consistency audit: returns {vaddr: problems}.

    Checks every enclave-managed page (or the sample provided); an
    empty dict means all four layers agree."""
    runtime = system.runtime
    pages = sample_pages
    if pages is None:
        pages = [vpn << 12 for vpn in runtime.pager._claimed]
    findings = {}
    for vaddr in pages:
        problems = page_view(system, vaddr).consistent()
        if problems:
            findings[page_base(vaddr)] = problems
    return findings
