"""Top-level API: assemble a machine, an enclave, a policy, and run.

Most users need only :class:`~repro.core.system.AutarkySystem`:

>>> from repro.core import AutarkySystem, SystemConfig
>>> system = AutarkySystem(SystemConfig(policy="rate_limit"))
>>> engine = system.engine()

and the metrics helpers in :mod:`repro.core.metrics`.
"""

from repro.core.config import PolicyConfig, SystemConfig
from repro.core.metrics import Measurement, RunMetrics, geomean, slowdown
from repro.core.system import AutarkySystem, DirectEngine, OramEngine
from repro.core.leakage import (
    cluster_guess_probability,
    distinguishable_secrets,
    termination_attack_bits,
)
from repro.core.trace import TraceRecorder, adversary_view
from repro.core.threads import ThreadScheduler
from repro.core.validation import ConfigError, check, validate
from repro.core.inspect import audit, page_view, system_summary

__all__ = [
    "PolicyConfig",
    "SystemConfig",
    "Measurement",
    "RunMetrics",
    "geomean",
    "slowdown",
    "AutarkySystem",
    "DirectEngine",
    "OramEngine",
    "cluster_guess_probability",
    "distinguishable_secrets",
    "termination_attack_bits",
    "TraceRecorder",
    "adversary_view",
    "ThreadScheduler",
    "ConfigError",
    "check",
    "validate",
    "audit",
    "page_view",
    "system_summary",
]
