"""Leakage quantification (§5.3 and the cluster analysis of §7.2).

These are the analytic counterparts of the empirical attack
experiments: what can an attacker infer, in expectation, from what the
defense still reveals?
"""

from __future__ import annotations

import math
from collections import Counter

from repro.sgx.params import PAGE_SIZE


def cluster_guess_probability(item_size, cluster_pages,
                              page_size=PAGE_SIZE):
    """Probability of guessing the accessed item given one cluster fetch.

    §7.2: "For uniformly random accesses, the probability of an
    attacker guessing the accessed item given a cluster size is
    item_size / (cluster_size × page_size)" — 0.62% for 256-byte items
    and 10-page clusters.
    """
    if item_size <= 0 or cluster_pages <= 0:
        raise ValueError("sizes must be positive")
    return min(1.0, item_size / (cluster_pages * page_size))


def distinguishable_secrets(secret_traces):
    """Fraction of secrets an attacker can uniquely identify from the
    observation each one produces.

    ``secret_traces`` maps secret → observable (any hashable, e.g. a
    tuple of fault pages).  Secrets sharing an observable are mutually
    indistinguishable.
    """
    if not secret_traces:
        raise ValueError("no secrets")
    observable_counts = Counter(tuple(v) for v in secret_traces.values())
    unique = sum(
        1 for v in secret_traces.values()
        if observable_counts[tuple(v)] == 1
    )
    return unique / len(secret_traces)


def trace_mutual_information(secret_traces):
    """Mutual information (bits) between a uniformly-chosen secret and
    its observable — 0 bits means the defense is perfect, log2(N) means
    the trace fully identifies the secret."""
    n = len(secret_traces)
    if n == 0:
        raise ValueError("no secrets")
    observable_counts = Counter(tuple(v) for v in secret_traces.values())
    # H(secret) - H(secret | observable); secrets are uniform, and the
    # conditional distribution within an observable class is uniform
    # over the class, so MI = log2(n) - sum p(class) log2(|class|).
    mi = math.log2(n)
    for count in observable_counts.values():
        mi -= (count / n) * math.log2(count)
    return mi


def termination_attack_bits(target_set_size, total_pages):
    """Information an attacker gains per termination attack (§5.3).

    Unmapping a set of pages and observing whether the enclave dies is
    one yes/no probe: at most one bit per enclave restart, regardless
    of how many pages were unmapped.  The attacker additionally learns
    *that* some page in the set was touched, i.e. log2 of the number of
    distinguishable outcomes — which is 1 (touched vs. not).  We also
    report the residual ambiguity within the set.
    """
    if not 0 < target_set_size <= total_pages:
        raise ValueError("bad target set")
    bits_per_restart = 1.0
    residual_ambiguity_bits = math.log2(target_set_size)
    return bits_per_restart, residual_ambiguity_bits
