"""Measurement helpers: throughput, slowdowns, breakdowns.

All measurements run on the simulated clock, so they are exactly
reproducible; "standard deviation below 5%" in the paper becomes
standard deviation of zero here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class RunMetrics:
    """Results of one measured run."""

    ops: int
    cycles: int
    seconds: float
    faults: int = 0
    pages_fetched: int = 0
    pages_evicted: int = 0
    breakdown: dict = field(default_factory=dict)

    @property
    def throughput(self):
        """Operations per simulated second."""
        if self.seconds == 0:
            return float("inf")
        return self.ops / self.seconds

    @property
    def cycles_per_op(self):
        return self.cycles / self.ops if self.ops else 0.0

    @property
    def fault_rate(self):
        """Faults per simulated second."""
        if self.seconds == 0:
            return 0.0
        return self.faults / self.seconds


class Measurement:
    """Delta-measures a region of simulated execution.

    >>> with Measurement(kernel) as m:
    ...     run_workload()
    >>> m.metrics(ops=n)
    """

    __slots__ = ("kernel", "runtime", "_snap", "_cycles0", "_faults0",
                 "_in0", "_out0")

    def __init__(self, kernel, runtime=None):
        self.kernel = kernel
        self.runtime = runtime
        self._snap = None
        self._cycles0 = 0
        self._faults0 = 0
        self._in0 = 0
        self._out0 = 0

    def __enter__(self):
        clock = self.kernel.clock
        self._snap = clock.snapshot()
        self._cycles0 = clock.cycles
        self._faults0 = self.kernel.cpu.fault_count
        self._in0 = self.kernel.driver.pages_in
        self._out0 = self.kernel.driver.pages_out
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def metrics(self, ops):
        clock = self.kernel.clock
        cycles = clock.cycles - self._cycles0
        return RunMetrics(
            ops=ops,
            cycles=cycles,
            seconds=cycles / clock.frequency_hz,
            faults=self.kernel.cpu.fault_count - self._faults0,
            pages_fetched=self.kernel.driver.pages_in - self._in0,
            pages_evicted=self.kernel.driver.pages_out - self._out0,
            breakdown=clock.delta_since(self._snap),
        )


class AbortStats:
    """Per-reason counts of enclave aborts.

    Feeds on :class:`~repro.errors.EnclaveTerminated` exceptions (or
    bare :class:`~repro.errors.AbortReason` values) and aggregates them
    by the structured reason, so robustness campaigns and experiments
    report *why* enclaves died rather than opaque totals.
    """

    UNCLASSIFIED = "unclassified"

    __slots__ = ("by_reason",)

    def __init__(self):
        self.by_reason = {}

    def record(self, abort):
        """Count one abort; returns the reason key it was filed under.

        Accepts an exception carrying a ``.reason``, a bare
        :class:`~repro.errors.AbortReason`, or an already-stringified
        reason key."""
        reason = getattr(abort, "reason", abort)
        if isinstance(reason, str):
            key = reason or self.UNCLASSIFIED
        else:
            key = getattr(reason, "value", None) or self.UNCLASSIFIED
        self.by_reason[key] = self.by_reason.get(key, 0) + 1
        return key

    @property
    def total(self):
        return sum(self.by_reason.values())

    def count(self, reason):
        key = getattr(reason, "value", reason)
        return self.by_reason.get(key, 0)

    def as_dict(self):
        """Reason → count, sorted by reason for stable reports."""
        return dict(sorted(self.by_reason.items()))

    def merge(self, other):
        for key, count in other.by_reason.items():
            self.by_reason[key] = self.by_reason.get(key, 0) + count
        return self


def slowdown(baseline, subject):
    """Throughput ratio baseline/subject (1.0 = no overhead)."""
    if subject.throughput == 0:
        return float("inf")
    return baseline.throughput / subject.throughput


def geomean(values):
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geomean of nothing")
    if any(v <= 0 for v in values):
        raise ValueError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
