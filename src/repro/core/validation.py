"""Configuration validation with actionable error messages.

``AutarkySystem`` builds from a :class:`~repro.core.config.SystemConfig`
whose fields interlock in non-obvious ways (quota vs budget vs EPC vs
layout vs ORAM geometry).  :func:`validate` checks every relationship
up front and reports *all* problems at once, each with the fix, instead
of letting a mis-sized run fail deep inside the driver.
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.sgx.params import EVICTION_BATCH


class ConfigError(PolicyError):
    """One or more configuration problems, listed in the message."""

    def __init__(self, problems):
        self.problems = list(problems)
        bullets = "\n".join(f"  - {p}" for p in self.problems)
        super().__init__(f"invalid SystemConfig:\n{bullets}")


def _layout_pages(cfg):
    return (1 + cfg.runtime_pages + cfg.code_pages + cfg.data_pages
            + cfg.heap_pages + cfg.reserve_pages)


def validate(cfg):
    """Return the list of problems (empty = valid)."""
    problems = []
    quota = cfg.quota_pages or cfg.epc_pages
    budget = cfg.enclave_managed_budget or quota
    total = _layout_pages(cfg)

    if cfg.epc_pages < 64:
        problems.append(
            f"epc_pages={cfg.epc_pages} is below any useful machine; "
            "use at least 64"
        )
    if cfg.quota_pages is not None and cfg.quota_pages > cfg.epc_pages:
        problems.append(
            f"quota_pages={cfg.quota_pages} exceeds "
            f"epc_pages={cfg.epc_pages}; the quota can never be met"
        )
    if budget > quota:
        problems.append(
            f"enclave_managed_budget={budget} exceeds the enclave "
            f"quota {quota}; the self-pager would deadlock against "
            "the driver — lower the budget or raise quota_pages"
        )
    if budget < cfg.runtime_pages + EVICTION_BATCH:
        problems.append(
            f"enclave_managed_budget={budget} cannot hold the pinned "
            f"runtime ({cfg.runtime_pages} pages) plus one eviction "
            f"batch ({EVICTION_BATCH}); raise it to at least "
            f"{cfg.runtime_pages + EVICTION_BATCH}"
        )
    if quota >= cfg.epc_pages and cfg.quota_pages is not None:
        pass  # equal is fine; exceeding was caught above
    if total > 1 << 32:
        problems.append(
            f"enclave layout of {total} pages is implausibly large"
        )

    spec = cfg.policy
    if spec.name == "clusters" and spec.cluster_pages is not None:
        if spec.cluster_pages < 1:
            problems.append("cluster_pages must be positive")
        elif spec.cluster_pages > budget:
            problems.append(
                f"cluster_pages={spec.cluster_pages} exceeds the "
                f"enclave-managed budget {budget}; a single cluster "
                "could never be fetched"
            )
    if spec.name == "rate_limit" and spec.max_faults_per_progress < 1:
        problems.append("max_faults_per_progress must be positive")
    if spec.name == "oram":
        if spec.oram_tree_pages < 1:
            problems.append("oram_tree_pages must be positive")
        if spec.oram_cache_pages and spec.oram_cache_pages > budget:
            problems.append(
                f"oram_cache_pages={spec.oram_cache_pages} exceeds "
                f"the enclave-managed budget {budget}; the pinned "
                "cache would not fit"
            )
    if spec.name not in ("baseline", "pin_all", "clusters",
                         "rate_limit", "oram"):
        problems.append(f"unknown policy {spec.name!r}")
    return problems


def check(cfg):
    """Raise :class:`ConfigError` if anything is wrong."""
    problems = validate(cfg)
    if problems:
        raise ConfigError(problems)
    return cfg
