"""Access-trace instrumentation and comparison utilities.

Wrap any engine in a :class:`TraceRecorder` to capture the enclave-side
truth (every data/code access with its simulated timestamp), then put
it side by side with what the adversary collected — the comparison that
makes leakage discussions concrete:

>>> recorder = TraceRecorder(system.engine(), system.clock)
>>> workload(recorder)
>>> view = adversary_view(recorder, system.kernel)
>>> view.leaked_fraction
0.0
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sgx.params import page_base


@dataclass(frozen=True)
class TraceEvent:
    """One recorded enclave access."""

    cycles: int
    kind: str        # "data" | "code"
    vaddr: int
    write: bool


class TraceRecorder:
    """Engine wrapper that records the ground-truth access stream."""

    def __init__(self, engine, clock):
        self.engine = engine
        self.clock = clock
        self.events = []

    def data_access(self, vaddr, write=False):
        self.engine.data_access(vaddr, write=write)
        self.events.append(TraceEvent(
            self.clock.cycles, "data", vaddr, write,
        ))

    def code_access(self, vaddr):
        self.engine.code_access(vaddr)
        self.events.append(TraceEvent(
            self.clock.cycles, "code", vaddr, False,
        ))

    def compute(self, cycles):
        self.engine.compute(cycles)

    def progress(self, kind):
        self.engine.progress(kind)

    # -- derived views -----------------------------------------------------

    def page_trace(self):
        """The page-granular truth (what a perfect attacker wants)."""
        return [page_base(e.vaddr) for e in self.events]

    def distinct_pages(self):
        return {page_base(e.vaddr) for e in self.events}

    def working_set_curve(self, bucket_cycles):
        """(bucket_index, distinct pages touched) per time bucket."""
        if bucket_cycles <= 0:
            raise ValueError("bucket must be positive")
        buckets = {}
        for event in self.events:
            buckets.setdefault(
                event.cycles // bucket_cycles, set()
            ).add(page_base(event.vaddr))
        return sorted(
            (index, len(pages)) for index, pages in buckets.items()
        )


@dataclass(frozen=True)
class InjectionEvent:
    """One host-side fault injection, on the same simulated timeline as
    :class:`TraceEvent` so chaos runs can be lined up against the
    enclave's own access stream."""

    cycles: int
    kind: str        # FaultKind value, e.g. "deny-fetch"
    point: str       # hook that fired: syscall name, instruction, or "op"
    detail: str = ""


@dataclass
class AdversaryView:
    """What the OS-level adversary learned vs. the ground truth."""

    truth_pages: list
    observed_pages: list
    leaked_events: int = 0
    leaked_fraction: float = 0.0
    distinct_leaked: set = field(default_factory=set)


def adversary_view(recorder, kernel):
    """Correlate the recorder's truth with the kernel's fault log.

    An observed fault "leaks" when its address matches a page the
    enclave genuinely touched (masked faults at the enclave base never
    match a data/code page, so self-paging enclaves score zero)."""
    truth = recorder.page_trace()
    truth_set = set(truth)
    observed = [f.vaddr for f in kernel.fault_log]
    leaked = [v for v in observed if v in truth_set]
    return AdversaryView(
        truth_pages=truth,
        observed_pages=observed,
        leaked_events=len(leaked),
        leaked_fraction=(
            len(set(leaked)) / len(truth_set) if truth_set else 0.0
        ),
        distinct_leaked=set(leaked),
    )


def first_divergence(trace_a, trace_b):
    """Index of the first position where two traces differ, or None.

    The tool behind oblivious-execution checks: two runs on different
    secrets must have ``first_divergence(...) is None``."""
    for i, (a, b) in enumerate(zip(trace_a, trace_b)):
        if a != b:
            return i
    if len(trace_a) != len(trace_b):
        return min(len(trace_a), len(trace_b))
    return None
