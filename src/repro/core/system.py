"""One-call assembly of the full stack, plus the access engines apps use.

:class:`AutarkySystem` boots the simulated machine, launches an enclave
with the configured policy, and hands out an *engine* — the interface
application models program against:

* :class:`DirectEngine` — accesses go through the MMU (page faults,
  self-paging).  Used by every policy except ORAM.
* :class:`OramEngine` — data accesses are instrumented through the
  (cached) ORAM; code accesses still go through the MMU.
"""

from __future__ import annotations

from repro.clock import Category
from repro.core.config import SystemConfig, fastpath_default
from repro.core.metrics import Measurement
from repro.errors import PolicyError
from repro.host.kernel import HostKernel
from repro.oram.policy import OramPolicy
from repro.runtime.libos import EnclaveLayout, GrapheneRuntime
from repro.runtime.policies import (
    ClusterPolicy,
    PinAllPolicy,
    RateLimitPolicy,
)
from repro.runtime.rate_limit import RateLimiter
from repro.sgx.columnar import PageRun, ReplayFrontend
from repro.sgx.params import PAGE_SIZE, AccessType


def build_policy(cfg, layout, clock):
    """Construct the configured paging policy from a :class:`SystemConfig`.

    Module-level so recovery can rebuild an identical policy when it
    relaunches a crashed enclave (:mod:`repro.recovery.program`), not
    just :class:`AutarkySystem` at first boot.  Policies that consult
    clusters come back with ``manager=None`` — the caller wires in the
    runtime's :class:`ClusterManager` after launch.
    """
    spec = cfg.policy
    if spec.name == "baseline":
        return None
    if spec.name == "pin_all":
        return PinAllPolicy()
    if spec.name == "clusters":
        return ClusterPolicy(manager=None,
                             unclustered=spec.cluster_unclustered)
    if spec.name == "rate_limit":
        limiter = RateLimiter(
            spec.max_faults_per_progress,
            grace_faults=spec.grace_faults,
        )
        return RateLimitPolicy(limiter, manager=None)
    if spec.name == "oram":
        heap_start = (
            layout.base
            + PAGE_SIZE * (1 + cfg.runtime_pages + cfg.code_pages
                           + cfg.data_pages)
        )
        return OramPolicy(
            tree_pages=spec.oram_tree_pages,
            cache_pages=spec.oram_cache_pages,
            clock=clock,
            region_start=heap_start,
            oblivious_metadata=spec.oram_oblivious_metadata,
            seed=spec.oram_seed,
        )
    raise PolicyError(f"unknown policy {spec.name!r}")


class DirectEngine:
    """MMU-mediated access engine (the normal path).

    The batched/compute hot paths bind the CPU run engine and the clock
    at construction — the per-call behaviour is identical to routing
    through the runtime wrappers, minus the wrapper frames.

    Apps with repeating page traces plan them once with
    :meth:`make_run` and replay the cached ``(run, cycles)`` pair with
    :meth:`replay`; on the columnar tier both are rebound to the batch
    interpreter (:mod:`repro.sgx.columnar`), on every other tier they
    fall back to the plain batched path — same observables either way.
    """

    def __init__(self, runtime):
        self.runtime = runtime
        kernel = runtime.kernel
        self._access_run = kernel.cpu.access_run
        self._probe_run = kernel.mmu.probe_run
        self._require_alive = runtime.enclave.require_alive
        self._charge = kernel.clock.charge
        self._enclave = runtime.enclave
        self._tcs = runtime.tcs
        self._bind_fastpath(kernel)

    def _bind_fastpath(self, kernel):
        """Rebind the trace API to the columnar frontend when the
        machine was built with the columnar tier."""
        if kernel.cpu.columnar is not None:
            self.make_run = PageRun
            self.replay = ReplayFrontend(
                kernel, self._enclave, self._tcs
            ).replay

    def make_run(self, vaddrs):
        """Plan a repeating page trace for :meth:`replay`.  Off the
        columnar tier this is the identity on a list — the plain
        batched path needs no plan."""
        return list(vaddrs)

    def replay(self, trace):
        """Replay a cached ``(run, cycles)`` trace: one batched read
        run plus one bulk compute charge."""
        run, cycles = trace
        self.data_access_run(run)
        self._charge(cycles, Category.COMPUTE)

    def data_access(self, vaddr, write=False):
        self.runtime.access(
            vaddr, AccessType.WRITE if write else AccessType.READ
        )

    def data_access_run(self, vaddrs, write=False):
        """Batched :meth:`data_access`: same faults, counters, and
        cycles as the per-address loop, charged in one call.

        The all-hit case (liveness check, then one memo probe over the
        run) is resolved right here; anything else — memo miss, fast
        path disabled — takes the CPU's full batched path, which
        replays the run with identical per-address semantics.
        """
        access = AccessType.WRITE if write else AccessType.READ
        self._require_alive()
        if self._probe_run(vaddrs, access) is None:
            self._access_run(self._enclave, self._tcs, vaddrs, access)

    def code_access(self, vaddr):
        self.runtime.access(vaddr, AccessType.EXEC)

    def compute(self, cycles):
        self._charge(cycles, Category.COMPUTE)

    def progress(self, kind):
        self.runtime.progress(kind)

    def region(self, name):
        return self.runtime.regions[name]


class OramEngine(DirectEngine):
    """CoSMIX-style instrumented engine: data accesses use ORAM."""

    def __init__(self, runtime, oram_policy):
        super().__init__(runtime)
        self.oram_policy = oram_policy

    def _bind_fastpath(self, kernel):
        """ORAM data accesses never touch the MMU, so the columnar
        interpreter does not apply; traces replay per-address through
        the ORAM (the generic :meth:`DirectEngine.replay`)."""

    def data_access(self, vaddr, write=False):
        self.oram_policy.access(vaddr, write=write)

    def data_access_run(self, vaddrs, write=False):
        # ORAM accesses are inherently per-address (each one walks a
        # tree path); batching changes nothing observable.
        for vaddr in vaddrs:
            self.oram_policy.access(vaddr, write=write)


class AutarkySystem:
    """The assembled machine + enclave + runtime + policy."""

    def __init__(self, config=None):
        self.config = config or SystemConfig()
        cfg = self.config
        from repro.core.validation import check
        check(cfg)
        self.kernel = HostKernel(
            epc_pages=cfg.epc_pages,
            cost=cfg.cost,
            arch_opts=cfg.arch_opts,
            tlb_capacity=cfg.tlb_capacity,
            fastpath=(fastpath_default() if cfg.fastpath is None
                      else cfg.fastpath),
        )
        self.layout = EnclaveLayout(
            runtime_pages=cfg.runtime_pages,
            code_pages=cfg.code_pages,
            data_pages=cfg.data_pages,
            heap_pages=cfg.heap_pages,
            reserve_pages=cfg.reserve_pages,
        )
        legacy = cfg.policy.name == "baseline"
        self.policy = self._build_policy(cfg)
        self.runtime = GrapheneRuntime.launch(
            self.kernel,
            self.policy,
            layout=self.layout,
            quota_pages=cfg.quota_pages,
            legacy=legacy,
            sgx_version=cfg.sgx_version,
            enclave_managed_budget=cfg.enclave_managed_budget,
            eviction_order=cfg.eviction_order,
            exitless=cfg.exitless,
        )
        # Policies that consult clusters get the runtime's manager.
        if getattr(self.policy, "manager", False) is None:
            self.policy.manager = self.runtime.clusters
        if cfg.policy.name in ("clusters", "rate_limit"):
            self.runtime.configure_heap(cfg.policy.cluster_pages)
        else:
            self.runtime.configure_heap(None)

    @property
    def enclave(self):
        return self.runtime.enclave

    @property
    def clock(self):
        return self.kernel.clock

    def engine(self):
        if isinstance(self.policy, OramPolicy):
            return OramEngine(self.runtime, self.policy)
        return DirectEngine(self.runtime)

    def measure(self):
        return Measurement(self.kernel, self.runtime)

    def attach_attacker(self, attacker):
        self.kernel.attacker = attacker
        return attacker

    def heap_start(self):
        return self.runtime.regions["heap"].start

    # -- internals -----------------------------------------------------------

    def _build_policy(self, cfg):
        return build_policy(cfg, self.layout, self.kernel.clock)
