"""Configuration dataclasses for assembling a full system."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sgx.columnar import TIER_COLUMNAR, normalize_tier
from repro.sgx.params import (
    DEFAULT_EPC_PAGES,
    ArchOptimizations,
    CostModel,
    SgxVersion,
)
from repro.runtime.self_paging import EvictionOrder

#: Process-wide default for the translation fast-path tier: "off" (no
#: memoization at all), "memo" (the PR 4 epoch-guarded per-page memo),
#: or "columnar" (memo + the batch interpreter).  Benchmarks flip it
#: to measure each engine's contribution; normal runs leave the full
#: engine on (every tier is observationally equivalent — see
#: docs/performance.md, tests/test_fastpath.py, tests/test_columnar.py).
_FASTPATH_DEFAULT = TIER_COLUMNAR


def set_fastpath_default(tier):
    """Set the process-wide fast-path tier; returns the old value.

    Accepts tier names ("off" / "memo" / "columnar") and the
    historical booleans (False = off, True = the full engine).
    """
    global _FASTPATH_DEFAULT
    old = _FASTPATH_DEFAULT
    _FASTPATH_DEFAULT = normalize_tier(tier)
    return old


def fastpath_default():
    return _FASTPATH_DEFAULT


@dataclass
class PolicyConfig:
    """Which secure paging policy to build, and its knobs."""

    #: "baseline" (legacy SGX, no defense), "pin_all", "clusters",
    #: "rate_limit", or "oram".
    name: str = "rate_limit"

    # clusters / automatic data clustering
    cluster_pages: Optional[int] = 10
    #: How ClusterPolicy treats pages no cluster covers ("reject" or
    #: "demand" — the late-clustering pattern of §7.3).
    cluster_unclustered: str = "reject"

    # rate_limit
    max_faults_per_progress: int = 1_000
    grace_faults: Optional[int] = None

    # oram
    oram_tree_pages: int = 262_144           # 1 GB of 4 KiB blocks
    oram_cache_pages: int = 32_768           # 128 MB cache
    oram_oblivious_metadata: bool = False    # True = CoSMIX baseline
    oram_seed: int = 0x5EED


@dataclass
class SystemConfig:
    """Everything needed to boot the machine and launch the enclave."""

    policy: PolicyConfig = field(default_factory=PolicyConfig)
    epc_pages: int = DEFAULT_EPC_PAGES
    #: Per-enclave EPC quota (None = whole EPC).
    quota_pages: Optional[int] = None
    #: Resident budget for enclave-managed pages (None = quota).
    enclave_managed_budget: Optional[int] = None
    sgx_version: SgxVersion = SgxVersion.SGX1
    arch_opts: ArchOptimizations = field(default_factory=ArchOptimizations)
    cost: CostModel = field(default_factory=CostModel)
    eviction_order: EvictionOrder = EvictionOrder.FIFO
    exitless: bool = True
    #: None = unbounded TLB; set (e.g. 1536) for capacity-miss studies.
    tlb_capacity: Optional[int] = None
    #: Translation fast-path tier: "off", "memo", or "columnar"
    #: (booleans accepted: False = off, True = columnar); ``None``
    #: defers to the process-wide default (:func:`set_fastpath_default`).
    fastpath: Optional[object] = None
    #: Enclave layout sizes (pages).
    runtime_pages: int = 64
    code_pages: int = 256
    data_pages: int = 1_024
    heap_pages: int = 131_072
    #: Unassigned address space for GrapheneRuntime.grow_heap.
    reserve_pages: int = 0

    @staticmethod
    def for_policy(name, **kwargs):
        """Shorthand: ``SystemConfig.for_policy("clusters", cluster_pages=10)``."""
        policy_fields = {
            f for f in PolicyConfig.__dataclass_fields__ if f != "name"
        }
        policy_kwargs = {
            k: kwargs.pop(k) for k in list(kwargs) if k in policy_fields
        }
        return SystemConfig(
            policy=PolicyConfig(name=name, **policy_kwargs), **kwargs
        )
