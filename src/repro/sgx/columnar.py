"""Columnar batch interpreter for fault-free page runs.

The PR 4 engine made a steady-state access cost one dict probe
(:meth:`repro.sgx.mmu.Mmu.probe_run`); this module makes a steady-state
*run* cost one integer compare.  It is a classic plan/compile/execute
split:

* **plan** — :class:`PageRun` packs a page trace (a sequence of page
  base addresses) into immutable columns of integers: the addresses
  and their virtual page numbers, stored as packed ``array('q')``
  columns (or NumPy ``int64`` arrays when NumPy is importable; the
  pure-Python ``array`` fallback is bit-compatible because nothing
  observable depends on the container type).  Plans are built once —
  by the app trace caches, the runtime's ``touch_run`` memo, or any
  caller with a repeating trace — and replayed many times.

* **compile** — :meth:`ColumnarEngine.execute` resolves a plan against
  the *residency/permission table*: the live TLB entry map, which is
  precisely the set of translations the page table, EPCM, and (for
  self-paging enclaves) the Autarky A/D check have already validated.
  A run compiles only if **every** page is TLB-resident with
  sufficient permissions; the result is a packed PFN column stamped
  with the :class:`~repro.sgx.epoch.TranslationEpoch` value it was
  compiled under.

* **execute** — while the stamp still matches the epoch, replaying the
  run is architecturally N TLB hits: ``tlb.hits += n`` in bulk,
  nothing else.  That is the whole steady-state cost.

Fallback triggers — the first fault, any epoch bump (TLB flush or
shootdown, PTE store, EPCM mutation, capacity eviction), or an A/D
transition (which always surfaces as a shootdown + re-walk, i.e. an
epoch bump) — invalidate the stamp, and the run drops to the PR 4
sequential path (:meth:`repro.sgx.cpu.Cpu.access_run`), which replays
it with per-address semantics: identical fault sequence, counters, and
cycle charges to the unbatched loop.  Soundness is inherited from the
epoch contract proven by ``effects/epoch-soundness``: a compiled
column can never outlive any translation-affecting mutation, because
every such mutation bumps the epoch that stamps it.

Why compiling from the TLB is equivalent: for a run of TLB-resident
pages with sufficient permissions, the sequential loop performs N
:meth:`~repro.sgx.tlb.Tlb.lookup` hits — ``hits += 1`` each, no walk,
no charge, no A/D write (the TLB caches translations past the page
table, which is exactly the §5.1.4 time-of-check semantics).  The bulk
replay performs the same N hits in one add.  Any page *not* in that
state fails compilation and takes the sequential path unchanged.
"""

from __future__ import annotations

from array import array

from repro.sgx.params import PAGE_SHIFT, AccessType

try:  # pragma: no cover - exercised only where numpy is installed
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


# -- fast-path tiers -------------------------------------------------------

#: No translation memoization at all: every access takes the classic
#: lookup/walk path.  The ``repro bench`` baseline.
TIER_OFF = "off"
#: The PR 4 engine: epoch-guarded per-page memo + ``probe_run``.
TIER_MEMO = "memo"
#: The full engine: memo plus the columnar batch interpreter.
TIER_COLUMNAR = "columnar"

TIERS = (TIER_OFF, TIER_MEMO, TIER_COLUMNAR)


def normalize_tier(value):
    """Map a fast-path spec to a tier name.

    Accepts tier strings, plus the historical booleans: ``False`` is
    "off", ``True`` is the full engine ("columnar").
    """
    if value is True:
        return TIER_COLUMNAR
    if value is False:
        return TIER_OFF
    if value in TIERS:
        return value
    raise ValueError(
        f"unknown fastpath tier {value!r}: expected one of {TIERS} "
        f"or a boolean"
    )


# -- packing backend -------------------------------------------------------

if _np is not None:  # pragma: no cover - numpy branch

    def pack_column(values):
        """Pack a sequence of ints into an immutable-by-convention
        int64 column (NumPy when available, ``array('q')`` otherwise)."""
        return _np.asarray(values, dtype=_np.int64)

    def column_list(column):
        """The column as a plain list of Python ints."""
        return [int(v) for v in column]

else:

    def pack_column(values):
        """Pack a sequence of ints into an immutable-by-convention
        int64 column (NumPy when available, ``array('q')`` otherwise)."""
        return array("q", values)

    def column_list(column):
        """The column as a plain list of Python ints."""
        return column.tolist()


# -- the plan --------------------------------------------------------------

_READ, _WRITE, _EXEC = 0, 1, 2


def _access_index(access):
    if access is AccessType.READ:
        return _READ
    if access is AccessType.WRITE:
        return _WRITE
    return _EXEC


class PageRun:
    """A packed, reusable page trace — the columnar *plan*.

    Behaves as a read-only sequence of page addresses, so every
    pre-columnar consumer (``Mmu.probe_run``, the sequential replay in
    ``Cpu.access_run``, the per-element legacy engines) iterates it
    unchanged.  Holds one compiled PFN column and epoch stamp per
    access type; stamps start invalid, and an epoch bump invalidates
    them implicitly (the stamp no longer matches), so there is no
    subscription machinery to get wrong.
    """

    __slots__ = (
        "vaddrs", "vpns", "n",
        "_stamp_r", "_col_r",
        "_stamp_w", "_col_w",
        "_stamp_x", "_col_x",
    )

    def __init__(self, vaddrs):
        va = tuple(vaddrs)
        self.vaddrs = va
        self.n = len(va)
        self.vpns = pack_column([v >> PAGE_SHIFT for v in va])
        self._stamp_r = -1
        self._stamp_w = -1
        self._stamp_x = -1
        self._col_r = None
        self._col_w = None
        self._col_x = None

    def __len__(self):
        return self.n

    def __iter__(self):
        return iter(self.vaddrs)

    def __getitem__(self, index):
        return self.vaddrs[index]

    def column(self, access):
        """The compiled (stamp, pfn column) pair for one access type."""
        idx = _access_index(access)
        if idx == _READ:
            return self._stamp_r, self._col_r
        if idx == _WRITE:
            return self._stamp_w, self._col_w
        return self._stamp_x, self._col_x

    def __repr__(self):
        return f"PageRun(n={self.n})"


def as_run(vaddrs):
    """``vaddrs`` as a :class:`PageRun` (pass-through when it already
    is one)."""
    if type(vaddrs) is PageRun:
        return vaddrs
    return PageRun(vaddrs)


# -- compile + execute -----------------------------------------------------


class ColumnarEngine:
    """Compiles plans against the TLB residency table and executes them.

    One instance per machine, owned by the :class:`HostKernel` when the
    fast-path tier is "columnar" and shared by every consumer (CPU run
    engine, access engines, runtime).  Holds only aliases: the live TLB
    entry map *is* the residency/permission table, kept current by the
    TLB itself; the epoch stamp is what keys compiled columns to it.
    """

    __slots__ = ("tlb", "epoch", "entries")

    def __init__(self, tlb, epoch):
        self.tlb = tlb
        self.epoch = epoch
        #: The live ``{vpn: TlbEntry}`` residency map.  The TLB mutates
        #: it strictly in place (install/evict/flush), so the alias
        #: never goes stale — and every removal bumps ``epoch``.
        self.entries = tlb.residency()

    # repro: hot
    def execute(self, run, access):
        """Execute a whole run fault-free, or return ``None``.

        A stamp match replays the compiled column: ``tlb.hits += n``
        in bulk, exactly N architectural TLB hits.  A stamp miss
        recompiles against the current residency table; a compile miss
        (any page non-resident or under-permissioned) returns ``None``
        with **no side effects**, and the caller falls back to the
        sequential path.
        """
        stamp = self.epoch.value
        idx = _access_index(access)
        if idx == _READ:
            if run._stamp_r == stamp:
                self.tlb.hits += run.n
                return run._col_r
        elif idx == _WRITE:
            if run._stamp_w == stamp:
                self.tlb.hits += run.n
                return run._col_w
        elif run._stamp_x == stamp:
            self.tlb.hits += run.n
            return run._col_x
        return self._compile(run, access, idx, stamp)

    # repro: hot
    def _compile(self, run, access, idx, stamp):
        """Resolve every page of ``run`` against the residency table.

        Permission checks mirror :meth:`repro.sgx.tlb.TlbEntry.allows`:
        residency alone suffices for reads; writes and fetches require
        the matching permission bit.  All-or-nothing, side-effect-free
        until success.
        """
        get = self.entries.get
        pfns = []
        append = pfns.append
        if access is AccessType.READ:
            for vpn in run.vpns:
                entry = get(vpn)
                if entry is None:
                    return None
                append(entry.pfn)
        elif access is AccessType.WRITE:
            for vpn in run.vpns:
                entry = get(vpn)
                if entry is None or not entry.writable:
                    return None
                append(entry.pfn)
        else:
            for vpn in run.vpns:
                entry = get(vpn)
                if entry is None or not entry.executable:
                    return None
                append(entry.pfn)
        column = pack_column(pfns)
        if idx == _READ:
            run._col_r = column
            run._stamp_r = stamp
        elif idx == _WRITE:
            run._col_w = column
            run._stamp_w = stamp
        else:
            run._col_x = column
            run._stamp_x = stamp
        self.tlb.hits += run.n
        return column


class ReplayFrontend:
    """The engine-side executor for cached ``(run, cycles)`` traces.

    Bound into :class:`repro.core.system.DirectEngine` (and the app
    trace caches above it) when the columnar tier is active.  The
    steady-state path — live enclave, stamp match — is deliberately
    call-free except for the bulk compute charge; everything else
    drops to :meth:`_slow`, which compiles or replays sequentially
    with per-address semantics.
    """

    __slots__ = ("_enclave", "_tcs", "_cpu", "_epoch", "_tlb",
                 "_charge", "_columnar")

    def __init__(self, kernel, enclave, tcs):
        self._enclave = enclave
        self._tcs = tcs
        self._cpu = kernel.cpu
        self._epoch = kernel.epoch
        self._tlb = kernel.tlb
        self._charge = kernel.clock.charge
        self._columnar = kernel.cpu.columnar

    # repro: hot
    def replay(self, trace):
        """Replay one cached trace: a read run plus a bulk compute
        charge.  Equivalent to ``data_access_run(run)`` followed by
        ``compute(cycles)`` on any engine/tier."""
        enclave = self._enclave
        if enclave.dead:
            enclave.require_alive()
        run, cycles = trace
        if run._stamp_r == self._epoch.value:
            self._tlb.hits += run.n
        else:
            self._slow(run)
        self._charge(cycles)

    def _slow(self, run):
        """Stamp miss: recompile, or fall back to the sequential run
        engine (faults, epoch bumps, and A/D transitions land here)."""
        if self._columnar.execute(run, AccessType.READ) is None:
            self._cpu.access_run(
                self._enclave, self._tcs, run, AccessType.READ
            )
