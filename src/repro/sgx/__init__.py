"""Functional model of the Intel SGX memory-management architecture.

This subpackage implements the hardware substrate the paper builds on:
the enclave page cache (EPC) and its security metadata (EPCM), the
OS-owned page table and TLB, SSA frames and thread control structures,
the SGX1/SGX2 instruction set, and the TLB-miss walk with both the
legacy behaviour and Autarky's proposed modifications (§5.1 of the
paper): fault-address masking, the pending-exception flag, and the
accessed/dirty-bit validity check.
"""

from repro.sgx.params import (
    PAGE_SIZE,
    PAGE_SHIFT,
    AccessType,
    CostModel,
    SgxVersion,
    vpn_of,
    page_base,
)
from repro.sgx.epc import EpcAllocator, EpcFrame
from repro.sgx.epcm import Epcm, EpcmEntry, PageType, Permissions
from repro.sgx.pagetable import PageTable, Pte
from repro.sgx.tlb import Tlb, TlbEntry
from repro.sgx.ssa import SsaFrame, ExitInfo
from repro.sgx.tcs import Tcs
from repro.sgx.enclave import Enclave, EnclaveAttributes
from repro.sgx.crypto import PagingCrypto, SealedPage
from repro.sgx.mmu import Mmu
from repro.sgx.instructions import SgxInstructions
from repro.sgx.cpu import Cpu, ExecutionMode

__all__ = [
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "AccessType",
    "CostModel",
    "SgxVersion",
    "vpn_of",
    "page_base",
    "EpcAllocator",
    "EpcFrame",
    "Epcm",
    "EpcmEntry",
    "PageType",
    "Permissions",
    "PageTable",
    "Pte",
    "Tlb",
    "TlbEntry",
    "SsaFrame",
    "ExitInfo",
    "Tcs",
    "Enclave",
    "EnclaveAttributes",
    "PagingCrypto",
    "SealedPage",
    "Mmu",
    "SgxInstructions",
    "Cpu",
    "ExecutionMode",
]
