"""Enclave Page Cache: the dedicated physical memory region for enclaves.

The EPC is a finite pool of 4 KiB frames.  Frames store page *contents*
(we model contents as arbitrary Python objects so applications can put
real data in pages when an experiment needs it — most workloads only
care about the access trace and leave contents as ``None``).
"""

from __future__ import annotations

from repro.errors import EpcExhausted, SgxError


class EpcFrame:
    """One physical EPC frame."""

    __slots__ = ("pfn", "contents", "in_use")

    def __init__(self, pfn):
        self.pfn = pfn
        self.contents = None
        self.in_use = False

    def __repr__(self):
        state = "used" if self.in_use else "free"
        return f"EpcFrame(pfn={self.pfn}, {state})"


class EpcAllocator:
    """Allocates physical EPC frames.

    The OS driver owns this allocator; per-enclave quotas are enforced a
    level up (in :mod:`repro.host.driver`), matching the paper's note
    that "EPC is a limited resource, and the OS may enforce a limit on
    its use to prevent one enclave from monopolizing EPC".
    """

    def __init__(self, total_pages):
        if total_pages <= 0:
            raise ValueError("EPC must contain at least one page")
        self.total_pages = total_pages
        self._frames = {}
        self._free = list(range(total_pages - 1, -1, -1))

    @property
    def free_pages(self):
        return len(self._free)

    @property
    def used_pages(self):
        return self.total_pages - len(self._free)

    def alloc(self):
        """Allocate a frame, raising :class:`EpcExhausted` when full."""
        if not self._free:
            raise EpcExhausted(
                f"all {self.total_pages} EPC pages are in use"
            )
        pfn = self._free.pop()
        frame = self._frames.get(pfn)
        if frame is None:
            frame = EpcFrame(pfn)
            self._frames[pfn] = frame
        frame.in_use = True
        frame.contents = None
        return frame

    def free(self, frame):
        """Return a frame to the pool (models EREMOVE's frame release)."""
        if not frame.in_use:
            raise SgxError(f"double free of EPC frame {frame.pfn}")
        frame.in_use = False
        frame.contents = None
        self._free.append(frame.pfn)

    def frame(self, pfn):
        """Look up a frame by physical number (must be allocated)."""
        frame = self._frames.get(pfn)
        if frame is None or not frame.in_use:
            raise SgxError(f"EPC frame {pfn} is not allocated")
        return frame

    def resize(self, new_total):
        """Grow or shrink the pool (hypervisor EPC rebalancing, §5.4).

        Growth adds fresh frame numbers; shrinking requires enough free
        frames — in-use frames are never revoked (the guest must have
        ballooned them out first)."""
        if new_total < self.used_pages:
            raise SgxError(
                f"cannot shrink EPC below {self.used_pages} in-use pages"
            )
        if new_total > self.total_pages:
            self._free.extend(range(self.total_pages, new_total))
        else:
            removable = self.total_pages - new_total
            keep = [pfn for pfn in self._free if pfn < new_total]
            if len(self._free) - len(keep) < removable:
                # Some high frames are in use: revoke free low frames
                # instead (frame numbers are fungible here).
                keep = sorted(self._free)[:len(self._free) - removable]
            self._free = keep
        self.total_pages = new_total
