"""Generation stamp for translation-affecting state.

One :class:`TranslationEpoch` is shared by everything that can change
the outcome of an address translation — the page table, the TLB, the
EPCM (via the SGX instructions), and the CPU's mode transitions.  Every
mutation bumps the counter; consumers that memoize translation results
(:class:`repro.sgx.mmu.Mmu`'s fast path) compare their recorded stamp
against the current value and drop the memo wholesale on mismatch.

This is deliberately coarse: a single global generation, not per-page
tracking.  Invalidation events (faults, evictions, shootdowns, SGX
paging instructions) are orders of magnitude rarer than translations
in steady state, so clearing the whole memo on any of them keeps the
protocol trivially auditable — the memo can never outlive *any*
architectural change — while the common case stays one dict probe.
"""

from __future__ import annotations


class TranslationEpoch:
    """A monotonically increasing generation counter."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def bump(self):
        """Record that translation-affecting state changed."""
        self.value += 1

    def __repr__(self):
        return f"TranslationEpoch({self.value})"
