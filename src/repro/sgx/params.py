"""Architectural constants and the calibrated cycle-cost model.

The cost model is calibrated so that the component breakdown of a page
fault / page eviction matches the paper's Figure 5 (≈27k cycles per
fault on the SGXv1 path, ≈32k on the SGXv2 path, with the two enclave
transition pairs accounting for 40–50% of fault latency), and so that
the pessimistic 10-cycle TLB-fill check reproduces the §7 nbench
analysis.  Absolute numbers are not the claim — ratios between the
configurations the paper compares are.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

#: Default EPC of the paper's evaluation machine: 256 MB reserved,
#: ≈190 MB usable for enclave pages.
DEFAULT_EPC_BYTES = 190 * 1024 * 1024
DEFAULT_EPC_PAGES = DEFAULT_EPC_BYTES // PAGE_SIZE

#: Batch size the Intel driver (and our runtime) uses for evictions.
EVICTION_BATCH = 16

#: Default number of SSA frames provisioned per TCS.  §5.3: "we
#: provision sufficient SSA stack to permit detection" of re-entrancy.
DEFAULT_NSSA = 4


def vpn_of(vaddr):
    """Virtual page number of an address."""
    return vaddr >> PAGE_SHIFT


def page_base(vaddr):
    """Base address of the page containing ``vaddr``."""
    return vaddr & ~(PAGE_SIZE - 1)


class AccessType(enum.Enum):
    """Kind of memory access, as seen by the MMU."""

    READ = "r"
    WRITE = "w"
    EXEC = "x"


class SgxVersion(enum.Enum):
    """Which paging mechanism the runtime uses (§6 of the paper).

    SGX1: privileged EWB/ELDU executed by the driver.
    SGX2: dynamic memory management (EAUG/EACCEPTCOPY/EMODT/...) with
    in-enclave crypto, more flexible but with an extra enclave crossing.
    """

    SGX1 = 1
    SGX2 = 2


@dataclass
class CostModel:
    """Cycle costs for every architectural event in the simulation.

    Components of the Figure 5 stacked bars:

    * ``aex`` + ``eresume``  — "Enclave preempt. (AEX+ERESUME)"
    * ``eenter`` + ``eexit`` — "PF handler invoc. (EENTER+EEXIT)"
    * ``autarky_handler``    — "Autarky PF handler overhead"
    * instruction costs      — "SGX paging (inc. encrypt/decrypt)"
    """

    # Enclave transitions.  The paper cites prior work [48]: invoking an
    # enclave exception handler costs >6x a signal handler, and
    # transitions flush TLB and L1.
    aex: int = 4_000
    eresume: int = 3_000
    eenter: int = 4_200
    eexit: int = 4_000

    # Trusted runtime logic on the fault path (bookkeeping, policy).
    autarky_handler: int = 1_200

    # SGX1 privileged paging instructions (per page, incl. HW crypto).
    ewb: int = 9_000
    eldu: int = 10_000

    # SGX2 dynamic memory management (per page).  The SGX2 paging path
    # ends up costlier than SGX1's EWB/ELDU (§7.1): software crypto
    # plus the EACCEPTCOPY copy beat the hardware-assisted reload.
    eaug: int = 2_500
    eaccept: int = 2_000
    eacceptcopy: int = 6_500
    emodpr: int = 2_000
    emodt: int = 2_000
    eremove: int = 1_500

    # Software AES-NI crypto for the SGX2 path (per page).
    encrypt_page: int = 3_500
    decrypt_page: int = 3_500

    # Page walk on TLB miss, and Autarky's extra accessed/dirty check
    # (the paper's pessimistic assumption: 10 cycles per fill).
    tlb_fill: int = 40
    autarky_ad_check: int = 10

    # Crash-consistent recovery (repro.recovery): sealing a checkpoint
    # snapshot, appending one journal record, and replaying one record
    # during restore.  Sized like the SGX2 software-crypto path: MAC a
    # small record ≈ one page MAC; a checkpoint seals a multi-page
    # canonical state blob.
    journal_append: int = 1_800
    checkpoint_seal: int = 14_000
    journal_replay: int = 600

    # Host interaction.
    syscall: int = 1_500          # plain kernel entry (no enclave cross)
    exitless_call: int = 3_500    # exitless RPC to an untrusted thread
    os_fault_handling: int = 900  # kernel #PF dispatch bookkeeping
    pte_update: int = 300         # map/unmap/protect one PTE + shootdown share

    def transition_pair_aex(self):
        """Cost of one preemption round trip (AEX then ERESUME)."""
        return self.aex + self.eresume

    def transition_pair_call(self):
        """Cost of one handler invocation round trip (EENTER then EEXIT)."""
        return self.eenter + self.eexit


@dataclass
class ArchOptimizations:
    """The paper's optional, more intrusive hardware optimizations (§5.1.3).

    ``elide_aex``: on a fault the CPU stays in enclave mode and jumps to
    the in-enclave handler directly (no AEX, no OS, no EENTER).
    ``in_enclave_resume``: an in-enclave ERESUME variant pops the SSA
    frame without an EEXIT/ERESUME round trip through the host.

    Table 2 and Figure 7 report results with and without these
    ("no upcall" enables ``in_enclave_resume``; "no upcall/AEX" enables
    both).
    """

    elide_aex: bool = False
    in_enclave_resume: bool = False
