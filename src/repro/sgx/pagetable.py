"""The OS-owned page table.

This is the attack surface: the untrusted OS (and therefore the
controlled-channel attacker) has full read/write access to every PTE —
it can unmap pages, downgrade permissions, and clear or sample the
accessed/dirty bits.  SGX's integrity comes from the EPCM check *after*
the walk, not from protecting the page table itself.
"""

from __future__ import annotations

from repro.errors import SgxError
from repro.sgx.epoch import TranslationEpoch
from repro.sgx.params import AccessType, vpn_of


class Pte:
    """An x86-style page table entry (the bits the paper's attack uses).

    A plain ``__slots__`` class rather than a dataclass: one of these
    exists per mapped page and is probed on every TLB miss, so the
    per-instance dict is measurable overhead at experiment scale.
    """

    __slots__ = ("pfn", "present", "writable", "executable",
                 "accessed", "dirty")

    def __init__(self, pfn, present=True, writable=True, executable=False,
                 accessed=False, dirty=False):
        self.pfn = pfn
        self.present = present
        self.writable = writable
        self.executable = executable
        self.accessed = accessed
        self.dirty = dirty

    def allows(self, access):
        if access is AccessType.READ:
            return True
        if access is AccessType.WRITE:
            return self.writable
        if access is AccessType.EXEC:
            return self.executable
        raise ValueError(f"unknown access type {access!r}")


class PageTable:
    """Sparse map of virtual page number → :class:`Pte`.

    All mutation goes through named methods rather than raw dict access
    so that attacker actions (``unmap``, ``clear_accessed_dirty``,
    ``set_protection``) and legitimate OS actions are explicit in traces
    and tests.  Every mutator bumps the translation epoch, so memoized
    translations (the MMU fast path) can never observe a stale PTE.
    """

    def __init__(self, epoch=None):
        self._ptes = {}
        #: TLB(s) to notify on unmap/protect — the OS performs the TLB
        #: shootdown that the SGX flows require.
        self._shootdown_targets = []
        #: Shared generation stamp (private when standing alone).
        self.epoch = epoch if epoch is not None else TranslationEpoch()
        #: Optional lifecycle witness, called ``op_observer("drop",
        #: vaddr)`` when a mapping is removed — the shootdown step of
        #: the EBLOCK → drop → EWB eviction protocol the model
        #: checker's runtime oracle verifies.
        self.op_observer = None

    def register_tlb(self, tlb):
        self._shootdown_targets.append(tlb)

    # -- lookups ---------------------------------------------------------

    def lookup(self, vaddr):
        """Return the PTE covering ``vaddr`` or ``None`` if unmapped."""
        return self._ptes.get(vpn_of(vaddr))

    def mapped_vpns(self):
        """All VPNs with a present mapping (attacker enumeration)."""
        return [vpn for vpn, pte in self._ptes.items() if pte.present]

    # -- OS / attacker mutations -----------------------------------------

    def map(self, vaddr, pfn, writable=True, executable=False,
            accessed=False, dirty=False):
        self.epoch.value += 1
        vpn = vpn_of(vaddr)
        self._ptes[vpn] = Pte(
            pfn=pfn,
            present=True,
            writable=writable,
            executable=executable,
            accessed=accessed,
            dirty=dirty,
        )
        return self._ptes[vpn]

    def unmap(self, vaddr):
        """Clear the present bit (keeps the PFN for later remap)."""
        self.epoch.value += 1
        pte = self._require(vaddr)
        pte.present = False
        self._shootdown(vaddr)

    def remap(self, vaddr):
        """Restore the present bit of a previously unmapped page."""
        self.epoch.value += 1
        pte = self._require(vaddr, present_ok=False)
        pte.present = True

    def drop(self, vaddr):
        """Remove the PTE entirely (page fully deallocated)."""
        self.epoch.value += 1
        self._ptes.pop(vpn_of(vaddr), None)
        self._shootdown(vaddr)
        if self.op_observer is not None:
            self.op_observer("drop", vaddr)

    def set_protection(self, vaddr, writable=None, executable=None):
        self.epoch.value += 1
        pte = self._require(vaddr)
        if writable is not None:
            pte.writable = writable
        if executable is not None:
            pte.executable = executable
        self._shootdown(vaddr)

    def set_accessed_dirty(self, vaddr, accessed=None, dirty=None):
        """Set or clear A/D bits (used both by the MMU walk and by the
        attacker's monitoring loop, and by Autarky's driver which must
        pre-set both bits for self-paging enclaves)."""
        self.epoch.value += 1
        pte = self._require(vaddr, present_ok=False)
        if accessed is not None:
            pte.accessed = accessed
        if dirty is not None:
            pte.dirty = dirty
        self._shootdown(vaddr)

    def read_accessed_dirty(self, vaddr):
        """Sample the A/D bits of a page (attacker primitive)."""
        pte = self._require(vaddr, present_ok=False)
        return pte.accessed, pte.dirty

    # -- internals ---------------------------------------------------------

    def _require(self, vaddr, present_ok=True):
        pte = self._ptes.get(vpn_of(vaddr))
        if pte is None:
            raise SgxError(f"no PTE for {vaddr:#x}")
        if present_ok and not pte.present:
            # Operating on a non-present PTE is legal for the OS; only
            # flag cases where calling code clearly expected presence.
            pass
        return pte

    def _shootdown(self, vaddr):
        for tlb in self._shootdown_targets:
            tlb.flush_page(vaddr)
