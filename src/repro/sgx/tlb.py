"""TLB model with SGX's enclave-transition flush semantics.

Two properties matter for the paper:

* The TLB is flushed on every enclave entry and exit, so the first
  access to each page after a transition always triggers a walk — this
  is why transition costs dominate fault latency, and why the
  accessed/dirty-bit channel works (the OS can force re-walks).

* Autarky's A/D-bit defense is checked at *fill* time; once an entry is
  cached, later hits bypass the page table entirely, which is exactly
  the time-of-check semantics §5.1.4 reasons about.

Every operation that removes an entry — full flush, single-page
shootdown, capacity eviction — bumps the shared translation epoch, so
the MMU's memoized fast path can never return a translation the TLB no
longer holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sgx.epoch import TranslationEpoch
from repro.sgx.params import PAGE_SHIFT, AccessType


@dataclass
class TlbEntry:
    __slots__ = ("pfn", "writable", "executable")

    pfn: int
    writable: bool
    executable: bool

    def allows(self, access):
        if access is AccessType.READ:
            return True
        if access is AccessType.WRITE:
            return self.writable
        if access is AccessType.EXEC:
            return self.executable
        raise ValueError(f"unknown access type {access!r}")


class Tlb:
    """TLB with optional capacity.

    ``capacity=None`` (default) models an unbounded TLB — adequate for
    the paging experiments, where flush-on-transition dominates.  The
    nbench architecture-overhead analysis (E1) sets a realistic
    capacity (~1536 entries for Ice Lake's STLB) so capacity misses
    generate the fill stream the 10-cycle Autarky check taxes.
    Replacement is FIFO (dict insertion order), a standard approximation.
    """

    def __init__(self, capacity=None, epoch=None):
        self.capacity = capacity
        self._entries = {}
        self.fills = 0
        self.hits = 0
        self.flushes = 0
        #: Shared generation stamp (private when standing alone).
        self.epoch = epoch if epoch is not None else TranslationEpoch()

    def lookup(self, vaddr, access):
        """Return the cached PFN or ``None`` (miss or insufficient perms).

        A permission mismatch is treated as a miss so the walk (and its
        SGX checks) re-runs, matching hardware behaviour.
        """
        entry = self._entries.get(vaddr >> PAGE_SHIFT)
        if entry is None or not entry.allows(access):
            return None
        self.hits += 1
        return entry.pfn

    # Installing an entry only *adds* a translation the walk just
    # validated; memos minted earlier stay correct, so no epoch bump
    # is needed on the fill path (the capacity-eviction branch, which
    # removes a translation, does bump).
    # repro: allow[effects/epoch-soundness]
    def install(self, vaddr, pfn, writable, executable):
        self.fills += 1
        if self.capacity is not None and len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
            self.epoch.value += 1
        self._entries[vaddr >> PAGE_SHIFT] = TlbEntry(
            pfn, writable, executable
        )

    def flush(self):
        """Full flush (EENTER/EEXIT/AEX)."""
        self.flushes += 1
        self._entries.clear()
        self.epoch.value += 1

    def flush_page(self, vaddr):
        """Single-page shootdown (OS unmap/protect)."""
        self._entries.pop(vaddr >> PAGE_SHIFT, None)
        self.epoch.value += 1

    def residency(self):
        """The live ``{vpn: TlbEntry}`` map — the residency/permission
        table the columnar engine compiles against.

        Callers must treat it as read-only; it is mutated strictly in
        place by the TLB itself, and every entry removal bumps the
        shared epoch, which is what keeps compiled columns sound.
        """
        return self._entries

    def __contains__(self, vaddr):
        return vaddr >> PAGE_SHIFT in self._entries
