"""The enclave object (SECS plus launch state).

An enclave occupies a contiguous region of virtual address space.  Its
attributes — including Autarky's new ``SELF_PAGING`` bit (§5.1.1) — are
part of the attested measurement, so a remote verifier can insist the
defense is enabled.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import SgxError
from repro.sgx.params import PAGE_SIZE, vpn_of


@dataclass(frozen=True)
class EnclaveAttributes:
    """Attested enclave attribute bits."""

    #: Autarky's new attribute: enables fault masking, the pending
    #: exception flag, and the A/D-bit fill check for this enclave.
    self_paging: bool = False
    #: SGX2 dynamic memory management available to this enclave.
    sgx2: bool = True


@dataclass
class Measurement:
    """A toy MRENCLAVE: an append-only log of (op, vaddr) records.

    Remote attestation over this log is what lets users detect the
    restart attacks the paper rules out of scope (§3)."""

    records: list = field(default_factory=list)

    def extend(self, op, vaddr):
        self.records.append((op, vaddr))

    def digest(self):
        """A stable digest of the measurement log.

        Must not vary across interpreter invocations (a remote verifier
        compares it against an expected value), so it is sha256 over a
        canonical encoding rather than the salted builtin ``hash``.
        """
        encoded = "\x1f".join(
            f"{op}:{vaddr}" for op, vaddr in self.records
        ).encode()
        return int.from_bytes(
            hashlib.sha256(encoded).digest()[:8], "big"
        )


class Enclave:
    """One enclave: address range, attributes, threads, and launch state."""

    _next_id = 1

    def __init__(self, base, size_pages, attributes=None):
        if base % PAGE_SIZE:
            raise SgxError("enclave base must be page aligned")
        self.enclave_id = Enclave._next_id
        Enclave._next_id += 1
        self.base = base
        self.size_pages = size_pages
        self.attributes = attributes or EnclaveAttributes()
        self.measurement = Measurement()
        self.initialized = False
        self.dead = False
        self.tcs_list = []
        #: Trusted software attached at launch; the CPU calls
        #: ``runtime.on_enter(tcs)`` on EENTER.  ``None`` until the
        #: runtime registers itself.
        self.runtime = None
        #: vpn -> pfn for pages currently backed by EPC (hardware-side
        #: view used by instructions; the *OS* view lives in the page
        #: table, and the two can diverge — that divergence is the attack).
        self.backed = {}

    @property
    def self_paging(self):
        return self.attributes.self_paging

    @property
    def limit(self):
        """One past the last valid enclave address."""
        return self.base + self.size_pages * PAGE_SIZE

    def contains(self, vaddr):
        return self.base <= vaddr < self.limit

    def contains_vpn(self, vpn):
        return vpn_of(self.base) <= vpn < vpn_of(self.base) + self.size_pages

    def add_tcs(self, tcs):
        self.tcs_list.append(tcs)

    def require_alive(self):
        if self.dead:
            raise SgxError("enclave has been terminated")

    def __repr__(self):
        return (
            f"Enclave(id={self.enclave_id}, base={self.base:#x}, "
            f"pages={self.size_pages}, self_paging={self.self_paging})"
        )
