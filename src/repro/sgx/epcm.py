"""EPC Map: SGX's trusted per-frame security metadata.

The EPCM is inaccessible to software; it is read and written only by
SGX instructions and consulted by the MMU after every page walk that
targets the EPC.  It is what lets the CPU detect an OS that maps the
wrong frame, the wrong enclave's frame, or stale permissions — the
"monitoring the OS's actions to ensure correctness" half of the SGX
design the paper builds on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import EpcmViolation
from repro.sgx.params import AccessType


class PageType(enum.Enum):
    """EPCM page types (subset of the architecture relevant to paging)."""

    SECS = "secs"    # enclave control structure
    TCS = "tcs"      # thread control structure
    REG = "reg"      # regular enclave page
    VA = "va"        # version array (anti-replay slots for EWB)
    TRIM = "trim"    # page undergoing EMODT trim


@dataclass(frozen=True)
class Permissions:
    """EPCM read/write/execute permissions for a page."""

    read: bool = True
    write: bool = True
    execute: bool = False

    def allows(self, access):
        if access is AccessType.READ:
            return self.read
        if access is AccessType.WRITE:
            return self.write
        if access is AccessType.EXEC:
            return self.execute
        raise ValueError(f"unknown access type {access!r}")

    def without_write(self):
        return Permissions(self.read, False, self.execute)

    RW = None  # filled in below
    RX = None
    RWX = None
    R = None


Permissions.RW = Permissions(True, True, False)
Permissions.RX = Permissions(True, False, True)
Permissions.RWX = Permissions(True, True, True)
Permissions.R = Permissions(True, False, False)


class EpcmEntry:
    """Security attributes of one EPC frame.

    ``pending``/``modified`` implement the SGX2 two-phase protocol: the
    OS proposes a change (EAUG sets pending, EMODT sets modified) and
    the enclave must EACCEPT it before the page becomes usable again.
    ``blocked`` marks a page mid-eviction (EBLOCK semantics are folded
    into EWB here for simplicity; the paper does not rely on EBLOCK
    separately).

    A ``__slots__`` class: one entry exists per EPC frame (hundreds of
    thousands at experiment scale) and the MMU reads one on every walk.
    """

    __slots__ = ("valid", "page_type", "enclave_id", "vaddr", "perms",
                 "pending", "modified", "blocked")

    def __init__(self, valid=False, page_type=PageType.REG, enclave_id=-1,
                 vaddr=-1, perms=None, pending=False, modified=False,
                 blocked=False):
        self.valid = valid
        self.page_type = page_type
        self.enclave_id = enclave_id
        self.vaddr = vaddr
        self.perms = perms if perms is not None else Permissions.RW
        self.pending = pending
        self.modified = modified
        self.blocked = blocked


class Epcm:
    """The EPC map: one entry per physical EPC frame."""

    def __init__(self, total_pages):
        self._entries = [EpcmEntry() for _ in range(total_pages)]

    def entry(self, pfn):
        return self._entries[pfn]

    def check_access(self, pfn, enclave_id, vaddr, access):
        """The MMU's post-walk EPCM check (§2.1 "Access control").

        Raises :class:`EpcmViolation` when the mapping the OS installed
        does not match what the enclave agreed to — the hardware turns
        this into a page fault.
        """
        entry = self._entries[pfn]
        if not entry.valid:
            raise EpcmViolation(f"pfn {pfn}: EPCM entry invalid")
        if entry.page_type is not PageType.REG:
            raise EpcmViolation(
                f"pfn {pfn}: page type {entry.page_type} not accessible"
            )
        if entry.enclave_id != enclave_id:
            raise EpcmViolation(
                f"pfn {pfn}: belongs to enclave {entry.enclave_id}, "
                f"not {enclave_id}"
            )
        if entry.vaddr != vaddr:
            raise EpcmViolation(
                f"pfn {pfn}: linked to vaddr {entry.vaddr:#x}, "
                f"mapped at {vaddr:#x}"
            )
        if entry.pending or entry.modified:
            raise EpcmViolation(
                f"pfn {pfn}: pending/modified — enclave has not EACCEPTed"
            )
        if entry.blocked:
            raise EpcmViolation(f"pfn {pfn}: blocked for eviction")
        if not entry.perms.allows(access):
            raise EpcmViolation(
                f"pfn {pfn}: EPCM perms {entry.perms} deny {access}"
            )
