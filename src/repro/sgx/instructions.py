"""The SGX instruction set (the subset the paper's flows depend on).

Launch:    ECREATE, EADD, EINIT
Paging v1: EWB, ELDU                       (privileged, driver-executed)
Paging v2: EAUG, EACCEPT, EACCEPTCOPY, EMODPR, EMODT, EREMOVE
           (OS proposes, unprivileged enclave code confirms)

Every instruction enforces the architectural rules: the OS cannot forge
contents (crypto), cannot replay stale pages (versioning), and cannot
change a live enclave's memory without the enclave's EACCEPT.  Costs
are charged to :data:`Category.SGX_PAGING` so Figure 5 can be rebuilt.
"""

from __future__ import annotations

from repro.clock import Category
from repro.errors import SgxError
from repro.sgx.enclave import Enclave
from repro.sgx.epcm import PageType, Permissions
from repro.sgx.epoch import TranslationEpoch
from repro.sgx.params import PAGE_SIZE, page_base, vpn_of
from repro.sgx.tcs import Tcs


class SgxInstructions:
    """Executes SGX instructions against shared EPC/EPCM state."""

    def __init__(self, epc, epcm, clock, cost, epoch=None):
        self.epc = epc
        self.epcm = epcm
        self.clock = clock
        self.cost = cost
        #: Translation generation stamp, bumped by every instruction
        #: that mutates EPCM state (the kernel shares one stamp across
        #: the whole machine; standalone rigs get a private one).
        self.epoch = epoch if epoch is not None else TranslationEpoch()
        #: The CPU's EWB/ELDU sealing engine (one key per package).
        from repro.sgx.crypto import PagingCrypto
        self.hw_crypto = PagingCrypto()
        self.enclaves = {}
        #: Registered by the kernel at boot so EWB can verify the
        #: ETRACK shootdown completed (no stale translations).
        self.tlb = None
        #: Optional chaos hook consulted before EAUG allocates: a
        #: scripted host may refuse the augmentation (EPC pressure) by
        #: raising from the hook.  See repro.chaos.
        self.fault_hook = None
        #: Optional lifecycle witness, called ``op_observer(name,
        #: enclave, vaddr)`` after each protocol-relevant instruction
        #: *completes* (a refused instruction never happened).  The
        #: model checker's runtime oracle feeds these into the same
        #: automata the static lifecycle pass runs.
        self.op_observer = None

    def _observe(self, name, enclave, vaddr=None):
        if self.op_observer is not None:
            self.op_observer(name, enclave, vaddr)

    # -- launch ----------------------------------------------------------

    def ecreate(self, base, size_pages, attributes=None):
        enclave = Enclave(base, size_pages, attributes)
        self.enclaves[enclave.enclave_id] = enclave
        enclave.measurement.extend("ECREATE", base)
        self._observe("ecreate", enclave)
        return enclave

    def eadd(self, enclave, vaddr, contents=None, perms=Permissions.RW,
             page_type=PageType.REG):
        """Add and measure an initial page (pre-EINIT)."""
        self._check_range(enclave, vaddr)
        if enclave.initialized:
            raise SgxError("EADD after EINIT")
        pfn = self._install(enclave, vaddr, contents, perms, page_type)
        enclave.measurement.extend("EADD", vaddr)
        self._observe("eadd", enclave, vaddr)
        return pfn

    def eadd_tcs(self, enclave, vaddr, nssa=None):
        """Add a TCS page; returns the TCS object."""
        from repro.sgx.params import DEFAULT_NSSA
        tcs = Tcs(nssa or DEFAULT_NSSA)
        self.eadd(enclave, vaddr, contents=tcs, perms=Permissions.RW,
                  page_type=PageType.TCS)
        enclave.add_tcs(tcs)
        return tcs

    def einit(self, enclave):
        if enclave.initialized:
            raise SgxError("double EINIT")
        enclave.initialized = True
        self._observe("einit", enclave)

    # -- SGX1 paging (privileged) ------------------------------------------

    # EBLOCK's few hundred cycles are folded into the EWB figure the
    # cost model calibrates against (§7.1 measures the eviction
    # sequence as a whole), so charging here would double-count.
    # repro: allow[cycle-accounting] cost folded into the EWB figure
    def eblock(self, enclave, vaddr):
        """Mark a page blocked: no *new* TLB translations may be
        created for it (existing ones persist until shot down — the
        window ETRACK exists to close)."""
        self.epoch.value += 1
        entry = self._entry_for(enclave, vaddr)
        if entry.blocked:
            raise SgxError(f"EBLOCK: {vaddr:#x} already blocked")
        entry.blocked = True
        self._observe("eblock", enclave, vaddr)

    def ewb(self, enclave, vaddr):
        """Evict a page: seal contents, free the frame, return the blob.

        Architectural preconditions enforced here (§2.1): the page must
        be EBLOCKed, and no logical processor may still hold a cached
        translation — i.e. the ETRACK/IPI shootdown sequence completed.
        We verify the latter directly against the TLB when the kernel
        registered one.
        """
        self.epoch.value += 1
        self.clock.charge(self.cost.ewb, Category.SGX_PAGING)
        vpn = vpn_of(vaddr)
        pfn = enclave.backed.get(vpn)
        if pfn is None:
            raise SgxError(f"EWB: {vaddr:#x} not backed by EPC")
        entry = self.epcm.entry(pfn)
        if not entry.blocked:
            raise SgxError(
                f"EWB: {vaddr:#x} not blocked (EBLOCK required first)"
            )
        if self.tlb is not None and page_base(vaddr) in self.tlb:
            raise SgxError(
                f"EWB: stale TLB translation for {vaddr:#x} "
                "(ETRACK shootdown incomplete)"
            )
        frame = self.epc.frame(pfn)
        sealed = self.hw_crypto.seal(
            enclave.enclave_id, page_base(vaddr), frame.contents
        )
        entry.valid = False
        entry.blocked = False
        self.epc.free(frame)
        del enclave.backed[vpn]
        self._observe("ewb", enclave, vaddr)
        return sealed

    def eldu(self, enclave, vaddr, sealed, perms=Permissions.RW):
        """Reload an evicted page, verifying integrity and freshness."""
        self._check_range(enclave, vaddr)
        self.clock.charge(self.cost.eldu, Category.SGX_PAGING)
        contents = self.hw_crypto.unseal(
            enclave.enclave_id, page_base(vaddr), sealed
        )
        pfn = self._install(enclave, vaddr, contents, perms, PageType.REG)
        self._observe("eldu", enclave, vaddr)
        return pfn

    # -- SGX2 dynamic memory management ------------------------------------

    def eaug(self, enclave, vaddr):
        """OS adds a zeroed page in pending state (needs EACCEPT[COPY])."""
        self._check_range(enclave, vaddr)
        if not enclave.attributes.sgx2:
            raise SgxError("EAUG requires SGX2")
        if self.fault_hook is not None:
            self.fault_hook("eaug", enclave, vaddr)
        self.clock.charge(self.cost.eaug, Category.SGX_PAGING)
        pfn = self._install(enclave, vaddr, None, Permissions.RW,
                            PageType.REG)
        self.epcm.entry(pfn).pending = True
        return pfn

    def eaccept(self, enclave, vaddr):
        """Enclave confirms an OS-proposed change (clears pending/modified)."""
        self.epoch.value += 1
        self.clock.charge(self.cost.eaccept, Category.SGX_PAGING)
        entry = self._entry_for(enclave, vaddr)
        if not (entry.pending or entry.modified):
            raise SgxError(f"EACCEPT: nothing pending at {vaddr:#x}")
        entry.pending = False
        entry.modified = False

    def eacceptcopy(self, enclave, vaddr, contents):
        """Enclave accepts a pending page, initializing its contents —
        the SGX2 page-in path (contents were decrypted in-enclave)."""
        self.epoch.value += 1
        self.clock.charge(self.cost.eacceptcopy, Category.SGX_PAGING)
        entry = self._entry_for(enclave, vaddr)
        if not entry.pending:
            raise SgxError(f"EACCEPTCOPY: page not pending at {vaddr:#x}")
        entry.pending = False
        pfn = enclave.backed[vpn_of(vaddr)]
        self.epc.frame(pfn).contents = contents
        return pfn

    def emodpe(self, enclave, vaddr, perms):
        """Enclave-side permission *extension* (e.g. RW → RX after the
        enclave verified freshly-loaded code).  Unlike EMODPR this runs
        inside the enclave and takes effect immediately."""
        self.epoch.value += 1
        self.clock.charge(self.cost.eaccept, Category.SGX_PAGING)
        entry = self._entry_for(enclave, vaddr)
        if (entry.perms.read and not perms.read) or \
           (entry.perms.write and not perms.write) or \
           (entry.perms.execute and not perms.execute):
            raise SgxError("EMODPE can only extend permissions")
        entry.perms = perms

    def emodpr(self, enclave, vaddr, perms):
        """OS proposes a permission *reduction* (needs EACCEPT)."""
        self.epoch.value += 1
        self.clock.charge(self.cost.emodpr, Category.SGX_PAGING)
        entry = self._entry_for(enclave, vaddr)
        if (perms.read and not entry.perms.read) or \
           (perms.write and not entry.perms.write) or \
           (perms.execute and not entry.perms.execute):
            raise SgxError("EMODPR can only reduce permissions")
        entry.perms = perms
        entry.modified = True

    def emodt(self, enclave, vaddr, page_type=PageType.TRIM):
        """OS proposes a type change — trimming for deallocation."""
        self.epoch.value += 1
        self.clock.charge(self.cost.emodt, Category.SGX_PAGING)
        entry = self._entry_for(enclave, vaddr)
        entry.page_type = page_type
        entry.modified = True

    def eremove(self, enclave, vaddr):
        """Free a trimmed-and-accepted (or dead-enclave) page."""
        self.epoch.value += 1
        self.clock.charge(self.cost.eremove, Category.SGX_PAGING)
        vpn = vpn_of(vaddr)
        pfn = enclave.backed.get(vpn)
        if pfn is None:
            raise SgxError(f"EREMOVE: {vaddr:#x} not backed")
        entry = self.epcm.entry(pfn)
        trimmed = entry.page_type is PageType.TRIM and not entry.modified
        if not (trimmed or enclave.dead):
            raise SgxError(
                "EREMOVE on a live, untrimmed page (would break the enclave)"
            )
        entry.valid = False
        entry.page_type = PageType.REG
        self.epc.free(self.epc.frame(pfn))
        del enclave.backed[vpn]

    # -- helpers -----------------------------------------------------------

    def _install(self, enclave, vaddr, contents, perms, page_type):
        if vaddr % PAGE_SIZE:
            raise SgxError(f"unaligned enclave page {vaddr:#x}")
        self.epoch.value += 1
        vpn = vpn_of(vaddr)
        if vpn in enclave.backed:
            raise SgxError(f"{vaddr:#x} already backed by EPC")
        frame = self.epc.alloc()
        frame.contents = contents
        entry = self.epcm.entry(frame.pfn)
        entry.valid = True
        entry.page_type = page_type
        entry.enclave_id = enclave.enclave_id
        entry.vaddr = vaddr
        entry.perms = perms
        entry.pending = False
        entry.modified = False
        entry.blocked = False
        enclave.backed[vpn] = frame.pfn
        return frame.pfn

    def _entry_for(self, enclave, vaddr):
        pfn = enclave.backed.get(vpn_of(vaddr))
        if pfn is None:
            raise SgxError(f"{vaddr:#x} not backed by EPC")
        return self.epcm.entry(pfn)

    def _check_range(self, enclave, vaddr):
        if not enclave.contains(vaddr):
            raise SgxError(
                f"{vaddr:#x} outside enclave "
                f"[{enclave.base:#x}, {enclave.limit:#x})"
            )
