"""Paging crypto model: confidentiality, integrity, and anti-replay.

EWB seals an evicted page (contents + metadata MAC + version counter);
ELDU verifies and unseals.  The version counter models SGX's version
array (VA) pages: reloading a stale copy of a page fails, which is the
anti-replay guarantee §2.1 describes.  The SGX2 software path uses the
same object with the enclave's own sealing key.

We model the MAC as structural validation over Python objects rather
than real AES-GCM — the *checks* (and their cycle costs, charged by the
callers) are what the paper's flows depend on, not the cipher itself.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import IntegrityError


@dataclass(frozen=True)
class SealedPage:
    """An encrypted page in untrusted memory."""

    enclave_id: int
    vaddr: int
    version: int
    nonce: int
    ciphertext: object   # stands in for the encrypted page contents
    mac: int


class PagingCrypto:
    """Seals and unseals enclave pages with replay protection.

    One instance per protection domain (the CPU's EWB/ELDU engine, or an
    enclave's in-enclave SGX2 sealing context).
    """

    def __init__(self):
        self._nonce = itertools.count(1)
        #: (enclave_id, vaddr) -> monotonically increasing seal count.
        #: Never reset, so a blob from an earlier eviction epoch can
        #: never match again (models the VA-slot anti-replay property).
        self._next_version = {}
        #: (enclave_id, vaddr) -> version of the one outstanding sealed
        #: copy, or absent when the page is resident.
        self._outstanding = {}

    def seal(self, enclave_id, vaddr, contents):
        key = (enclave_id, vaddr)
        version = self._next_version.get(key, 0) + 1
        self._next_version[key] = version
        self._outstanding[key] = version
        nonce = next(self._nonce)
        mac = self._mac(enclave_id, vaddr, version, nonce, contents)
        return SealedPage(
            enclave_id=enclave_id,
            vaddr=vaddr,
            version=version,
            nonce=nonce,
            ciphertext=contents,
            mac=mac,
        )

    def unseal(self, enclave_id, vaddr, sealed):
        """Verify and decrypt; raises :class:`IntegrityError` on any
        tampering, substitution, or replay."""
        if sealed.enclave_id != enclave_id:
            raise IntegrityError(
                f"page sealed for enclave {sealed.enclave_id}, "
                f"loaded into {enclave_id}"
            )
        if sealed.vaddr != vaddr:
            raise IntegrityError(
                f"page sealed for {sealed.vaddr:#x}, loaded at {vaddr:#x}"
            )
        expected = self._outstanding.get((enclave_id, vaddr))
        if expected is None:
            raise IntegrityError(
                f"no outstanding sealed copy for {vaddr:#x} (replay?)"
            )
        if sealed.version != expected:
            raise IntegrityError(
                f"version {sealed.version} != expected {expected} "
                f"for {vaddr:#x} (replay)"
            )
        mac = self._mac(
            sealed.enclave_id, sealed.vaddr, sealed.version,
            sealed.nonce, sealed.ciphertext,
        )
        if mac != sealed.mac:
            raise IntegrityError(f"MAC mismatch for {vaddr:#x}")
        del self._outstanding[(enclave_id, vaddr)]
        return sealed.ciphertext

    @staticmethod
    def _mac(enclave_id, vaddr, version, nonce, contents):
        # The MAC must cover the ciphertext object's *identity* so
        # substitution is caught; tokens are produced and checked within
        # one run and never surface in any simulated result, so the
        # per-process salt is harmless here.
        # repro: allow[determinism] intra-run token, never in results
        return hash((enclave_id, vaddr, version, nonce, id(contents)))
