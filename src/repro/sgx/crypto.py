"""Paging crypto model: confidentiality, integrity, and anti-replay.

EWB seals an evicted page (contents + metadata MAC + version counter);
ELDU verifies and unseals.  The version counter models SGX's version
array (VA) pages: reloading a stale copy of a page fails, which is the
anti-replay guarantee §2.1 describes.  The SGX2 software path uses the
same object with the enclave's own sealing key.

We model the MAC as structural validation over Python objects rather
than real AES-GCM — the *checks* (and their cycle costs, charged by the
callers) are what the paper's flows depend on, not the cipher itself.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

from repro.errors import IntegrityError


@dataclass(frozen=True)
class SealedPage:
    """An encrypted page in untrusted memory."""

    enclave_id: int
    vaddr: int
    version: int
    nonce: int
    ciphertext: object   # stands in for the encrypted page contents
    mac: int


class PagingCrypto:
    """Seals and unseals enclave pages with replay protection.

    One instance per protection domain (the CPU's EWB/ELDU engine, or an
    enclave's in-enclave SGX2 sealing context).
    """

    def __init__(self):
        self._nonce = itertools.count(1)
        #: (enclave_id, vaddr) -> monotonically increasing seal count.
        #: Never reset, so a blob from an earlier eviction epoch can
        #: never match again (models the VA-slot anti-replay property).
        self._next_version = {}
        #: (enclave_id, vaddr) -> version of the one outstanding sealed
        #: copy, or absent when the page is resident.
        self._outstanding = {}

    def seal(self, enclave_id, vaddr, contents):
        key = (enclave_id, vaddr)
        version = self._next_version.get(key, 0) + 1
        self._next_version[key] = version
        self._outstanding[key] = version
        nonce = next(self._nonce)
        mac = self._mac(enclave_id, vaddr, version, nonce, contents)
        return SealedPage(
            enclave_id=enclave_id,
            vaddr=vaddr,
            version=version,
            nonce=nonce,
            ciphertext=contents,
            mac=mac,
        )

    def unseal(self, enclave_id, vaddr, sealed):
        """Verify and decrypt; raises :class:`IntegrityError` on any
        tampering, substitution, or replay."""
        if sealed.enclave_id != enclave_id:
            raise IntegrityError(
                f"page sealed for enclave {sealed.enclave_id}, "
                f"loaded into {enclave_id}"
            )
        if sealed.vaddr != vaddr:
            raise IntegrityError(
                f"page sealed for {sealed.vaddr:#x}, loaded at {vaddr:#x}"
            )
        expected = self._outstanding.get((enclave_id, vaddr))
        if expected is None:
            raise IntegrityError(
                f"no outstanding sealed copy for {vaddr:#x} (replay?)"
            )
        if sealed.version != expected:
            raise IntegrityError(
                f"version {sealed.version} != expected {expected} "
                f"for {vaddr:#x} (replay)"
            )
        mac = self._mac(
            sealed.enclave_id, sealed.vaddr, sealed.version,
            sealed.nonce, sealed.ciphertext,
        )
        if mac != sealed.mac:
            raise IntegrityError(f"MAC mismatch for {vaddr:#x}")
        del self._outstanding[(enclave_id, vaddr)]
        return sealed.ciphertext

    def outstanding_table(self, enclave_id):
        """Sorted ``(vaddr, version)`` tuples of every outstanding sealed
        copy for ``enclave_id`` — the anti-replay state an enclave must
        re-establish bit-for-bit after a crash (recovery fingerprints
        include it; ``_next_version`` is deliberately excluded: it is a
        local allocator, not observable state)."""
        return tuple(sorted(
            (vaddr, version)
            for (eid, vaddr), version in self._outstanding.items()
            if eid == enclave_id
        ))

    @staticmethod
    def _mac(enclave_id, vaddr, version, nonce, contents):
        # The MAC must cover the ciphertext object's *identity* so
        # substitution is caught; tokens are produced and checked within
        # one run and never surface in any simulated result, so the
        # per-process salt is harmless here.
        # repro: allow[determinism] intra-run token, never in results
        return hash((enclave_id, vaddr, version, nonce, id(contents)))


@dataclass(frozen=True)
class SealedBlob:
    """A sealed state blob in untrusted storage (checkpoint snapshot or
    one journal record).  ``payload`` must be a canonical (hashable,
    deterministically ordered) tuple tree — the MAC covers its repr."""

    kind: str
    seq: int
    payload: object
    prev_mac: str
    mac: str


class StateSealer:
    """Seals recovery state (checkpoints, journal records) under a key
    derived from the enclave *measurement*, not its launch identity.

    Two launches of the same program have the same measurement, so a
    restarted enclave can unseal what its crashed predecessor wrote —
    exactly SGX's MRENCLAVE sealing policy.  MACs are hash-chained
    (``prev_mac`` is covered by each record's MAC) so truncating or
    corrupting any *interior* record invalidates the whole suffix; only
    the very tail can be torn off, which recovery treats as a torn
    write.  Unlike :class:`PagingCrypto` this uses sha256 — the MACs
    land in deterministic fingerprints, so the salted builtin ``hash``
    is off the table.
    """

    GENESIS = "genesis"

    def __init__(self, measurement):
        self._key = hashlib.sha256(
            f"repro-state-sealer:{measurement}".encode()
        ).hexdigest()

    def mac(self, kind, seq, payload, prev_mac):
        body = repr((self._key, kind, seq, payload, prev_mac))
        return hashlib.sha256(body.encode()).hexdigest()

    def seal(self, kind, seq, payload, prev_mac=GENESIS):
        return SealedBlob(
            kind=kind, seq=seq, payload=payload, prev_mac=prev_mac,
            mac=self.mac(kind, seq, payload, prev_mac),
        )

    def verify(self, blob, expected_prev=None):
        """Check a blob's MAC (and, when given, its chain link); raises
        :class:`IntegrityError` on any mismatch."""
        if expected_prev is not None and blob.prev_mac != expected_prev:
            raise IntegrityError(
                f"journal chain break at seq {blob.seq} "
                f"({blob.kind}): prev MAC mismatch"
            )
        if self.mac(blob.kind, blob.seq, blob.payload,
                    blob.prev_mac) != blob.mac:
            raise IntegrityError(
                f"sealed {blob.kind} blob seq {blob.seq}: MAC mismatch"
            )
        return blob.payload
