"""Enclave execution engine: transitions, AEX, and fault delivery.

This module wires the pieces together the way the silicon does:

* :meth:`Cpu.access` is the enclave's load/store/fetch path — TLB, walk,
  and on a fault the full AEX → OS → (EENTER handler) → ERESUME dance of
  Figure 1 / Figure 2 of the paper.
* Autarky's pending-exception flag (§5.1.3) is enforced here: ERESUME
  fails while the flag is set, so the OS can never silently swallow a
  fault of a self-paging enclave.
* Fault-address masking (§5.1.2): self-paging enclaves report every
  fault as a read at the enclave base; legacy enclaves leak the page
  number (offset zeroed), which is precisely the controlled channel.
* The optional hardware optimizations (§5.1.3 "Eliding AEX" and
  "Resuming from exceptions") are modelled by
  :class:`repro.sgx.params.ArchOptimizations`.
"""

from __future__ import annotations

import enum

from repro.clock import Category
from repro.errors import EnclaveTerminated, PageFault, SgxError
from repro.sgx.columnar import PageRun, column_list
from repro.sgx.params import PAGE_SHIFT, ArchOptimizations, page_base
from repro.sgx.ssa import ExitInfo, SsaFrame


class ExecutionMode(enum.Enum):
    HOST = "host"
    ENCLAVE = "enclave"


#: Retries of one access before the CPU declares the platform wedged.
#: A legitimate access faults at most a couple of times (demand paging,
#: then possibly an A/D refresh); anything more is a broken OS/runtime.
MAX_FAULT_RETRIES = 8


class Cpu:
    """One logical core executing enclave code."""

    def __init__(self, mmu, clock, cost, arch_opts=None):
        self.mmu = mmu
        self.clock = clock
        self.cost = cost
        self.arch_opts = arch_opts or ArchOptimizations()
        #: The untrusted OS; attached by the kernel at boot
        #: (``kernel.attach_cpu``) to break the construction cycle.
        self.kernel = None
        self.mode = ExecutionMode.HOST
        #: Optional lifecycle witness (the model checker's runtime
        #: oracle), called ``op_observer(name, enclave, tcs)`` after
        #: each completed entry/exit transition.
        self.op_observer = None
        #: Columnar batch interpreter (repro.sgx.columnar), attached by
        #: the kernel when the fast-path tier is "columnar"; ``None``
        #: keeps run execution on the PR 4 memo/replay path.
        self.columnar = None
        #: Event counters for experiments.
        self.aex_count = 0
        self.eenter_count = 0
        self.eresume_count = 0
        self.eexit_count = 0
        self.fault_count = 0


    def _observe(self, name, enclave, tcs):
        if self.op_observer is not None:
            self.op_observer(name, enclave, tcs)

    # -- the enclave data path ---------------------------------------------

    def access(self, enclave, tcs, vaddr, access):
        """Perform one enclave memory access, resolving faults.

        Returns the translated PFN.  Raises
        :class:`~repro.errors.EnclaveTerminated` if trusted software
        kills the enclave while handling a fault.
        """
        enclave.require_alive()
        pfn = self.mmu.fast_hit(vaddr, access)
        if pfn is not None:
            return pfn
        translate = self.mmu.translate_nofault
        for _ in range(MAX_FAULT_RETRIES):
            pfn, fault = translate(vaddr, access, enclave)
            if fault is None:
                return pfn
            self.fault_count += 1
            self.deliver_fault(enclave, tcs, fault)
        raise SgxError(
            f"access to {vaddr:#x} still faulting after "
            f"{MAX_FAULT_RETRIES} OS interventions"
        )

    # repro: hot
    def access_run(self, enclave, tcs, vaddrs, access):
        """Batched :meth:`access` over an iterable of addresses.

        Semantically identical to calling :meth:`access` per address in
        order — same fault sequence, same counters, same cycle charges —
        but fast-path hits are probed against the memo dict directly and
        their ``tlb.hits`` accounting is flushed in bulk, so a
        steady-state run of N pages costs N dict probes rather than N
        full call chains.  Returns the list of PFNs.

        A :class:`~repro.sgx.columnar.PageRun` plan additionally tries
        the columnar interpreter first: a compiled (or compilable)
        fault-free run resolves in one bulk step; anything else — a
        non-resident page, an epoch bump since compilation — falls
        through to the memo probe and the sequential replay below.
        """
        enclave.require_alive()
        columnar = self.columnar
        if columnar is not None and type(vaddrs) is PageRun:
            pfns = columnar.execute(vaddrs, access)
            if pfns is not None:
                return column_list(pfns)
        mmu = self.mmu
        # Optimistic probe: memo probes have no side effects, so the
        # whole run can be resolved in one C-speed pass when every page
        # is memoized — the steady-state common case.
        pfns = mmu.probe_run(vaddrs, access)
        if pfns is not None:
            return pfns
        view = mmu.fast_view(access)
        if view is None:
            # No shared epoch: plain per-address path.
            return [self.access(enclave, tcs, v, access) for v in vaddrs]

        # At least one miss: replay sequentially, because a miss's
        # fault handling flushes the TLB and drops the memo — pages
        # after it must re-walk exactly as the unbatched loop would.
        tlb = mmu.tlb
        pfns = []
        append = pfns.append
        hits = 0
        for vaddr in vaddrs:
            pfn = view.get(vaddr >> PAGE_SHIFT)
            if pfn is None:
                # Settle accumulated hits *before* the slow path so the
                # counter sequence matches the unbatched equivalent.
                if hits:
                    tlb.hits += hits
                    hits = 0
                pfn = self.access(enclave, tcs, vaddr, access)
                # The slow path may have bumped the epoch (fault
                # handling flushes the TLB): re-fetch the view.
                view = mmu.fast_view(access)
            else:
                hits += 1
            append(pfn)
        if hits:
            tlb.hits += hits
        return pfns

    # -- transitions ---------------------------------------------------------

    def aex(self, enclave, tcs, fault):
        """Asynchronous enclave exit on a page fault."""
        self.aex_count += 1
        self.clock.charge(self.cost.aex, Category.AEX_ERESUME)
        exitinfo = ExitInfo(
            vector="#PF",
            vaddr=fault.vaddr,
            access=self._fault_access(fault),
            present=fault.present,
            reason=fault.reason,
        )
        tcs.ssa.push(SsaFrame(exitinfo=exitinfo, saved_context=fault))
        if enclave.self_paging:
            tcs.pending_exception = True
        self.mmu.tlb.flush()
        self.mode = ExecutionMode.HOST
        self._observe("aex", enclave, tcs)

    def interrupt(self, enclave, tcs):
        """Asynchronous exit for a hardware interrupt (timer, IPI).

        Interrupts are the *other* AEX cause of §2.1 and must remain
        OS-resumable: Autarky's pending-exception flag is set only for
        page faults ("on any page fault, the processor sets the
        pending exception flag", §5.1.3), so a normally scheduled
        enclave keeps working — but an interrupt-storm single-stepper
        (SGX-Step [66]) gains nothing, because the information it
        would harvest (fault addresses, A/D bits) is what the other
        changes removed.
        """
        self.aex_count += 1
        self.clock.charge(self.cost.aex, Category.AEX_ERESUME)
        # No exception information: the SSA frame holds only context.
        tcs.ssa.push(SsaFrame(exitinfo=None, saved_context="irq"))
        self.mmu.tlb.flush()
        self.mode = ExecutionMode.HOST
        self._observe("aex", enclave, tcs)

    def resume_from_interrupt(self, enclave, tcs):
        """ERESUME after an interrupt — legal even for self-paging
        enclaves (the pending flag was never set)."""
        self.eresume(enclave, tcs)

    def eenter(self, enclave, tcs):
        """Enter the enclave at its attested entry point.

        Runs the trusted runtime's dispatcher synchronously and charges
        the EENTER cost.  The caller (OS) must pair it with
        :meth:`eexit_cost` unless the in-enclave-resume optimization
        consumed the frame.
        """
        enclave.require_alive()
        if enclave.runtime is None:
            raise SgxError("enclave has no trusted runtime registered")
        if tcs.busy:
            raise SgxError("EENTER on a busy TCS")
        self.eenter_count += 1
        self.clock.charge(self.cost.eenter, Category.EENTER_EEXIT)
        self.mmu.tlb.flush()
        tcs.pending_exception = False
        tcs.busy = True
        self.mode = ExecutionMode.ENCLAVE
        self._observe("eenter", enclave, tcs)
        try:
            enclave.runtime.on_enter(tcs)
        except EnclaveTerminated:
            # Fail-stop: trusted software aborted during this entry
            # (attack detected, integrity failure, livelock guard) —
            # the enclave must never run again on tainted state.
            enclave.dead = True
            raise
        finally:
            tcs.busy = False

    def eexit_cost(self):
        """Charge an EEXIT (control transfer back to the host)."""
        self.eexit_count += 1
        self.clock.charge(self.cost.eexit, Category.EENTER_EEXIT)
        self.mmu.tlb.flush()
        self.mode = ExecutionMode.HOST

    def eresume(self, enclave, tcs):
        """Resume from the saved SSA frame (replays the faulting access).

        §5.1.3: for a self-paging enclave, ERESUME *fails* while the
        pending-exception flag is set — the change that removes the
        attacker's ability to hide faults from the enclave.
        """
        enclave.require_alive()
        if enclave.self_paging and tcs.pending_exception:
            raise SgxError(
                "ERESUME rejected: pending exception not yet delivered "
                "to the enclave (Autarky)"
            )
        tcs.ssa.pop()
        self.eresume_count += 1
        self.clock.charge(self.cost.eresume, Category.AEX_ERESUME)
        self.mmu.tlb.flush()
        self.mode = ExecutionMode.ENCLAVE
        self._observe("eresume", enclave, tcs)

    # -- fault orchestration ---------------------------------------------

    def deliver_fault(self, enclave, tcs, fault):
        """Full fault-resolution flow for one #PF."""
        if enclave.self_paging and self.arch_opts.elide_aex:
            self._elided_fault(enclave, tcs, fault)
            return

        self.aex(enclave, tcs, fault)
        try:
            self.kernel.on_enclave_fault(
                enclave, tcs, self.masked_fault(enclave, fault)
            )
        except EnclaveTerminated:
            enclave.dead = True
            raise
        if enclave.self_paging and tcs.pending_exception:
            # A correct OS re-enters through the handler; one that does
            # not leaves the thread unresumable.  Surface that loudly.
            raise SgxError(
                "OS returned from fault without re-entering the enclave"
            )
        if tcs.ssa.depth == 0:
            # The in-enclave-resume optimization already popped the
            # frame and conceptually continued execution inside.
            self.mode = ExecutionMode.ENCLAVE
            return
        self.eresume(enclave, tcs)

    def _elided_fault(self, enclave, tcs, fault):
        """§5.1.3 optimization: stay in enclave mode, simulate a nested
        re-entry straight into the handler.  No AEX, no OS, no EENTER —
        the OS never even learns a fault occurred (unless the handler
        asks it for pages)."""
        exitinfo = ExitInfo(
            vector="#PF",
            vaddr=fault.vaddr,
            access=self._fault_access(fault),
            present=fault.present,
            reason=fault.reason,
        )
        tcs.ssa.push(SsaFrame(exitinfo=exitinfo, saved_context=fault))
        try:
            enclave.runtime.handle_fault(tcs)
        except EnclaveTerminated:
            enclave.dead = True
            raise
        if tcs.ssa.depth:
            tcs.ssa.pop()

    def masked_fault(self, enclave, fault):
        """The fault information the OS is allowed to see.

        Legacy SGX zeroes the page offset; Autarky (§5.1.2) reports a
        consistent read fault at the enclave base so the OS learns only
        that *some* enclave fault happened.
        """
        if enclave.self_paging:
            return PageFault(
                enclave.base,
                write=False,
                exec_=False,
                present=False,
                reason="enclave fault (masked)",
            )
        return PageFault(
            page_base(fault.vaddr),
            write=fault.write,
            exec_=fault.exec_,
            present=fault.present,
            reason=fault.reason,
        )

    @staticmethod
    def _fault_access(fault):
        from repro.sgx.params import AccessType
        if fault.exec_:
            return AccessType.EXEC
        if fault.write:
            return AccessType.WRITE
        return AccessType.READ
