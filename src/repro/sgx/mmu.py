"""The TLB-miss walk with SGX checks and Autarky's modifications.

Walk order (§2.1 "Access control and page faults"):

1. x86 page walk: PTE must be present with sufficient permissions.
2. SGX checks (enclave mode, address inside the enclave region):
   the PTE must point at an EPC frame, and the EPCM entry must match
   (owner, linked vaddr, permissions, no pending/modified/blocked bits).
3. Autarky check (self-paging enclaves only, §5.1.4): the fetched PTE's
   accessed *and* dirty bits must already be set; otherwise the PTE is
   treated as invalid and a fault occurs.  This blinds the OS's
   A/D-bit channel, because a cleared bit can never be silently re-set
   by the hardware — it surfaces as a fault the enclave sees.
4. On success, install the TLB entry.  Legacy enclaves (and host
   software) get their A/D bits updated as usual, which is exactly the
   signal the fault-free controlled channel reads.
"""

from __future__ import annotations

from repro.clock import Category
from repro.errors import EpcmViolation, PageFault
from repro.sgx.params import AccessType, page_base


class Mmu:
    """Performs translations for one logical core."""

    def __init__(self, page_table, tlb, epcm, clock, cost):
        self.page_table = page_table
        self.tlb = tlb
        self.epcm = epcm
        self.clock = clock
        self.cost = cost
        #: Counters for the nbench-style architecture-overhead analysis.
        self.walks = 0
        self.ad_checks = 0

    def translate(self, vaddr, access, enclave=None):
        """Translate ``vaddr`` for ``access``; returns the PFN.

        ``enclave`` is the currently executing enclave, or ``None`` for
        host-mode accesses.  Raises :class:`PageFault` on any failed
        check (the CPU turns that into an AEX when in enclave mode).
        """
        pfn = self.tlb.lookup(vaddr, access)
        if pfn is not None:
            return pfn
        return self._walk(vaddr, access, enclave)

    def _walk(self, vaddr, access, enclave):
        self.walks += 1
        self.clock.charge(self.cost.tlb_fill, Category.TLB_FILL)

        pte = self.page_table.lookup(vaddr)
        if pte is None or not pte.present:
            raise PageFault(
                vaddr,
                write=access is AccessType.WRITE,
                exec_=access is AccessType.EXEC,
                present=False,
                reason="not present",
            )
        if not pte.allows(access):
            raise PageFault(
                vaddr,
                write=access is AccessType.WRITE,
                exec_=access is AccessType.EXEC,
                present=True,
                reason="protection",
            )

        in_enclave_region = enclave is not None and enclave.contains(vaddr)
        if in_enclave_region:
            self._sgx_checks(vaddr, access, pte, enclave)
            if enclave.self_paging:
                self._autarky_ad_check(vaddr, access, pte)
            else:
                # Legacy behaviour: hardware sets A (and D on writes) —
                # the observable the fault-free attack samples.
                self._update_ad(vaddr, pte, access)
        else:
            self._update_ad(vaddr, pte, access)

        self.tlb.install(vaddr, pte.pfn, pte.writable, pte.executable)
        return pte.pfn

    def _sgx_checks(self, vaddr, access, pte, enclave):
        try:
            self.epcm.check_access(
                pte.pfn, enclave.enclave_id, page_base(vaddr), access
            )
        except EpcmViolation as exc:
            raise PageFault(
                vaddr,
                write=access is AccessType.WRITE,
                exec_=access is AccessType.EXEC,
                present=True,
                reason=f"EPCM: {exc}",
            ) from exc

    def _autarky_ad_check(self, vaddr, access, pte):
        """§5.1.4: both bits must already be set or the PTE is invalid.

        The check piggybacks on the EPCM lookup (already SGX-specific),
        so it costs a fixed few cycles per fill and touches no core MMU
        path.  We also never write A/D back for self-paging enclaves,
        honouring the assumption that prevents the TOCTOU §5.1.4
        discusses.
        """
        self.ad_checks += 1
        self.clock.charge(self.cost.autarky_ad_check, Category.TLB_FILL)
        if not (pte.accessed and pte.dirty):
            raise PageFault(
                vaddr,
                write=access is AccessType.WRITE,
                exec_=access is AccessType.EXEC,
                present=True,
                reason="accessed/dirty cleared (Autarky)",
            )

    def _update_ad(self, vaddr, pte, access):
        pte.accessed = True
        if access is AccessType.WRITE:
            pte.dirty = True
