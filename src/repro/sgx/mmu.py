"""The TLB-miss walk with SGX checks and Autarky's modifications.

Walk order (§2.1 "Access control and page faults"):

1. x86 page walk: PTE must be present with sufficient permissions.
2. SGX checks (enclave mode, address inside the enclave region):
   the PTE must point at an EPC frame, and the EPCM entry must match
   (owner, linked vaddr, permissions, no pending/modified/blocked bits).
3. Autarky check (self-paging enclaves only, §5.1.4): the fetched PTE's
   accessed *and* dirty bits must already be set; otherwise the PTE is
   treated as invalid and a fault occurs.  This blinds the OS's
   A/D-bit channel, because a cleared bit can never be silently re-set
   by the hardware — it surfaces as a fault the enclave sees.
4. On success, install the TLB entry.  Legacy enclaves (and host
   software) get their A/D bits updated as usual, which is exactly the
   signal the fault-free controlled channel reads.

Fast path
---------

When the MMU is built with a shared :class:`TranslationEpoch` (the
kernel wires one through the page table, TLB, and SGX instructions),
successful translations are memoized per ``(access, vpn)``.  A memo
hit replays exactly what a TLB hit does — bump ``tlb.hits``, return
the PFN, charge nothing, touch no A/D bit — because a memo entry is
recorded only when the TLB provably holds a covering entry, and every
event that can remove or change TLB content (flush, shootdown,
capacity eviction) or translation-relevant state (PTE stores, EPCM
mutations) bumps the epoch, which drops the whole memo.  Without a
shared epoch (standalone rigs) the fast path is disabled and behaviour
is bit-for-bit the classic lookup/walk.

Faults are *returned*, not raised, on the :meth:`Mmu.translate_nofault`
path, so the CPU's retry loop prices a cold run of N pages at N fault
deliveries — never N raise/except round trips per retried access.
:meth:`Mmu.translate` keeps the raising contract for direct callers.
"""

from __future__ import annotations

from repro.clock import Category
from repro.errors import EpcmViolation, PageFault
from repro.sgx.params import PAGE_SHIFT, AccessType, page_base


class Mmu:
    """Performs translations for one logical core."""

    def __init__(self, page_table, tlb, epcm, clock, cost, epoch=None):
        self.page_table = page_table
        self.tlb = tlb
        self.epcm = epcm
        self.clock = clock
        self.cost = cost
        #: Counters for the nbench-style architecture-overhead analysis.
        self.walks = 0
        self.ad_checks = 0
        #: Shared translation generation stamp; ``None`` disables the
        #: memoized fast path (standalone constructions keep the exact
        #: classic behaviour).
        self.epoch = epoch
        #: Per-access-type {vpn: pfn} memos, valid only while the epoch
        #: matches.  Three plain attributes selected by identity —
        #: hashing an enum on every probe is measurable at this rate.
        self._fast_read = {}
        self._fast_write = {}
        self._fast_exec = {}
        self._fast_epoch = -1

    # -- the fast path -----------------------------------------------------

    def _fast_dict(self, access):
        """The memo for one access type, synced to the current epoch.

        Callers must have checked ``self.epoch is not None``.
        """
        if self._fast_epoch != self.epoch.value:
            self._fast_read.clear()
            self._fast_write.clear()
            self._fast_exec.clear()
            self._fast_epoch = self.epoch.value
        if access is AccessType.READ:
            return self._fast_read
        if access is AccessType.WRITE:
            return self._fast_write
        return self._fast_exec

    def fast_hit(self, vaddr, access):
        """Memoized translation, or ``None`` to take the slow path.

        A hit is architecturally a TLB hit: it bumps ``tlb.hits`` and
        charges nothing, exactly like :meth:`repro.sgx.tlb.Tlb.lookup`.
        """
        if self.epoch is None:
            return None
        pfn = self._fast_dict(access).get(vaddr >> PAGE_SHIFT)
        if pfn is not None:
            self.tlb.hits += 1
        return pfn

    def fast_view(self, access):
        """The synced ``{vpn: pfn}`` memo for one access type, or ``None``.

        Batched callers (``Cpu.access_run``) probe the returned dict
        directly in their inner loop and account the hits in bulk; the
        view is invalid as soon as anything bumps the epoch, so it must
        be re-fetched after every slow-path excursion.
        """
        if self.epoch is None:
            return None
        return self._fast_dict(access)

    # repro: hot
    def probe_run(self, vaddrs, access):
        """Resolve a whole run from the memo, or ``None`` on any miss.

        Probes have no side effects, so a miss anywhere simply means
        "take the slow path for the whole run" — nothing to undo.  On
        success the run is architecturally N TLB hits, accounted in
        bulk.  Epoch sync and memo selection are inlined: this is the
        innermost frame of the batched hot path.
        """
        epoch = self.epoch
        if epoch is None:
            return None
        if self._fast_epoch != epoch.value:
            self._fast_read.clear()
            self._fast_write.clear()
            self._fast_exec.clear()
            self._fast_epoch = epoch.value
        if access is AccessType.READ:
            get = self._fast_read.get
        elif access is AccessType.WRITE:
            get = self._fast_write.get
        else:
            get = self._fast_exec.get
        pfns = [get(v >> PAGE_SHIFT) for v in vaddrs]
        if None in pfns:
            return None
        self.tlb.hits += len(pfns)
        return pfns

    def _remember(self, vaddr, access, pfn):
        if self.epoch is None:
            return
        # Sync *after* the walk: the walk itself may have bumped the
        # epoch (TLB capacity eviction during install).
        self._fast_dict(access)[vaddr >> PAGE_SHIFT] = pfn

    # -- translation -------------------------------------------------------

    def translate(self, vaddr, access, enclave=None):
        """Translate ``vaddr`` for ``access``; returns the PFN.

        ``enclave`` is the currently executing enclave, or ``None`` for
        host-mode accesses.  Raises :class:`PageFault` on any failed
        check (the CPU turns that into an AEX when in enclave mode).
        """
        pfn, fault = self.translate_nofault(vaddr, access, enclave)
        if fault is not None:
            raise fault
        return pfn

    def translate_nofault(self, vaddr, access, enclave=None):
        """Translate without raising: returns ``(pfn, fault)``.

        Exactly one of the pair is ``None``.  Counters and cycle
        charges are identical to :meth:`translate`; only the delivery
        of the failure differs (a returned object instead of a raised
        one), which is what lets the CPU's retry loop avoid paying
        Python exception unwinding on every retried access.
        """
        pfn = self.tlb.lookup(vaddr, access)
        if pfn is not None:
            self._remember(vaddr, access, pfn)
            return pfn, None
        pfn, fault = self._walk(vaddr, access, enclave)
        if fault is None:
            self._remember(vaddr, access, pfn)
        return pfn, fault

    def _walk(self, vaddr, access, enclave):
        self.walks += 1
        self.clock.charge(self.cost.tlb_fill, Category.TLB_FILL)

        pte = self.page_table.lookup(vaddr)
        if pte is None or not pte.present:
            return None, PageFault(
                vaddr,
                write=access is AccessType.WRITE,
                exec_=access is AccessType.EXEC,
                present=False,
                reason="not present",
            )
        if not pte.allows(access):
            return None, PageFault(
                vaddr,
                write=access is AccessType.WRITE,
                exec_=access is AccessType.EXEC,
                present=True,
                reason="protection",
            )

        in_enclave_region = enclave is not None and enclave.contains(vaddr)
        if in_enclave_region:
            fault = self._sgx_checks(vaddr, access, pte, enclave)
            if fault is not None:
                return None, fault
            if enclave.self_paging:
                fault = self._autarky_ad_check(vaddr, access, pte)
                if fault is not None:
                    return None, fault
            else:
                # Legacy behaviour: hardware sets A (and D on writes) —
                # the observable the fault-free attack samples.
                self._update_ad(vaddr, pte, access)
        else:
            self._update_ad(vaddr, pte, access)

        self.tlb.install(vaddr, pte.pfn, pte.writable, pte.executable)
        return pte.pfn, None

    def _sgx_checks(self, vaddr, access, pte, enclave):
        try:
            self.epcm.check_access(
                pte.pfn, enclave.enclave_id, page_base(vaddr), access
            )
        except EpcmViolation as exc:
            fault = PageFault(
                vaddr,
                write=access is AccessType.WRITE,
                exec_=access is AccessType.EXEC,
                present=True,
                reason=f"EPCM: {exc}",
            )
            fault.__cause__ = exc
            return fault
        return None

    def _autarky_ad_check(self, vaddr, access, pte):
        """§5.1.4: both bits must already be set or the PTE is invalid.

        The check piggybacks on the EPCM lookup (already SGX-specific),
        so it costs a fixed few cycles per fill and touches no core MMU
        path.  We also never write A/D back for self-paging enclaves,
        honouring the assumption that prevents the TOCTOU §5.1.4
        discusses.
        """
        self.ad_checks += 1
        self.clock.charge(self.cost.autarky_ad_check, Category.TLB_FILL)
        if not (pte.accessed and pte.dirty):
            return PageFault(
                vaddr,
                write=access is AccessType.WRITE,
                exec_=access is AccessType.EXEC,
                present=True,
                reason="accessed/dirty cleared (Autarky)",
            )
        return None

    # Setting A/D bits to True is monotone-permissive: it can only
    # turn a would-be Autarky A/D fault into a hit, never invalidate a
    # translation an existing memo relies on, so the fast path stays
    # sound without an epoch bump (which would defeat the memo).
    # repro: allow[effects/epoch-soundness]
    def _update_ad(self, vaddr, pte, access):
        pte.accessed = True
        if access is AccessType.WRITE:
            pte.dirty = True
