"""State save area frames.

On an asynchronous enclave exit the CPU pushes the full register
context and exception details into the current SSA frame *inside* the
enclave, then scrubs the context it exposes to the OS.  The trusted
runtime reads the SSA to learn the true faulting address — information
Autarky hides from the OS entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SgxError
from repro.sgx.params import AccessType


@dataclass
class ExitInfo:
    """EXITINFO as saved in the SSA's GPRSGX region on an AEX."""

    vector: str                 # "#PF" is the only vector we model
    vaddr: int                  # true, unmasked faulting address
    access: AccessType
    present: bool               # error-code P bit
    reason: str = ""


@dataclass
class SsaFrame:
    """One SSA frame: saved context plus exception information."""

    exitinfo: Optional[ExitInfo] = None
    #: Opaque register context token; the CPU stores the interrupted
    #: access here so ERESUME can replay the faulting instruction.
    saved_context: object = None


class SsaStack:
    """The SSA region of one TCS, managed as a stack (§2.1).

    AEX pushes a frame; ERESUME pops it.  Exhausting the stack renders
    the thread un-enterable — the condition footnote 1 of the paper
    warns the runtime to avoid, and that §5.3 uses to detect handler
    re-entrancy attacks.
    """

    def __init__(self, nssa):
        if nssa < 1:
            raise ValueError("need at least one SSA frame")
        self.nssa = nssa
        self._frames = []

    @property
    def depth(self):
        return len(self._frames)

    @property
    def full(self):
        return len(self._frames) >= self.nssa

    def push(self, frame):
        if self.full:
            raise SgxError("SSA stack exhausted (nested AEX overflow)")
        self._frames.append(frame)

    def pop(self):
        if not self._frames:
            raise SgxError("ERESUME with empty SSA stack")
        return self._frames.pop()

    def peek(self):
        """The frame the runtime inspects after re-entry (top of stack)."""
        if not self._frames:
            return None
        return self._frames[-1]
