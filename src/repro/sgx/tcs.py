"""Thread control structure, extended with Autarky's pending-exception flag.

§5.1.3: "We extend the per-thread TCS with a new *pending exception*
flag and modify the AEX procedure so that on any page fault, the
processor sets the pending exception flag.  We also modify EENTER to
clear the flag on entry, and ERESUME to fail if the flag is set."
"""

from __future__ import annotations

from repro.sgx.params import DEFAULT_NSSA
from repro.sgx.ssa import SsaStack


class Tcs:
    """One enclave thread's control structure."""

    _next_id = 0

    def __init__(self, nssa=DEFAULT_NSSA):
        self.tcs_id = Tcs._next_id
        Tcs._next_id += 1
        self.ssa = SsaStack(nssa)
        #: Exclusive-entry marker: a logical core entering an enclave
        #: must do so on a free TCS.
        self.busy = False
        #: Autarky's new architectural flag (ignored unless the enclave
        #: has the SELF_PAGING attribute).
        self.pending_exception = False

    def __repr__(self):
        return (
            f"Tcs(id={self.tcs_id}, busy={self.busy}, "
            f"pending={self.pending_exception}, ssa_depth={self.ssa.depth})"
        )
