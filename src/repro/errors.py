"""Exception hierarchy shared across the Autarky reproduction.

The simulator distinguishes three families of failures:

* :class:`SgxError` — architectural rule violations raised by the SGX
  hardware model (EPCM mismatches, illegal instruction operands, ...).
  These model the #GP / #PF semantics of the real instructions and are
  bugs in the *caller* (OS, runtime, or test), never silent.

* :class:`PageFault` — the one "expected" hardware event.  It is used as
  a control-flow signal between the MMU and the CPU's asynchronous-exit
  logic, exactly like a real #PF vectors into the kernel.

* :class:`EnclaveTerminated` — raised when trusted in-enclave software
  decides to kill the enclave (e.g. the Autarky fault handler detected a
  controlled-channel attack, or a rate limit was exceeded).  Every
  termination carries a structured :class:`AbortReason` so experiments
  and the chaos harness can aggregate aborts without string matching.

* :class:`HostCallDenied` — the untrusted host refused or failed a
  paging service call.  Unlike :class:`SgxError` this is *legal*
  behaviour for a Byzantine host: the trusted runtime must absorb it
  (bounded retry) or fail stop, never hang or trust a partial result.
"""

from __future__ import annotations

import enum


class AbortReason(enum.Enum):
    """Why trusted software terminated the enclave (fail-stop taxonomy)."""

    ATTACK_DETECTED = "attack-detected"   # OS-induced fault (§5.2.1)
    RATE_LIMIT = "rate-limit"             # §5.2.4 bounded-leakage trip
    LIVELOCK_GUARD = "livelock-guard"     # paging loop made no progress
    INTEGRITY = "integrity"               # tampered/replayed page detected
    CHAOS_ABORT = "chaos-abort"           # host failure budget exhausted
    QUARANTINED = "quarantined"           # restart budget exhausted (flap)


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SgxError(ReproError):
    """An SGX architectural rule was violated (models #GP/#UD faults)."""


class EpcmViolation(SgxError):
    """An EPCM security check failed (wrong owner, address, or perms)."""


class EpcExhausted(SgxError):
    """No free EPC frame is available for an allocation."""


class IntegrityError(SgxError):
    """Paging crypto detected tampering or replay of swapped contents."""


class PageFault(ReproError):
    """A hardware page fault (#PF) during enclave or host execution.

    Attributes mirror the x86 error-code information the OS would see.
    For self-paging (Autarky) enclaves the CPU masks ``vaddr`` and
    ``write``/``exec`` before the fault is delivered to the OS; the raw
    values remain visible only in the SSA frame (see :mod:`repro.sgx.ssa`).
    """

    def __init__(self, vaddr, write=False, exec_=False, present=False,
                 reason=""):
        self.vaddr = vaddr
        self.write = write
        self.exec_ = exec_
        self.present = present
        self.reason = reason
        super().__init__(
            f"#PF at {vaddr:#x} (write={write}, exec={exec_}, "
            f"present={present}, reason={reason!r})"
        )


class EnclaveTerminated(ReproError):
    """Trusted enclave software aborted execution.

    ``reason`` is the structured :class:`AbortReason`; subclasses pin
    their own default so every raise site stays classifiable.
    """

    default_reason = None

    def __init__(self, cause, reason=None):
        self.cause = cause
        self.reason = reason if reason is not None else self.default_reason
        super().__init__(f"enclave terminated: {cause}")


class AttackDetected(EnclaveTerminated):
    """The self-paging runtime identified an OS-induced fault."""

    default_reason = AbortReason.ATTACK_DETECTED


class RateLimitExceeded(EnclaveTerminated):
    """The bounded-leakage policy observed too many faults per progress."""

    default_reason = AbortReason.RATE_LIMIT


class LivelockGuard(EnclaveTerminated):
    """A bounded paging loop stopped making progress (diagnosable
    fail-stop instead of spinning forever against a Byzantine host)."""

    default_reason = AbortReason.LIVELOCK_GUARD


class ChaosAbort(EnclaveTerminated):
    """The runtime exhausted its retry/degradation budget against a
    failing or hostile host and chose fail-stop over livelock."""

    default_reason = AbortReason.CHAOS_ABORT


class EnclaveCrashed(ReproError):
    """The host killed the enclave outright (power loss, OOM-kill of
    the hosting process, scripted chaos crash).

    Unlike :class:`EnclaveTerminated` this is not a decision of trusted
    software — the enclave simply ceases to exist mid-flight.  Recovery
    (:mod:`repro.recovery`) restores a crashed enclave from its sealed
    checkpoint and journal; everything else treats the crash like any
    other loss of the enclave."""


class Quarantined(EnclaveTerminated):
    """The recovery supervisor refused further restarts of a
    flap-looping enclave: the restart budget is exhausted, and restart
    churn is itself a signal (one bit per restart, §5.3)."""

    default_reason = AbortReason.QUARANTINED


class HostCallDenied(ReproError):
    """The untrusted host refused or failed a paging service call.

    Raised by the (possibly fault-injected) host, observed by the
    trusted runtime — which may retry with backoff, degrade, or abort
    with :class:`ChaosAbort`, but must never block forever.
    """


class PolicyError(ReproError):
    """A secure-paging policy was misused (bad cluster, bad region, ...)."""


class PinnedExhaustion(LivelockGuard, PolicyError):
    """Every eviction candidate is pinned while more room is required.

    Doubles as a :class:`PolicyError` (a misconfigured budget reaches
    the same state as a hostile quota squeeze) and as an
    :class:`EnclaveTerminated` with the ``livelock-guard`` reason, so
    both the configuration tests and the chaos harness classify it.
    """


class IntegrityAbort(EnclaveTerminated, IntegrityError):
    """Fail-stop on detected tampering: the runtime converts a paging
    :class:`IntegrityError` into enclave termination so execution can
    never continue past a tampered or replayed page."""

    default_reason = AbortReason.INTEGRITY
