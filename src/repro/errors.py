"""Exception hierarchy shared across the Autarky reproduction.

The simulator distinguishes three families of failures:

* :class:`SgxError` — architectural rule violations raised by the SGX
  hardware model (EPCM mismatches, illegal instruction operands, ...).
  These model the #GP / #PF semantics of the real instructions and are
  bugs in the *caller* (OS, runtime, or test), never silent.

* :class:`PageFault` — the one "expected" hardware event.  It is used as
  a control-flow signal between the MMU and the CPU's asynchronous-exit
  logic, exactly like a real #PF vectors into the kernel.

* :class:`EnclaveTerminated` — raised when trusted in-enclave software
  decides to kill the enclave (e.g. the Autarky fault handler detected a
  controlled-channel attack, or a rate limit was exceeded).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SgxError(ReproError):
    """An SGX architectural rule was violated (models #GP/#UD faults)."""


class EpcmViolation(SgxError):
    """An EPCM security check failed (wrong owner, address, or perms)."""


class EpcExhausted(SgxError):
    """No free EPC frame is available for an allocation."""


class IntegrityError(SgxError):
    """Paging crypto detected tampering or replay of swapped contents."""


class PageFault(ReproError):
    """A hardware page fault (#PF) during enclave or host execution.

    Attributes mirror the x86 error-code information the OS would see.
    For self-paging (Autarky) enclaves the CPU masks ``vaddr`` and
    ``write``/``exec`` before the fault is delivered to the OS; the raw
    values remain visible only in the SSA frame (see :mod:`repro.sgx.ssa`).
    """

    def __init__(self, vaddr, write=False, exec_=False, present=False,
                 reason=""):
        self.vaddr = vaddr
        self.write = write
        self.exec_ = exec_
        self.present = present
        self.reason = reason
        super().__init__(
            f"#PF at {vaddr:#x} (write={write}, exec={exec_}, "
            f"present={present}, reason={reason!r})"
        )


class EnclaveTerminated(ReproError):
    """Trusted enclave software aborted execution."""

    def __init__(self, cause):
        self.cause = cause
        super().__init__(f"enclave terminated: {cause}")


class AttackDetected(EnclaveTerminated):
    """The self-paging runtime identified an OS-induced fault."""


class RateLimitExceeded(EnclaveTerminated):
    """The bounded-leakage policy observed too many faults per progress."""


class PolicyError(ReproError):
    """A secure-paging policy was misused (bad cluster, bad region, ...)."""
