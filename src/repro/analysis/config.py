"""Policy configuration for the static-analysis passes.

Everything the passes treat as special — which modules sit on which
side of the trust boundary, which attribute names are enclave-private,
which modules are the sanctioned ISA mutators, which paths are exempt
from determinism — is declared here rather than hard-coded in the
passes, so the policy is reviewable in one place and synthetic tests
can build tighter or looser configs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


def _default(value):
    return field(default_factory=lambda: value)


@dataclass
class AnalysisConfig:
    """Tunable policy for all six pass families."""

    # -- trust boundary (§5.1.2 / §5.1.3) --------------------------------
    #: Module prefixes that run on the untrusted side of the boundary.
    untrusted_prefixes: tuple = ("repro.host.", "repro.attacks.")
    #: The sanctioned driver/IOCTL surface: the one untrusted module
    #: allowed to touch enclave bookkeeping, because it *implements*
    #: the two-level page-management contract (§5.2.1).
    trust_sanctioned: frozenset = _default(frozenset({
        "repro.host.driver",
    }))
    #: Modules holding enclave-private state; untrusted code may not
    #: import them at all (the SSA is readable only from inside, §2.1).
    enclave_private_modules: frozenset = _default(frozenset({
        "repro.sgx.ssa",
    }))
    #: Attribute names that denote enclave-private state when read
    #: through another object (``tcs.ssa``, ``enclave.backed``, …).
    #: A direct ``self.<name>`` on the module's own object is fine.
    enclave_private_attrs: frozenset = _default(frozenset({
        "ssa",                  # SSA stack: true fault addresses (§5.1.2)
        "exitinfo",             # EXITINFO: unmasked vaddr + access type
        "saved_context",        # saved register context in the SSA frame
        "backed",               # hardware-side residency map (EPCM view)
        "runtime",              # the enclave's trusted software object
        "measurement",          # MRENCLAVE log (attestation-private)
        "_balloon_request",     # in-enclave balloon mailbox
        "_balloon_response",
    }))

    # -- mutation discipline (§2.1, §5.1.4) ------------------------------
    #: Modules allowed to mutate EPC/EPCM/TLB state: the ISA model
    #: itself.  ``cpu`` flushes the TLB on mode transitions the way the
    #: silicon does, and ``pagetable`` delivers the OS-initiated IPI
    #: shootdowns that the SGX eviction flows require — both are
    #: architectural actions, not software reaching around the ISA.
    mutation_sanctioned: frozenset = _default(frozenset({
        "repro.sgx.instructions",
        "repro.sgx.mmu",
        "repro.sgx.cpu",
        "repro.sgx.pagetable",
        # The state-owning modules may of course mutate themselves.
        "repro.sgx.epc",
        "repro.sgx.epcm",
        "repro.sgx.tlb",
        # The columnar batch interpreter settles bulk TLB-hit
        # accounting (``tlb.hits += n``) exactly as the MMU fast path
        # does — it is the same architectural action, vectorized.
        "repro.sgx.columnar",
    }))
    #: Component-name → methods that mutate it.  A call such as
    #: ``anything.epc.resize(...)`` outside the sanctioned modules is a
    #: violation; reads (``epc.free_pages``, ``epcm.entry(p)``) are not.
    mutating_methods: dict = _default({
        "epc": frozenset({"alloc", "free", "resize"}),
        "epcm": frozenset(),      # mutations happen via entry-attr stores
        "tlb": frozenset({"install", "flush", "flush_page"}),
    })
    #: Components whose attribute stores count as mutations
    #: (``x.epcm.entry(p).pending = True``; ``kernel.instr.tlb = ...``).
    mutable_components: frozenset = _default(frozenset({
        "epc", "epcm", "tlb",
    }))

    # -- determinism ------------------------------------------------------
    #: Modules exempt from the determinism pass.  Only the CLI's
    #: progress display may read the wall clock: its output is chatter,
    #: never part of a simulated result.
    determinism_exempt: frozenset = _default(frozenset({
        "repro.cli",
        # The benchmark measures *wall* time by design (simulated
        # results inside it are still checked for bit-equality).
        "repro.bench",
    }))
    #: Wall-clock functions of the ``time`` module.
    wallclock_time_attrs: frozenset = _default(frozenset({
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    }))
    #: ``datetime``/``date`` constructors that read the wall clock.
    wallclock_datetime_attrs: frozenset = _default(frozenset({
        "now", "utcnow", "today",
    }))
    #: Module-level ``random.*`` calls (global, unseeded RNG).
    global_random_attrs: frozenset = _default(frozenset({
        "random", "randint", "randrange", "randbytes", "choice",
        "choices", "shuffle", "sample", "uniform", "triangular",
        "gauss", "normalvariate", "expovariate", "betavariate",
        "gammavariate", "lognormvariate", "paretovariate",
        "weibullvariate", "vonmisesvariate", "getrandbits", "seed",
    }))
    #: Entropy sources that can never be reproduced from a seed.
    entropy_calls: frozenset = _default(frozenset({
        "os.urandom", "uuid.uuid1", "uuid.uuid4", "random.SystemRandom",
        "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
        "secrets.randbelow", "secrets.choice", "secrets.randbits",
    }))

    # -- cycle accounting (Figures 5–8) ----------------------------------
    #: Modules whose fault/paging entry points must charge the clock.
    accounting_modules: frozenset = _default(frozenset({
        "repro.host.driver",
        "repro.sgx.instructions",
        "repro.sgx.cpu",
        "repro.sgx.mmu",
        "repro.runtime.self_paging",
        "repro.runtime.paging_ops",
        "repro.runtime.libos",
    }))
    #: A function in an accounting module whose name matches this is a
    #: modeled fault/paging path and must (transitively) charge.
    accounting_name_re: str = (
        r"(^|_)(fetch|evict|page_in|page_out|swap|fault|paging"
        r"|ewb|eldu|eaug|eaccept|emod|eremove|eblock|etrack"
        r"|augment|trim|remove_batch|aex|eenter|eexit|eresume"
        r"|resume|suspend|interrupt|make_room|os_resolve"
        r"|claim|release)"
    )
    #: Reviewed exemptions: these match the verb pattern but are pure
    #: data transformations or bookkeeping inside an already-charged
    #: path, not modeled hardware/OS actions of their own.
    accounting_exempt_names: frozenset = _default(frozenset({
        "masked_fault",      # rewrites fault info; no architectural cost
        "_fault_access",     # error-code decoding helper
        "raise_pf",          # test convenience constructor
        "note_fault",        # statistics update inside the handler
        "make_paging_ops",   # constructor dispatch, not a modeled path
    }))
    #: A call through one of these receiver names is assumed to charge
    #: when the call graph cannot resolve the callee at all.  The list
    #: used to carry every ISA-adjacent component name; now that the
    #: accounting pass resolves cross-module callees interprocedurally,
    #: only the receivers whose classes live outside the analyzed graph
    #: or dispatch dynamically remain.
    charging_receivers: frozenset = _default(frozenset({
        "clock", "kernel", "ops", "channel", "runtime", "pager",
    }))

    # -- secret taint / leakage (Pigeonhole; Autarky §3) ------------------
    #: Default taint sources: module prefix → parameter names whose
    #: values are secrets when they enter any function under that
    #: prefix.  Apps receive secret inputs (lookup keys, glyphs,
    #: feature vectors); ORAM code handles secret block identifiers.
    #: Additional sources are declared in-line with ``# repro: secret``.
    taint_secret_params: dict = _default({
        "repro.apps.": frozenset({
            "word", "words", "key", "keys", "item", "image", "glyph",
            "text", "features", "rows", "query",
        }),
        "repro.oram.": frozenset({"block_id"}),
    })
    #: Page-address sinks: callee name → argument position that becomes
    #: a page address.  A tainted value reaching one of these arguments
    #: is exactly the controlled channel (the OS observes the page).
    #: Bare ``access`` is deliberately absent: ``PathOram.access`` takes
    #: a secret block id by design and reveals nothing.
    taint_page_sinks: dict = _default({
        "data_access": 0, "code_access": 0, "translate": 0,
        "data_access_run": 0, "touch_run": 0, "access_run": 2,
        "make_run": 0, "replay": 0,
        "access_pages": 0, "fetch_batch": 0, "evict_batch": 0,
        "page_in": 1, "evict_page": 1,
        "ay_fetch_pages": 1, "ay_evict_pages": 1,
        "claim_pages": 0, "release_pages": 0,
    })
    #: Module prefixes where a tainted *index* into a dict/list is a
    #: finding on its own: app hot loops, where the index selects which
    #: page of the table/array faults in.
    taint_index_prefixes: tuple = ("repro.apps.",)
    #: Calls whose result is not secret even for tainted arguments:
    #: fresh randomness (the ORAM remap idiom) and ``len`` — input
    #: *size* is public in the oblivious model (the §6 operators'
    #: traces are functions of N by design).
    taint_sanitizers: frozenset = _default(frozenset({
        "randrange", "randint", "random", "choice", "sample",
        "getrandbits", "randbytes", "len",
    }))
    #: Collection accessor methods: ``d.get(k)`` returns data taint of
    #: the *collection*, not of the key — a dict lookup with a secret
    #: key does not make the looked-up value secret.
    taint_collection_accessors: frozenset = _default(frozenset({
        "get", "pop", "setdefault", "items", "keys", "values",
    }))
    #: Collection mutator methods: ``l.append(v)`` makes the list as
    #: secret as ``v`` (a later iteration over it carries the taint).
    taint_collection_mutators: frozenset = _default(frozenset({
        "append", "insert", "extend", "add",
    }))
    #: Attributes of tainted objects that are public size metadata and
    #: break the taint (``image.n_blocks`` drives a sequential scan).
    taint_public_attrs: frozenset = _default(frozenset({
        "n_blocks",
    }))
    #: Module prefixes the leakage pass reports on.  The engine still
    #: summarizes every module (flows cross the boundary), but findings
    #: outside these prefixes would re-flag the same app secret at
    #: every layer of the stack.
    taint_report_prefixes: tuple = ("repro.apps.", "repro.oram.")

    # -- robustness (fail-safe exception discipline) ----------------------
    #: Module prefixes where broad exception handlers (bare ``except``,
    #: ``except Exception``, ``except BaseException``) are findings:
    #: the whole runtime package.  Tests, benchmarks and examples are
    #: exempt by omission — they assert on failures rather than handle
    #: them, and are not part of the fail-safe story.
    robustness_prefixes: tuple = ("repro.",)
    #: Exact module names also covered (the package root itself, which
    #: a bare prefix match would miss).
    robustness_roots: frozenset = _default(frozenset({"repro"}))
    #: Module prefixes where the unbounded-queue rule runs: the
    #: long-lived layers (the service's drive loop, the runtime's
    #: paging/supervision loops) where an append-only container inside
    #: a ``while`` loop turns offered load into unbounded memory.
    robustness_queue_prefixes: tuple = (
        "repro.service.", "repro.runtime.",
    )
    #: Module prefixes where the unguarded-failover rule runs: the
    #: pool layer, where a loop that selects a target replica must
    #: own the all-replicas-unhealthy fall-through (explicit
    #: ``return``/``raise`` after the loop) instead of silently
    #: falling off the end.
    robustness_failover_prefixes: tuple = ("repro.service.",)

    # -- lifecycle orderliness (Guardian; SGX ISA §2.1, §5.2) -------------
    #: Module prefixes whose SGX ISA call sites are checked against the
    #: launch / eviction / resume / recovery automata.  ``repro.recovery``
    #: and ``repro.chaos`` entered the scope with the crash/restore
    #: transitions: journal records must only reach a live incarnation.
    #: ``repro.modelcheck`` drives the same crash/restore protocol, so
    #: its action implementations are held to the spec statically too
    #: (and run the automata dynamically, as the oracle).
    lifecycle_prefixes: tuple = (
        "repro.runtime.", "repro.host.", "repro.experiments.",
        "repro.recovery.", "repro.chaos.", "repro.modelcheck.",
        "tests.", "benchmarks.", "examples.",
    )

    # -- effects / purity (epoch soundness, parallel purity, hot path) ----
    #: Module prefixes the epoch-soundness checker reports on: the ISA
    #: model, the host OS/driver side, and the in-enclave runtime — the
    #: layers that own or reach translation-affecting state.
    effects_epoch_prefixes: tuple = (
        "repro.sgx.", "repro.host.", "repro.runtime.",
    )
    #: Attribute names that constitute translation-affecting state: a
    #: write through any of these (on an ambient object) must be
    #: covered by a TranslationEpoch bump, or every MMU memo minted
    #: before the write stays trusted after it.
    effects_translation_attrs: frozenset = _default(frozenset({
        "_ptes",        # page-table entry map
        "_entries",     # TLB / EPCM entry stores
        "backed",       # EPC residency map
        "present", "writable", "executable", "accessed", "dirty", "pfn",
        "valid", "page_type", "enclave_id", "perms",
        "pending", "modified", "blocked",
    }))
    #: Constructor-shaped methods exempt from epoch soundness: no memo
    #: can refer to an object still being built.
    effects_epoch_exempt_names: frozenset = _default(frozenset({
        "__init__", "__post_init__",
    }))
    #: Classes whose ``self.value += 1`` *is* the epoch bump.
    effects_epoch_classes: frozenset = _default(frozenset({
        "TranslationEpoch",
    }))
    #: Parallel-runner entry points: callee name → positional index of
    #: the task callable whose transitive write set must be empty.
    effects_task_runners: dict = _default({
        "run_indexed": 0,
    })
    #: Reviewed-intentional ambient writes exempt from parallel
    #: purity, in display form.  The enclave/TCS id counters are
    #: process-local allocation bookkeeping: every forked worker
    #: re-derives them deterministically from its own task, the ids
    #: never enter result digests (the chaos/parallel CI jobs prove
    #: bit-identity across pool widths), and flagging them at all six
    #: runner call sites would bury real impurities.
    effects_purity_allowed_writes: frozenset = _default(frozenset({
        "repro.sgx.enclave.Enclave._next_id",
        "repro.sgx.tcs.Tcs._next_id",
    }))
    #: Container methods that mutate their receiver (escape analysis
    #: treats ``ambient.append(...)`` as an ambient element write).
    effects_mutator_methods: frozenset = _default(frozenset({
        "append", "extend", "insert", "add", "update", "clear",
        "pop", "popitem", "remove", "discard", "setdefault",
        "sort", "reverse", "appendleft", "popleft",
    }))
    #: Container methods whose result aliases an element of the
    #: receiver (``d.get(k)`` hands out ambient state when ``d`` is
    #: ambient).
    effects_accessor_methods: frozenset = _default(frozenset({
        "get", "pop", "popitem", "setdefault", "values", "items",
        "keys",
    }))
    #: Hot functions (``Class.method`` / bare function name) checked by
    #: effects/hot-path-perf; ``# repro: hot`` on or directly above a
    #: ``def`` marks additional ones in-line.
    effects_hot_functions: frozenset = _default(frozenset({
        "Mmu.probe_run", "Mmu.fast_hit", "Mmu.fast_view",
        "Mmu.translate_nofault",
        "Cpu.access", "Cpu.access_run",
        "Tlb.lookup", "Tlb.install",
        "PageTable.lookup", "Epcm.check_access",
        "Pte.allows", "TlbEntry.allows",
        # The columnar batch interpreter (PR 9).
        "ColumnarEngine.execute", "ColumnarEngine._compile",
        "ReplayFrontend.replay",
    }))

    #: Rule families with dedicated pass implementations (used by the
    #: CLI for validation and by the docs test for coverage).
    rule_families: tuple = (
        "trust-boundary",
        "mutation-discipline",
        "determinism",
        "cycle-accounting",
        "leakage",
        "lifecycle",
        "robustness",
        "effects",
    )

    def accounting_pattern(self):
        return re.compile(self.accounting_name_re)

    def is_untrusted(self, module):
        if module in self.trust_sanctioned:
            return False
        return module.startswith(self.untrusted_prefixes)


DEFAULT_CONFIG = AnalysisConfig()
