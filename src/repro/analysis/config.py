"""Policy configuration for the static-analysis passes.

Everything the passes treat as special — which modules sit on which
side of the trust boundary, which attribute names are enclave-private,
which modules are the sanctioned ISA mutators, which paths are exempt
from determinism — is declared here rather than hard-coded in the
passes, so the policy is reviewable in one place and synthetic tests
can build tighter or looser configs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


def _default(value):
    return field(default_factory=lambda: value)


@dataclass
class AnalysisConfig:
    """Tunable policy for all four pass families."""

    # -- trust boundary (§5.1.2 / §5.1.3) --------------------------------
    #: Module prefixes that run on the untrusted side of the boundary.
    untrusted_prefixes: tuple = ("repro.host.", "repro.attacks.")
    #: The sanctioned driver/IOCTL surface: the one untrusted module
    #: allowed to touch enclave bookkeeping, because it *implements*
    #: the two-level page-management contract (§5.2.1).
    trust_sanctioned: frozenset = _default(frozenset({
        "repro.host.driver",
    }))
    #: Modules holding enclave-private state; untrusted code may not
    #: import them at all (the SSA is readable only from inside, §2.1).
    enclave_private_modules: frozenset = _default(frozenset({
        "repro.sgx.ssa",
    }))
    #: Attribute names that denote enclave-private state when read
    #: through another object (``tcs.ssa``, ``enclave.backed``, …).
    #: A direct ``self.<name>`` on the module's own object is fine.
    enclave_private_attrs: frozenset = _default(frozenset({
        "ssa",                  # SSA stack: true fault addresses (§5.1.2)
        "exitinfo",             # EXITINFO: unmasked vaddr + access type
        "saved_context",        # saved register context in the SSA frame
        "backed",               # hardware-side residency map (EPCM view)
        "runtime",              # the enclave's trusted software object
        "measurement",          # MRENCLAVE log (attestation-private)
        "_balloon_request",     # in-enclave balloon mailbox
        "_balloon_response",
    }))

    # -- mutation discipline (§2.1, §5.1.4) ------------------------------
    #: Modules allowed to mutate EPC/EPCM/TLB state: the ISA model
    #: itself.  ``cpu`` flushes the TLB on mode transitions the way the
    #: silicon does, and ``pagetable`` delivers the OS-initiated IPI
    #: shootdowns that the SGX eviction flows require — both are
    #: architectural actions, not software reaching around the ISA.
    mutation_sanctioned: frozenset = _default(frozenset({
        "repro.sgx.instructions",
        "repro.sgx.mmu",
        "repro.sgx.cpu",
        "repro.sgx.pagetable",
        # The state-owning modules may of course mutate themselves.
        "repro.sgx.epc",
        "repro.sgx.epcm",
        "repro.sgx.tlb",
    }))
    #: Component-name → methods that mutate it.  A call such as
    #: ``anything.epc.resize(...)`` outside the sanctioned modules is a
    #: violation; reads (``epc.free_pages``, ``epcm.entry(p)``) are not.
    mutating_methods: dict = _default({
        "epc": frozenset({"alloc", "free", "resize"}),
        "epcm": frozenset(),      # mutations happen via entry-attr stores
        "tlb": frozenset({"install", "flush", "flush_page"}),
    })
    #: Components whose attribute stores count as mutations
    #: (``x.epcm.entry(p).pending = True``; ``kernel.instr.tlb = ...``).
    mutable_components: frozenset = _default(frozenset({
        "epc", "epcm", "tlb",
    }))

    # -- determinism ------------------------------------------------------
    #: Modules exempt from the determinism pass.  Only the CLI's
    #: progress display may read the wall clock: its output is chatter,
    #: never part of a simulated result.
    determinism_exempt: frozenset = _default(frozenset({
        "repro.cli",
    }))
    #: Wall-clock functions of the ``time`` module.
    wallclock_time_attrs: frozenset = _default(frozenset({
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    }))
    #: ``datetime``/``date`` constructors that read the wall clock.
    wallclock_datetime_attrs: frozenset = _default(frozenset({
        "now", "utcnow", "today",
    }))
    #: Module-level ``random.*`` calls (global, unseeded RNG).
    global_random_attrs: frozenset = _default(frozenset({
        "random", "randint", "randrange", "randbytes", "choice",
        "choices", "shuffle", "sample", "uniform", "triangular",
        "gauss", "normalvariate", "expovariate", "betavariate",
        "gammavariate", "lognormvariate", "paretovariate",
        "weibullvariate", "vonmisesvariate", "getrandbits", "seed",
    }))
    #: Entropy sources that can never be reproduced from a seed.
    entropy_calls: frozenset = _default(frozenset({
        "os.urandom", "uuid.uuid1", "uuid.uuid4", "random.SystemRandom",
        "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
        "secrets.randbelow", "secrets.choice", "secrets.randbits",
    }))

    # -- cycle accounting (Figures 5–8) ----------------------------------
    #: Modules whose fault/paging entry points must charge the clock.
    accounting_modules: frozenset = _default(frozenset({
        "repro.host.driver",
        "repro.sgx.instructions",
        "repro.sgx.cpu",
        "repro.sgx.mmu",
        "repro.runtime.self_paging",
        "repro.runtime.paging_ops",
        "repro.runtime.libos",
    }))
    #: A function in an accounting module whose name matches this is a
    #: modeled fault/paging path and must (transitively) charge.
    accounting_name_re: str = (
        r"(^|_)(fetch|evict|page_in|page_out|swap|fault|paging"
        r"|ewb|eldu|eaug|eaccept|emod|eremove|eblock|etrack"
        r"|augment|trim|remove_batch|aex|eenter|eexit|eresume"
        r"|resume|suspend|interrupt|make_room|os_resolve"
        r"|claim|release)"
    )
    #: Reviewed exemptions: these match the verb pattern but are pure
    #: data transformations or bookkeeping inside an already-charged
    #: path, not modeled hardware/OS actions of their own.
    accounting_exempt_names: frozenset = _default(frozenset({
        "masked_fault",      # rewrites fault info; no architectural cost
        "_fault_access",     # error-code decoding helper
        "raise_pf",          # test convenience constructor
        "note_fault",        # statistics update inside the handler
        "make_paging_ops",   # constructor dispatch, not a modeled path
    }))
    #: A call through one of these receiver names is assumed to charge
    #: (the component's own methods charge the clock themselves).
    charging_receivers: frozenset = _default(frozenset({
        "clock", "instr", "instructions", "mmu", "cpu", "driver",
        "kernel", "ops", "channel", "runtime", "pager",
    }))

    #: Rule families with dedicated pass implementations (used by the
    #: CLI for validation and by the docs test for coverage).
    rule_families: tuple = (
        "trust-boundary",
        "mutation-discipline",
        "determinism",
        "cycle-accounting",
    )

    def accounting_pattern(self):
        return re.compile(self.accounting_name_re)

    def is_untrusted(self, module):
        if module in self.trust_sanctioned:
            return False
        return module.startswith(self.untrusted_prefixes)


DEFAULT_CONFIG = AnalysisConfig()
