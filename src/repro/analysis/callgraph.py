"""Project-wide call graph: the shared interprocedural substrate.

The original passes resolved calls only inside one module, which made
two whole families of properties invisible: a paging path that charges
the clock through a callee in another module, and a secret that flows
through a helper before it reaches a page-address computation.  This
module parses every analyzed file once into a :class:`Project` —
symbol tables per module, classes with their methods, import aliases —
and answers one question deterministically: *which function definitions
can this call expression reach?*

Resolution is intentionally layered from precise to heuristic:

1. **Local names** — ``helper()`` binds to the module's own top-level
   function of that name.
2. **Import-qualified names** — ``from repro.apps import hunspell`` +
   ``hunspell.stable_hash(w)`` resolves through the alias table to the
   defining module; ``from m import f`` resolves ``f()`` the same way.
   A resolved *class* name binds to its ``__init__``.
3. **Class-qualified methods** — ``self.evict(...)`` / ``cls.make()``
   binds to the enclosing class, walking base classes (resolved by
   name through the same alias tables) in MRO-ish order.
4. **Duck-typed methods** — ``self.ops.fetch_batch(...)`` has no
   receiver type, so the graph falls back to *every* class in the
   project defining ``fetch_batch``.  To keep that sound-ish, very
   common method names (``get``, ``run``, ``call``…) and names with
   too many candidates resolve to nothing instead of to noise; the
   consuming pass decides how to combine multiple candidates.

Everything is plain ``ast`` — no imports are executed, so analyzing a
broken or hostile tree is safe.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.walker import attr_chain

#: Method names too generic for duck-typed resolution: binding these to
#: every class that defines them would connect unrelated subsystems.
COMMON_METHOD_NAMES = frozenset({
    "get", "put", "pop", "add", "append", "extend", "update", "items",
    "keys", "values", "clear", "copy", "read", "write", "open", "close",
    "run", "call", "send", "next", "step", "reset", "start", "stop",
    "charge", "render", "push", "setdefault", "remove", "discard",
})

#: Duck-typed resolution gives up beyond this many candidate classes.
MAX_DUCK_CANDIDATES = 4


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str            # "repro.sgx.mmu.Mmu.translate"
    module: str              # dotted module name
    path: str                # file path (for findings)
    node: ast.AST            # the FunctionDef / AsyncFunctionDef
    class_name: str = None   # enclosing class, None for module level
    #: positional parameter names, ``self``/``cls`` already dropped.
    params: tuple = ()
    #: keyword-only parameter names.
    kwonly: tuple = ()

    @property
    def name(self):
        return self.node.name

    def param_index(self, name):
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass
class ClassInfo:
    """One class definition: methods plus base-class name chains."""

    name: str
    module: str
    bases: tuple = ()        # dotted base names as written ("Base", "m.B")
    methods: dict = field(default_factory=dict)


@dataclass
class ModuleTable:
    """Symbol table of one module."""

    name: str
    path: str
    #: local alias -> dotted origin ("rnd" -> "random",
    #: "stable_hash" -> "repro.apps.hunspell.stable_hash").
    imports: dict = field(default_factory=dict)
    functions: dict = field(default_factory=dict)   # name -> FunctionInfo
    classes: dict = field(default_factory=dict)     # name -> ClassInfo


def _collect_params(node, is_method):
    args = node.args
    positional = [a.arg for a in args.posonlyargs + args.args]
    if is_method and positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    return tuple(positional), tuple(a.arg for a in args.kwonlyargs)


class Project:
    """Parsed view of every analyzed module plus the call graph."""

    def __init__(self, modules):
        #: dotted module name -> ModuleTable
        self.modules = {}
        #: qualname -> FunctionInfo
        self.functions = {}
        #: method name -> tuple of FunctionInfo across all classes
        self._method_index = {}
        #: class name -> tuple of ClassInfo (for base resolution)
        self._class_index = {}
        #: memoized resolutions, shared by every pass in one run: the
        #: taint and accounting passes resolve the same call sites, and
        #: the tables never change after construction, so the answer
        #: for a given (call node, module, caller) is fixed.
        self._resolve_cache = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.sources = list(modules)
        for mod in modules:
            self._index_module(mod)
        for name, infos in self._method_index.items():
            self._method_index[name] = tuple(
                sorted(infos, key=lambda f: f.qualname))

    # -- indexing ----------------------------------------------------------

    def _index_module(self, mod):
        table = ModuleTable(name=mod.module, path=mod.path)
        self.modules[mod.module] = table
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    table.imports[alias.asname or
                                  alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(mod.module, node)
                for alias in node.names:
                    table.imports[alias.asname or alias.name] = \
                        f"{base}.{alias.name}" if base else alias.name
        for child in ast.iter_child_nodes(mod.tree):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(table, child, class_name=None)
            elif isinstance(child, ast.ClassDef):
                self._add_class(table, child)

    @staticmethod
    def _import_base(module, node):
        if node.level:  # relative: resolve against the package
            package = module.rsplit(".", node.level)[0]
            return f"{package}.{node.module}" if node.module else package
        return node.module or ""

    def _add_function(self, table, node, class_name):
        is_method = class_name is not None
        params, kwonly = _collect_params(node, is_method)
        qual = ".".join(
            [table.name] + ([class_name] if class_name else []) +
            [node.name]
        )
        info = FunctionInfo(
            qualname=qual, module=table.name, path=table.path, node=node,
            class_name=class_name, params=params, kwonly=kwonly,
        )
        self.functions[qual] = info
        if is_method:
            table.classes[class_name].methods[node.name] = info
            self._method_index.setdefault(node.name, []).append(info)
        else:
            table.functions[node.name] = info

    def _add_class(self, table, node):
        bases = tuple(
            ".".join(chain) for chain in
            (attr_chain(b) for b in node.bases) if chain
        )
        cls = ClassInfo(name=node.name, module=table.name, bases=bases)
        table.classes[node.name] = cls
        self._class_index.setdefault(node.name, []).append(cls)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(table, child, class_name=node.name)

    # -- resolution --------------------------------------------------------

    def resolve_dotted(self, dotted):
        """A fully dotted name -> FunctionInfo (function or class
        ``__init__``), or None."""
        if dotted in self.functions:
            return self.functions[dotted]
        module, _, leaf = dotted.rpartition(".")
        table = self.modules.get(module)
        if table is None:
            return None
        if leaf in table.functions:
            return table.functions[leaf]
        if leaf in table.classes:
            return table.classes[leaf].methods.get("__init__")
        if leaf in table.imports:  # re-export, one hop
            return self.resolve_dotted(table.imports[leaf])
        return None

    def _resolve_in_class(self, table, cls, method, _depth=0):
        """Look up ``method`` on ``cls`` and its named bases."""
        if method in cls.methods:
            return cls.methods[method]
        if _depth >= 4:
            return None
        for base in cls.bases:
            base_cls = self._resolve_class_name(table, base)
            if base_cls is not None:
                found = self._resolve_in_class(
                    self.modules.get(base_cls.module, table), base_cls,
                    method, _depth + 1)
                if found is not None:
                    return found
        return None

    def _resolve_class_name(self, table, dotted):
        head, _, tail = dotted.partition(".")
        if not tail and head in table.classes:
            return table.classes[head]
        origin = table.imports.get(head)
        if origin is None:
            return None
        full = f"{origin}.{tail}" if tail else origin
        module, _, leaf = full.rpartition(".")
        target = self.modules.get(module)
        if target is not None and leaf in target.classes:
            return target.classes[leaf]
        # ``import x.y`` + ``x.y.Cls`` style
        for candidate in self._class_index.get(full.rpartition(".")[2], ()):
            if f"{candidate.module}.{candidate.name}" == full:
                return candidate
        return None

    def duck_candidates(self, method):
        """All project methods named ``method`` — () for names too
        common or too widely defined to be meaningful."""
        if method in COMMON_METHOD_NAMES:
            return ()
        infos = self._method_index.get(method, ())
        if not infos or len(infos) > MAX_DUCK_CANDIDATES:
            return ()
        return infos

    def resolve_call(self, call, module, caller=None):
        """Candidate FunctionInfos a call expression may reach
        (a possibly-empty, deterministic tuple)."""
        return self.resolve_call_ex(call, module, caller)[0]

    def resolve_call_ex(self, call, module, caller=None):
        """Like :meth:`resolve_call` but returns ``(candidates,
        strong)``.

        ``strong`` is True when the binding is certain — a local name,
        an import-qualified name, or a ``self``/``cls`` method.
        Duck-typed matches are *weak*: ``word.encode(...)`` may bind to
        some project class's ``encode`` that has nothing to do with a
        string, so weak candidates are a hint, not a proof, and
        clients that lose information by trusting a summary (the taint
        engine) must combine them with their conservative fallback.
        """
        key = (id(call), module,
               caller.qualname if caller is not None else None)
        cached = self._resolve_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        result = self._resolve_call_uncached(call, module, caller)
        self._resolve_cache[key] = result
        return result

    def _resolve_call_uncached(self, call, module, caller):
        chain = attr_chain(call.func)
        if not chain:
            return (), True
        table = self.modules.get(module)
        if table is None:
            return (), True

        if len(chain) == 1:
            name = chain[0]
            if name in table.functions:
                return (table.functions[name],), True
            if name in table.classes:
                init = table.classes[name].methods.get("__init__")
                return ((init,) if init else ()), True
            origin = table.imports.get(name)
            if origin:
                found = self.resolve_dotted(origin)
                return ((found,) if found else ()), True
            return (), True

        root, method = chain[0], chain[-1]
        if len(chain) == 2 and root in ("self", "cls") and \
                caller is not None and caller.class_name:
            cls = table.classes.get(caller.class_name)
            if cls is not None:
                found = self._resolve_in_class(table, cls, method)
                if found is not None:
                    return (found,), True
            return (), True
        if len(chain) == 2:
            origin = table.imports.get(root)
            if origin:
                found = self.resolve_dotted(f"{origin}.{method}")
                if found is not None:
                    return (found,), True
                if origin in self.modules:
                    # Known module, unknown member: stop here.
                    return (), True
        return tuple(self.duck_candidates(method)), False

    def bind_arguments(self, call, callee):
        """Map the call's argument expressions onto callee parameters.

        Returns ``{param_index: ast expression}`` for positional and
        recognized keyword arguments (starred arguments are skipped).
        """
        bound = {}
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            if i < len(callee.params):
                bound[i] = arg
        names = list(callee.params)
        for kw in call.keywords:
            if kw.arg is None:
                continue
            if kw.arg in names:
                bound[names.index(kw.arg)] = kw.value
        return bound
