"""Determinism pass: simulated results must be bit-reproducible.

The whole point of driving benchmarks off a simulated
:class:`~repro.clock.Clock` is that every figure reproduces exactly —
the same property the controlled channel itself exploits.  Wall-clock
reads, the process-global ``random`` module, OS entropy, and
``PYTHONHASHSEED``-dependent ``hash()`` all break that, often silently
(a golden file that only fails on the next interpreter invocation).

Flagged:

* ``time.time()`` / ``perf_counter()`` / ``monotonic()`` / … and
  ``datetime.now()``-style constructors (rule ``determinism/time``);
* module-level ``random.*`` calls, unseeded ``random.Random()``, and
  entropy sources (``os.urandom``, ``uuid.uuid4``, ``secrets.*``,
  ``random.SystemRandom``) (rule ``determinism/random``);
* the builtin ``hash()`` (rule ``determinism/hash``) — salted per
  process for strings; use :mod:`hashlib` for stable digests.

Modules in the *parallel-merge scope* — ``repro.parallel`` itself and
every module that imports it — additionally get rule
``determinism/parallel-merge``: fan-out results must be merged in a
canonical order that does not depend on worker scheduling.  Flagged
there:

* ``imap_unordered(...)`` whose completion-ordered stream is consumed
  without being wrapped directly in ``sorted(...)``;
* iteration over a set (literal, comprehension, or ``set(...)``) —
  the order is ``PYTHONHASHSEED``- and history-dependent, so a merge
  fed by it is not reproducible;
* ``os.getpid()`` — worker identity must never key or tag merged
  results (two schedules assign work to different pids).

The CLI's progress display is exempt by configuration; seeded
``random.Random(seed)`` instances are the sanctioned idiom.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.walker import attr_chain

RULE_TIME = "determinism/time"
RULE_RANDOM = "determinism/random"
RULE_HASH = "determinism/hash"
RULE_PARALLEL = "determinism/parallel-merge"

#: Modules whose members we track through ``from X import Y``.
_TRACKED_FROM = ("time", "random", "datetime", "os", "uuid", "secrets")

#: The fan-out package: importing it puts a module in the
#: parallel-merge scope.
_PARALLEL_PKG = "repro.parallel"


class DeterminismPass:
    family = "determinism"
    rules = (RULE_TIME, RULE_RANDOM, RULE_HASH, RULE_PARALLEL)

    def __init__(self, config):
        self.config = config

    def applies(self, module):
        return module not in self.config.determinism_exempt

    def run(self, mod):
        aliases = self._collect_aliases(mod.tree)
        parallel_scope = self._in_parallel_scope(mod)
        sorted_args = (
            self._sorted_wrapped(mod.tree) if parallel_scope else ()
        )
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(mod, node, aliases)
                if parallel_scope:
                    yield from self._check_parallel_call(
                        mod, node, aliases, sorted_args
                    )
            elif parallel_scope:
                yield from self._check_parallel_iteration(mod, node)

    @staticmethod
    def _collect_aliases(tree):
        """Map local names to canonical dotted origins.

        ``import random as rnd`` → ``{"rnd": "random"}``;
        ``from time import perf_counter`` →
        ``{"perf_counter": "time.perf_counter"}``.
        """
        aliases = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    aliases[alias.asname or alias.name.split(".")[0]] = \
                        alias.name
            elif isinstance(node, ast.ImportFrom) and not node.level:
                if node.module in _TRACKED_FROM:
                    for alias in node.names:
                        aliases[alias.asname or alias.name] = \
                            f"{node.module}.{alias.name}"
        return aliases

    def _canonical(self, chain, aliases):
        """Resolve a call chain to its dotted origin, or None."""
        if not chain:
            return None
        root = aliases.get(chain[0])
        if root is None:
            return None
        return ".".join([root] + chain[1:])

    def _check_call(self, mod, node, aliases):
        chain = attr_chain(node.func)
        name = self._canonical(chain, aliases)

        # hash() needs no import: it is always the salted builtin
        # unless shadowed, which the alias table would show.
        if chain == ["hash"] and "hash" not in aliases:
            yield self._finding(
                mod, node, RULE_HASH,
                "builtin hash() is PYTHONHASHSEED-dependent",
                "use hashlib (e.g. sha256 of a canonical encoding) for "
                "digests that must be stable across runs",
            )
            return
        if name is None:
            return

        if name.startswith("time.") and \
                name.split(".", 1)[1] in self.config.wallclock_time_attrs:
            yield self._finding(
                mod, node, RULE_TIME,
                f"wall-clock read {name}() in cycle-accounted code",
                "simulated results must come from repro.clock.Clock; "
                "wall time is display-only (see the CLI exemption)",
            )
        elif name.split(".")[-1] in self.config.wallclock_datetime_attrs \
                and name.split(".")[0] in ("datetime", "date"):
            yield self._finding(
                mod, node, RULE_TIME,
                f"wall-clock read {name}() in cycle-accounted code",
                "simulated results must come from repro.clock.Clock",
            )
        elif name.startswith("random.") and \
                name.split(".", 1)[1] in self.config.global_random_attrs:
            yield self._finding(
                mod, node, RULE_RANDOM,
                f"process-global RNG call {name}()",
                "thread a seeded random.Random(seed) instance through "
                "instead, so repeated runs are reproducible",
            )
        elif name == "random.Random" and not node.args and \
                not node.keywords:
            yield self._finding(
                mod, node, RULE_RANDOM,
                "random.Random() constructed without a seed",
                "pass an explicit seed: random.Random(seed)",
            )
        elif name in self.config.entropy_calls:
            yield self._finding(
                mod, node, RULE_RANDOM,
                f"irreproducible entropy source {name}()",
                "derive pseudo-randomness from a seeded random.Random",
            )

    # -- the parallel-merge scope ------------------------------------------

    @staticmethod
    def _in_parallel_scope(mod):
        """The fan-out package itself, plus every module importing it."""
        if mod.module == _PARALLEL_PKG or \
                mod.module.startswith(_PARALLEL_PKG + "."):
            return True
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                if any(alias.name == _PARALLEL_PKG or
                       alias.name.startswith(_PARALLEL_PKG + ".")
                       for alias in node.names):
                    return True
            elif isinstance(node, ast.ImportFrom) and not node.level:
                if node.module and (
                        node.module == _PARALLEL_PKG or
                        node.module.startswith(_PARALLEL_PKG + ".")):
                    return True
        return False

    @staticmethod
    def _sorted_wrapped(tree):
        """ids of call nodes appearing directly as ``sorted(...)`` args —
        the canonical-re-sort idiom that makes ``imap_unordered`` safe."""
        wrapped = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "sorted":
                wrapped.update(id(arg) for arg in node.args)
        return wrapped

    def _check_parallel_call(self, mod, node, aliases, sorted_args):
        chain = attr_chain(node.func)
        if chain and chain[-1] == "imap_unordered" and \
                id(node) not in sorted_args:
            yield self._finding(
                mod, node, RULE_PARALLEL,
                "imap_unordered() yields results in completion order",
                "wrap the call directly in sorted(..., key=<task index>) "
                "so the merge is canonical (see repro.parallel.runner)",
            )
        if self._canonical(chain, aliases) == "os.getpid":
            yield self._finding(
                mod, node, RULE_PARALLEL,
                "os.getpid() is worker-scheduling-dependent",
                "merged results must not be keyed or tagged by worker "
                "identity; use the task index instead",
            )

    def _check_parallel_iteration(self, mod, node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters = [node.iter]
        elif isinstance(node, (ast.ListComp, ast.SetComp,
                               ast.GeneratorExp, ast.DictComp)):
            iters = [gen.iter for gen in node.generators]
        else:
            return
        for it in iters:
            if isinstance(it, (ast.Set, ast.SetComp)) or (
                    isinstance(it, ast.Call) and
                    isinstance(it.func, ast.Name) and
                    it.func.id in ("set", "frozenset")):
                yield self._finding(
                    mod, it, RULE_PARALLEL,
                    "iterating a set feeds hash-order into a merge",
                    "sort the elements first (sorted(...)) so merged "
                    "results are independent of PYTHONHASHSEED",
                )

    def _finding(self, mod, node, rule, message, hint):
        return Finding(
            path=mod.path,
            line=node.lineno,
            rule=rule,
            message=message,
            hint=hint,
            module=mod.module,
        )
