"""Leakage pass: secrets must not reach the paging surface.

The wrapper around :mod:`repro.analysis.passes.taint.engine`: the
interprocedural fixpoint runs once per analysis (in ``prepare``), and
``run`` replays the per-file findings so the ordinary suppression
machinery (``# repro: allow[leakage]``) applies.
"""

from __future__ import annotations

from repro.analysis.passes.taint.engine import (
    RULE_BRANCH,
    RULE_INDEX,
    RULE_PAGE,
    TaintEngine,
)

__all__ = ["LeakagePass", "RULE_PAGE", "RULE_INDEX", "RULE_BRANCH"]


class LeakagePass:
    family = "leakage"
    rules = (RULE_PAGE, RULE_INDEX, RULE_BRANCH)

    def __init__(self, config):
        self.config = config
        self._by_path = {}

    def prepare(self, project):
        self._by_path = TaintEngine(project, self.config).run()

    def applies(self, module):
        return True  # findings are already scoped by the engine

    def run(self, mod):
        yield from self._by_path.get(mod.path, ())
