"""Where secrets enter the program.

Two kinds of taint source feed the leakage engine:

* **Configured defaults** — parameter names that are secrets whenever
  they enter a function under a module prefix
  (:attr:`AnalysisConfig.taint_secret_params`): app inputs like
  ``word``/``key``/``features`` and ORAM ``block_id``.
* **In-line declarations** — a ``# repro: secret`` comment on (or
  standalone above) a ``def`` marks every parameter secret
  (``# repro: secret[a, b]`` restricts to the named ones); on an
  assignment it marks the assigned names.

Like suppressions, declarations are real comment tokens found via
:mod:`tokenize`, so mentioning the syntax in a docstring is inert.
"""

from __future__ import annotations

import io
import re
import tokenize

SECRET_RE = re.compile(r"#\s*repro:\s*secret(?:\[([^\]]*)\])?")


class SecretDecls:
    """The ``# repro: secret`` table of one source file.

    ``for_line(n)`` returns ``None`` (no declaration), ``()`` (declare
    everything on that line), or a tuple of names.
    """

    def __init__(self, source):
        self.by_line = {}
        lines = source.splitlines()
        decls = {}
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError):
            tokens = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = SECRET_RE.search(tok.string)
            if not match:
                continue
            names = ()
            if match.group(1):
                names = tuple(
                    n.strip() for n in match.group(1).split(",")
                    if n.strip())
            lineno, col = tok.start
            standalone = lines[lineno - 1][:col].strip() == ""
            decls[lineno] = (names, standalone)

        pending = None
        for lineno in range(1, len(lines) + 1):
            entry = decls.get(lineno)
            if entry is not None:
                names, standalone = entry
                if standalone:
                    pending = names if pending is None else pending + names
                else:
                    self.by_line[lineno] = names
                continue
            stripped = lines[lineno - 1].strip()
            if not stripped or stripped.startswith("#"):
                continue
            if pending is not None:
                self.by_line[lineno] = pending
            pending = None

    def __bool__(self):
        return bool(self.by_line)

    def for_line(self, lineno):
        return self.by_line.get(lineno)


def default_secret_params(config, module, func_info):
    """Parameter names of ``func_info`` that are secret by configured
    default under ``module``."""
    secret = set()
    for prefix, names in config.taint_secret_params.items():
        if module.startswith(prefix):
            secret.update(n for n in func_info.params if n in names)
            secret.update(n for n in func_info.kwonly if n in names)
    return secret


def declared_secret_params(decls, func_info):
    """Parameter names declared secret by a ``# repro: secret`` on the
    ``def`` line (or standalone above it)."""
    node = func_info.node
    lineno = node.lineno
    if node.decorator_list:
        lineno = node.decorator_list[0].lineno
    names = decls.for_line(lineno)
    if names is None and lineno != node.lineno:
        names = decls.for_line(node.lineno)
    if names is None:
        return set()
    if names == ():
        return set(func_info.params) | set(func_info.kwonly)
    return {n for n in names
            if n in func_info.params or n in func_info.kwonly}
