"""Interprocedural secret-taint engine.

The controlled channel works because enclave code turns a secret into a
*page address*: a hash-bucket lookup, a glyph-indexed table, a
data-dependent tree walk.  This engine tracks secrets from their
sources (configured app/ORAM parameters, ``# repro: secret``
declarations) through assignments, calls, and returns, and reports when
one reaches the paging surface.

Taint is a set of tokens per variable:

* ``("param", i)`` — symbolic: "whatever the caller passes as
  positional parameter *i*".  These never produce findings directly;
  they build the function's *summary*.
* ``("src", label)`` — a concrete secret (the label names it).

Each function gets a summary — which params flow to the return value,
which concrete secrets the return value carries, and which params reach
a sink (*latent sinks*) — computed as a monotone fixpoint over the
whole project, so a secret that crosses three modules before it hits
``data_access`` is still caught.  Latent sinks also propagate: if ``f``
passes its own parameter into a latent sink of ``g``, ``f`` acquires a
latent sink at the call site, and the finding surfaces at the outermost
frame where a concrete secret enters.

Propagation policy (the part that keeps ORAM code clean):

* A subscript **read** propagates the collection's taint to the value;
  the *index* taint does **not** flow into the value (knowing which
  slot was read is the access pattern, not the data).  Instead, a
  tainted index is itself a finding in app modules
  (``leakage/index``) — and nowhere else, because Path ORAM's whole
  point is that its tainted-index stash/position accesses are hidden.
* Value **stores** (``d[k] = v``, ``l.append(v)``) taint the
  collection; key stores do not.
* Collection accessors (``d.get(k)``…) return the collection's taint,
  not the key's.
* Sanitizers (``rng.randrange(...)``…) return clean values: the ORAM
  remap idiom.
* ``enumerate()`` yields a clean index alongside the tainted element.
* Conditional expressions taint through the test: ``a if s < t else
  b`` carries the secret of ``s``.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.passes.taint.sources import (
    SecretDecls,
    declared_secret_params,
    default_secret_params,
)

RULE_PAGE = "leakage/page-address"
RULE_INDEX = "leakage/index"
RULE_BRANCH = "leakage/branch"

MAX_ROUNDS = 8
EMPTY = frozenset()


class Summary:
    """What callers need to know about one function."""

    __slots__ = ("returns_params", "return_srcs", "sink_params")

    def __init__(self):
        self.returns_params = set()   # param indices flowing to return
        self.return_srcs = set()      # ("src", …) tokens in the return
        self.sink_params = {}         # param index -> {(rule, line, what)}

    def snapshot(self):
        return (
            frozenset(self.returns_params),
            frozenset(self.return_srcs),
            frozenset(
                (i, entry)
                for i, entries in self.sink_params.items()
                for entry in entries
            ),
        )


class TaintEngine:
    """Runs the project-wide fixpoint and collects leakage findings."""

    def __init__(self, project, config):
        self.project = project
        self.config = config
        self.decls = {
            mod.module: SecretDecls(mod.source) for mod in project.sources
        }
        self.summaries = {q: Summary() for q in project.functions}
        #: (module, class) -> {attr: src-token set} — secrets stored on
        #: ``self`` in one method and read in another.
        self.attr_srcs = {}
        self._changed = False

    # -- public ------------------------------------------------------------

    def run(self):
        """Fixpoint, then a collection round; findings grouped by path."""
        order = sorted(self.project.functions)
        for _ in range(MAX_ROUNDS):
            self._changed = False
            for qual in order:
                self._analyze(self.project.functions[qual], collect=None)
            if not self._changed:
                break
        by_path = {}
        for qual in order:
            info = self.project.functions[qual]
            if not self._reportable(info.module):
                continue
            found = {}
            self._analyze(info, collect=found)
            for (rule, line), message in sorted(found.items()):
                by_path.setdefault(info.path, []).append(Finding(
                    path=info.path, line=line, rule=rule,
                    message=message, hint=self._hint(rule),
                    module=info.module,
                ))
        return by_path

    # -- helpers -----------------------------------------------------------

    def _reportable(self, module):
        if module.startswith(self.config.taint_report_prefixes):
            return True
        return bool(self.decls.get(module))

    @staticmethod
    def _hint(rule):
        if rule == RULE_INDEX:
            return ("index with public values or make the scan oblivious "
                    "(oram.oblivious); or annotate # repro: allow[leakage]")
        if rule == RULE_BRANCH:
            return ("hoist the paging work out of the secret branch or "
                    "balance both arms; or annotate # repro: allow[leakage]")
        return ("derive page addresses from public state only (see "
                "oram/path_oram.py); or annotate # repro: allow[leakage]")

    def _secret_params(self, info):
        secret = default_secret_params(self.config, info.module, info)
        decls = self.decls.get(info.module)
        if decls:
            secret |= declared_secret_params(decls, info)
        return secret

    def _is_source_param(self, info, index):
        if index >= len(info.params):
            return False
        return info.params[index] in self._secret_params(info)

    # -- per-function analysis --------------------------------------------

    def _analyze(self, info, collect):
        fn = _FunctionAnalysis(self, info, collect)
        fn.run()

    def merge_summary(self, qual, returns_params, return_srcs, sinks):
        summary = self.summaries[qual]
        before = summary.snapshot()
        summary.returns_params |= returns_params
        summary.return_srcs |= return_srcs
        for i, entries in sinks.items():
            summary.sink_params.setdefault(i, set()).update(entries)
        if summary.snapshot() != before:
            self._changed = True

    def merge_attr_srcs(self, key, attr, tokens):
        attrs = self.attr_srcs.setdefault(key, {})
        have = attrs.setdefault(attr, set())
        if not tokens <= have:
            have |= tokens
            self._changed = True


class _FunctionAnalysis:
    """One (re-)analysis of one function body."""

    def __init__(self, engine, info, collect):
        self.engine = engine
        self.project = engine.project
        self.config = engine.config
        self.info = info
        self.collect = collect           # None, or {(rule, line): msg}
        self.env = {}
        self.returns_params = set()
        self.return_srcs = set()
        self.sinks = {}                  # param idx -> {(rule, line, what)}
        secret = engine._secret_params(info)
        for i, p in enumerate(info.params):
            tokens = {("param", i)}
            if p in secret:
                tokens.add(("src", p))
            self.env[p] = frozenset(tokens)
        for p in info.kwonly:
            if p in secret:
                self.env[p] = frozenset({("src", p)})
        decls = engine.decls.get(info.module)
        self.decls = decls if decls else None

    def run(self):
        body = self.info.node.body
        # Two forward passes: the second sees loop-carried taint
        # (``node`` updated at the bottom of a tree-walk loop, used at
        # the top).
        for _ in range(2):
            for stmt in body:
                self._stmt(stmt)
        self.engine.merge_summary(
            self.info.qualname, self.returns_params, self.return_srcs,
            self.sinks)

    # -- sinks -------------------------------------------------------------

    def _sink(self, tokens, rule, line, what):
        for tok in tokens:
            kind = tok[0]
            if kind == "src":
                if self.collect is not None:
                    key = (rule, line)
                    if key not in self.collect:
                        self.collect[key] = (
                            f"secret '{tok[1]}' reaches {what}")
            elif kind == "param":
                self.sinks.setdefault(tok[1], set()).add((rule, line, what))

    # -- statements --------------------------------------------------------

    def _stmt(self, node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # closures/nested classes are out of scope
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            taint = self._eval(value) if value is not None else EMPTY
            taint |= self._declared_assign_srcs(node)
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                self._assign(target, taint)
        elif isinstance(node, ast.AugAssign):
            taint = self._eval(node.value) | self._eval_target_read(
                node.target)
            self._assign(node.target, taint)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                for tok in self._eval(node.value):
                    if tok[0] == "param":
                        self.returns_params.add(tok[1])
                    else:
                        self.return_srcs.add(tok)
        elif isinstance(node, ast.For):
            self._for(node)
        elif isinstance(node, (ast.If, ast.While)):
            test = self._eval(node.test)
            if test and self._guards_paging(node):
                self._sink(
                    {t for t in test if t[0] == "src"},
                    RULE_BRANCH, node.lineno,
                    "a branch that guards paging activity")
            rounds = 2 if isinstance(node, ast.While) else 1
            for _ in range(rounds):
                for stmt in node.body:
                    self._stmt(stmt)
            for stmt in node.orelse:
                self._stmt(stmt)
        elif isinstance(node, ast.With):
            for item in node.items:
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taint)
            for stmt in node.body:
                self._stmt(stmt)
        elif isinstance(node, ast.Try):
            for block in (node.body, node.orelse, node.finalbody):
                for stmt in block:
                    self._stmt(stmt)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._stmt(stmt)
        elif isinstance(node, ast.Expr):
            self._eval(node.value)
        elif isinstance(node, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # pass/break/continue/import/global: nothing flows

    def _declared_assign_srcs(self, node):
        if self.decls is None:
            return EMPTY
        names = self.decls.for_line(node.lineno)
        if names is None:
            return EMPTY
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        declared = set()
        for target in targets:
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    if names == () or leaf.id in names:
                        declared.add(("src", leaf.id))
        return frozenset(declared)

    def _assign(self, target, taint):
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, taint)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taint)
        elif isinstance(target, ast.Subscript):
            self._index_sink(target)
            # A value store taints the collection; the key does not.
            if taint and isinstance(target.value, ast.Name):
                name = target.value.id
                self.env[name] = self.env.get(name, EMPTY) | taint
            self._store_attr_taint(target.value, taint)
        elif isinstance(target, ast.Attribute):
            self._store_attr(target, taint)

    def _store_attr(self, target, taint):
        chain = _chain(target)
        if len(chain) == 2 and chain[0] == "self" and \
                self.info.class_name is not None:
            srcs = frozenset(t for t in taint if t[0] == "src")
            if srcs:
                self.engine.merge_attr_srcs(
                    (self.info.module, self.info.class_name),
                    chain[1], srcs)

    def _store_attr_taint(self, value, taint):
        # ``self._data[k] = v`` taints the ``_data`` attribute itself.
        if isinstance(value, ast.Attribute):
            self._store_attr(value, taint)

    def _eval_target_read(self, target):
        if isinstance(target, ast.Name):
            return self.env.get(target.id, EMPTY)
        if isinstance(target, ast.Subscript):
            return self._eval(target.value)
        if isinstance(target, ast.Attribute):
            return self._eval(target)
        return EMPTY

    def _for(self, node):
        taint = self._eval(node.iter)
        call = node.iter if isinstance(node.iter, ast.Call) else None
        if call is not None and isinstance(call.func, ast.Name) and \
                call.func.id == "enumerate" and call.args and \
                isinstance(node.target, ast.Tuple) and \
                len(node.target.elts) == 2:
            # enumerate(): the counter is public, the element keeps
            # the iterable's taint.
            self._assign(node.target.elts[0], EMPTY)
            self._assign(node.target.elts[1], self._eval(call.args[0]))
        else:
            self._assign(node.target, taint)
        # Loop bodies run twice so iteration 2 sees the taint a tree
        # walk accumulates in iteration 1 (``node`` updated at the
        # bottom, used at the top).
        for _ in range(2):
            for stmt in node.body:
                self._stmt(stmt)
        for stmt in node.orelse:
            self._stmt(stmt)

    def _guards_paging(self, node):
        sinks = self.config.taint_page_sinks
        for stmt in node.body + node.orelse:
            for child in ast.walk(stmt):
                if isinstance(child, ast.Call):
                    chain = _chain(child.func)
                    if chain and chain[-1] in sinks:
                        return True
        return False

    # -- expressions -------------------------------------------------------

    def _eval(self, node):
        if node is None or isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY)
        if isinstance(node, ast.Attribute):
            if node.attr in self.config.taint_public_attrs:
                return EMPTY
            taint = self._eval(node.value)
            chain = _chain(node)
            if len(chain) == 2 and chain[0] == "self" and \
                    self.info.class_name is not None:
                attrs = self.engine.attr_srcs.get(
                    (self.info.module, self.info.class_name), {})
                taint = taint | frozenset(attrs.get(node.attr, ()))
            return taint
        if isinstance(node, ast.Subscript):
            self._index_sink(node)
            return self._eval(node.value)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            taint = EMPTY
            for value in node.values:
                taint |= self._eval(value)
            return taint
        if isinstance(node, ast.Compare):
            taint = self._eval(node.left)
            for comp in node.comparators:
                taint |= self._eval(comp)
            return taint
        if isinstance(node, ast.IfExp):
            return (self._eval(node.test) | self._eval(node.body)
                    | self._eval(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            taint = EMPTY
            for elt in node.elts:
                taint |= self._eval(elt)
            return taint
        if isinstance(node, ast.Dict):
            taint = EMPTY
            for key in node.keys:
                taint |= self._eval(key)
            for value in node.values:
                taint |= self._eval(value)
            return taint
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.JoinedStr):
            taint = EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    taint |= self._eval(value.value)
            return taint
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._comprehension(node)
        if isinstance(node, ast.Slice):
            return (self._eval(node.lower) | self._eval(node.upper)
                    | self._eval(node.step))
        if isinstance(node, ast.Lambda):
            return EMPTY
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            # Yielded values are what the caller iterates: they feed
            # the summary exactly like a return value.
            taint = self._eval(node.value) if node.value else EMPTY
            for tok in taint:
                if tok[0] == "param":
                    self.returns_params.add(tok[1])
                else:
                    self.return_srcs.add(tok)
            return taint
        return EMPTY

    def _comprehension(self, node):
        saved = dict(self.env)
        try:
            for gen in node.generators:
                self._assign(gen.target, self._eval(gen.iter))
                for cond in gen.ifs:
                    self._eval(cond)
            if isinstance(node, ast.DictComp):
                return self._eval(node.key) | self._eval(node.value)
            return self._eval(node.elt)
        finally:
            self.env = saved

    def _index_sink(self, node):
        if not self.info.module.startswith(self.config.taint_index_prefixes):
            return
        taint = self._eval(node.slice)
        if taint:
            self._sink(taint, RULE_INDEX, node.lineno,
                       "a container index (the access selects the page)")

    # -- calls -------------------------------------------------------------

    def _call(self, call):
        chain = _chain(call.func)
        name = chain[-1] if chain else None
        arg_taints = [
            self._eval(a) for a in call.args
        ]
        kw_taints = [self._eval(kw.value) for kw in call.keywords]

        if name in self.config.taint_page_sinks:
            pos = self.config.taint_page_sinks[name]
            if pos < len(call.args) and \
                    not isinstance(call.args[pos], ast.Starred):
                self._sink(arg_taints[pos], RULE_PAGE, call.lineno,
                           f"the page-address argument of {name}()")
            return EMPTY
        if name in self.config.taint_collection_accessors and \
                isinstance(call.func, ast.Attribute):
            return self._eval(call.func.value)
        if name in self.config.taint_collection_mutators and \
                isinstance(call.func, ast.Attribute):
            stored = EMPTY
            for t in arg_taints:
                stored |= t
            recv = call.func.value
            if stored:
                if isinstance(recv, ast.Name):
                    self.env[recv.id] = \
                        self.env.get(recv.id, EMPTY) | stored
                self._store_attr_taint(recv, stored)
            return EMPTY
        if name in self.config.taint_sanitizers:
            return EMPTY

        candidates, strong = self.project.resolve_call_ex(
            call, self.info.module, caller=self.info)
        taint = EMPTY
        for callee in candidates:
            taint |= self._apply_summary(call, callee)
        if candidates and strong:
            return taint

        # Unresolved (builtins, external libraries) or only weakly
        # (duck-typed) resolved: taint flows through arguments and the
        # receiver — ``word.encode()`` stays secret even if some
        # project class happens to define ``encode``.
        for t in arg_taints:
            taint |= t
        for t in kw_taints:
            taint |= t
        if isinstance(call.func, ast.Attribute):
            taint |= self._eval(call.func.value)
        return taint

    def _apply_summary(self, call, callee):
        summary = self.engine.summaries.get(callee.qualname)
        if summary is None:
            return EMPTY
        bound = self.project.bind_arguments(call, callee)
        bound_taints = {i: self._eval(expr) for i, expr in bound.items()}
        for i, taint in bound_taints.items():
            if not taint:
                continue
            entries = summary.sink_params.get(i)
            if not entries:
                continue
            if self.engine._is_source_param(callee, i):
                # The callee's parameter is itself a declared secret:
                # the finding already surfaces inside the callee.
                continue
            for rule, _line, _what in sorted(entries):
                self._sink(taint, rule, call.lineno,
                           f"a {rule.split('/')[1]} sink via "
                           f"{callee.name}()")
        taint = frozenset(summary.return_srcs)
        for i in summary.returns_params:
            taint |= bound_taints.get(i, EMPTY)
        return taint


def _chain(node):
    from repro.analysis.walker import attr_chain
    return attr_chain(node)
