"""Cycle-accounting pass: modeled paging paths must charge the clock.

Figures 5–8 are rebuilt from per-category cycle totals, so a fault or
paging path that returns without charging silently deflates a bar in
every downstream experiment.  For each function in the configured
accounting modules whose name matches the paging-verb pattern, this
pass requires that a ``*.charge(...)`` call is reachable:

* directly in the body;
* through same-module calls (``self.make_room`` → ``self.evict_page``
  → ``clock.charge``), resolved as a fixpoint over the module's local
  call graph;
* or through a call on a *charging receiver* (``self.instr.ewb(...)``)
  — a component whose own methods are known to charge.

Abstract methods (bodies of only ``pass``/``raise``/docstring),
properties, and the reviewed exemption list in the config are skipped.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.walker import attr_chain

RULE_UNCHARGED = "cycle-accounting/uncharged"


def _is_abstract(body):
    """A body that only raises/passes (plus a docstring) models an
    interface, not a path."""
    statements = list(body)
    if statements and isinstance(statements[0], ast.Expr) and \
            isinstance(statements[0].value, ast.Constant):
        statements = statements[1:]
    if not statements:
        return True
    return all(
        isinstance(stmt, (ast.Raise, ast.Pass)) or
        (isinstance(stmt, ast.Expr) and
         isinstance(stmt.value, ast.Constant))
        for stmt in statements
    )


def _decorator_names(node):
    names = set()
    for decorator in node.decorator_list:
        chain = attr_chain(decorator)
        names.update(chain)
    return names


class _FunctionInfo:
    def __init__(self, name, node):
        self.name = name
        self.node = node
        self.charges = False       # charge reachable (fixpoint state)
        self.local_calls = set()   # names of same-module callees


class CycleAccountingPass:
    family = "cycle-accounting"
    rules = (RULE_UNCHARGED,)

    def __init__(self, config):
        self.config = config
        self.pattern = config.accounting_pattern()

    def applies(self, module):
        return module in self.config.accounting_modules

    def run(self, mod):
        functions = self._collect_functions(mod.tree)
        self._propagate(functions)
        for info in functions.values():
            if not self._in_scope(info):
                continue
            if not info.charges:
                yield Finding(
                    path=mod.path,
                    line=info.node.lineno,
                    rule=RULE_UNCHARGED,
                    message=(
                        f"modeled paging path {info.name}() returns "
                        f"without charging the clock"
                    ),
                    hint=(
                        "charge the simulated cost (clock.charge(...)) "
                        "or delegate to a charging component; annotate "
                        "costs folded into another figure with "
                        "# repro: allow[cycle-accounting]"
                    ),
                    module=mod.module,
                )

    def _in_scope(self, info):
        name = info.name
        if name.startswith("__") or name in \
                self.config.accounting_exempt_names:
            return False
        if "property" in _decorator_names(info.node) or \
                "staticmethod" in _decorator_names(info.node):
            return False
        if _is_abstract(info.node.body):
            return False
        return bool(self.pattern.search(name))

    def _collect_functions(self, tree):
        functions = {}

        def visit(node):
            for child in ast.iter_child_nodes(node):
                if isinstance(child,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = _FunctionInfo(child.name, child)
                    self._scan_body(child, info)
                    # Last definition wins on name collisions across
                    # classes — acceptable for a per-module heuristic.
                    functions[child.name] = info
                visit(child)

        visit(tree)
        return functions

    def _scan_body(self, func_node, info):
        receivers = self.config.charging_receivers
        for node in ast.walk(func_node):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if not chain:
                continue
            if chain[-1] == "charge":
                info.charges = True
            elif len(chain) >= 2 and chain[-2] in receivers:
                # e.g. self.instr.ewb(...) — the component charges.
                info.charges = True
            elif len(chain) == 2 and chain[0] in ("self", "cls"):
                info.local_calls.add(chain[1])
            elif len(chain) == 1:
                info.local_calls.add(chain[0])

    @staticmethod
    def _propagate(functions):
        changed = True
        while changed:
            changed = False
            for info in functions.values():
                if info.charges:
                    continue
                for callee in info.local_calls:
                    target = functions.get(callee)
                    if target is not None and target.charges:
                        info.charges = True
                        changed = True
                        break
