"""Cycle-accounting pass: modeled paging paths must charge the clock.

Figures 5–8 are rebuilt from per-category cycle totals, so a fault or
paging path that returns without charging silently deflates a bar in
every downstream experiment.  For each function in the configured
accounting modules whose name matches the paging-verb pattern, this
pass requires that a ``*.charge(...)`` call is reachable:

* directly in the body;
* through any call the project-wide call graph resolves — same-module
  helpers, ``self.instr.ewb(...)`` into ``sgx/instructions``, a
  runtime's channel upcall into the driver — computed as a fixpoint
  over the whole project (a call with several candidates charges if
  *any* candidate does: duck-typed receivers share the contract);
* or, only when the graph cannot resolve the callee at all, through a
  call on one of the configured *charging receivers* (``clock``,
  ``kernel``, ``ops``, …).

Abstract methods (bodies of only ``pass``/``raise``/docstring),
properties, and the reviewed exemption list in the config are skipped.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.walker import attr_chain

RULE_UNCHARGED = "cycle-accounting/uncharged"


def _is_abstract(body):
    """A body that only raises/passes (plus a docstring) models an
    interface, not a path."""
    statements = list(body)
    if statements and isinstance(statements[0], ast.Expr) and \
            isinstance(statements[0].value, ast.Constant):
        statements = statements[1:]
    if not statements:
        return True
    return all(
        isinstance(stmt, (ast.Raise, ast.Pass)) or
        (isinstance(stmt, ast.Expr) and
         isinstance(stmt.value, ast.Constant))
        for stmt in statements
    )


def _decorator_names(node):
    names = set()
    for decorator in node.decorator_list:
        chain = attr_chain(decorator)
        names.update(chain)
    return names


class CycleAccountingPass:
    family = "cycle-accounting"
    rules = (RULE_UNCHARGED,)

    def __init__(self, config):
        self.config = config
        self.pattern = config.accounting_pattern()
        self._charges = set()     # qualnames with a reachable charge

    def applies(self, module):
        return module in self.config.accounting_modules

    def prepare(self, project):
        """Project-wide charge-reachability fixpoint."""
        self._project = project
        receivers = self.config.charging_receivers
        calls = {}                # qualname -> set of callee qualnames
        charges = set()
        for qual, info in project.functions.items():
            callees = set()
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                chain = attr_chain(node.func)
                if not chain:
                    continue
                if chain[-1] == "charge":
                    charges.add(qual)
                    continue
                candidates = project.resolve_call(
                    node, info.module, caller=info)
                if candidates:
                    # Any-candidate semantics: duck-typed receivers
                    # (PagingOps implementations, …) share the
                    # charging contract.
                    callees.update(c.qualname for c in candidates)
                elif len(chain) >= 2 and chain[-2] in receivers:
                    charges.add(qual)
            calls[qual] = callees
        changed = True
        while changed:
            changed = False
            for qual, callees in calls.items():
                if qual in charges:
                    continue
                if any(callee in charges for callee in callees):
                    charges.add(qual)
                    changed = True
        self._charges = charges

    def run(self, mod):
        for info in self._project.functions.values():
            if info.module != mod.module or info.path != mod.path:
                continue
            if not self._in_scope(info):
                continue
            if info.qualname not in self._charges:
                yield Finding(
                    path=mod.path,
                    line=info.node.lineno,
                    rule=RULE_UNCHARGED,
                    message=(
                        f"modeled paging path {info.name}() returns "
                        f"without charging the clock"
                    ),
                    hint=(
                        "charge the simulated cost (clock.charge(...)) "
                        "or delegate to a charging component; annotate "
                        "costs folded into another figure with "
                        "# repro: allow[cycle-accounting]"
                    ),
                    module=mod.module,
                )

    def _in_scope(self, info):
        name = info.name
        if name.startswith("__") or name in \
                self.config.accounting_exempt_names:
            return False
        if "property" in _decorator_names(info.node) or \
                "staticmethod" in _decorator_names(info.node):
            return False
        if _is_abstract(info.node.body):
            return False
        return bool(self.pattern.search(name))
