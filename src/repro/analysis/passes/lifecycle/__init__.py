"""Lifecycle pass: SGX ISA call sites must respect the protocol.

See :mod:`repro.analysis.passes.lifecycle.automaton` for the three
automata (launch, evict, resume) and the false-positive design.  The
pass checks every function — and the module body, for example
scripts — of modules under the configured lifecycle prefixes.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.passes.lifecycle.automaton import (
    RULE_EVICT,
    RULE_LAUNCH,
    RULE_RECOVERY,
    RULE_RESUME,
    OpCollector,
    check_ops,
)

__all__ = ["LifecyclePass", "RULE_LAUNCH", "RULE_EVICT", "RULE_RESUME",
           "RULE_RECOVERY"]

_HINTS = {
    RULE_LAUNCH: ("build the enclave ECREATE → EADD/EEXTEND → EINIT → "
                  "EENTER (docs/architecture.md); ECREATE starts over"),
    RULE_EVICT: ("evict EBLOCK → page-table drop (TLB shootdown) → EWB "
                 "(§2.1); ELDU starts the page over"),
    RULE_RESUME: "ERESUME resumes an interrupted enclave: AEX comes first",
    RULE_RECOVERY: ("crash → relaunch → restore (docs/recovery.md); "
                    "journal records only reach a live incarnation"),
}


class LifecyclePass:
    family = "lifecycle"
    rules = (RULE_LAUNCH, RULE_EVICT, RULE_RESUME, RULE_RECOVERY)

    def __init__(self, config):
        self.config = config
        self._project = None

    def prepare(self, project):
        self._project = project
        self._functions = {}
        for info in project.functions.values():
            self._functions.setdefault(info.module, []).append(info)
        for infos in self._functions.values():
            infos.sort(key=lambda f: f.node.lineno)

    def applies(self, module):
        return module.startswith(self.config.lifecycle_prefixes)

    def run(self, mod):
        if self._project is None:
            return
        contexts = [(None, self._module_body(mod))]
        for info in self._functions.get(mod.module, ()):
            contexts.append((info, info.node.body))
        for caller, body in contexts:
            collector = OpCollector(self._project, self.config,
                                    mod.module, caller)
            ops = collector.collect(body)
            seen = set()
            for rule, line, message in check_ops(ops):
                if (rule, line) in seen:
                    continue
                seen.add((rule, line))
                yield Finding(
                    path=mod.path, line=line, rule=rule,
                    message=message, hint=_HINTS[rule],
                    module=mod.module,
                )

    @staticmethod
    def _module_body(mod):
        import ast
        return [stmt for stmt in mod.tree.body
                if not isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef,
                                         ast.ClassDef))]
