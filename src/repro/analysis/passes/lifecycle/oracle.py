"""The lifecycle automata as an executable runtime oracle.

The static pass runs the protocol automata over ops collected from the
AST; this module runs the *same automata* over ops observed from a live
system — the instruction layer's ``op_observer``, the CPU's transition
observer, the page table's drop observer, and the recovery manager's
``lifecycle_observer``.  One spec, two interpreters: a protocol bug
caught statically is caught dynamically and vice versa, and the model
checker attaches this oracle to every explored state.

Two runtime-only differences from the static feed:

* ops carry empty branch vectors (a live trace has no sibling arms), so
  the automata's comparability check is exact rather than conservative;
* the resume rule can be *strict* online — an ERESUME is legal only
  while an AEX is outstanding on that TCS — instead of the static
  pass's observed-inversion conservatism, because at runtime there is
  no "the AEX happened in another function" ambiguity.
"""

from __future__ import annotations

from repro.analysis.passes.lifecycle.automaton import (
    RULE_RESUME,
    EvictAutomaton,
    LaunchAutomaton,
    Op,
    RecoveryAutomaton,
)
from repro.sgx.params import page_base


class LifecycleOracle:
    """Feeds live protocol events into the shared lifecycle automata.

    Install on a booted kernel (and optionally a recovery manager);
    every protocol violation lands in :attr:`violations` as ``(rule,
    seq, message)`` where ``seq`` is the 1-based position in the
    observed op stream (the runtime analogue of a source line).
    """

    def __init__(self):
        self.violations = []
        #: Ops observed, for counterexample reports.
        self.trace = []
        self._launch = LaunchAutomaton()
        self._evict = EvictAutomaton()
        self._recovery = RecoveryAutomaton()
        #: TCS id -> outstanding AEX frames (strict online resume rule).
        self._outstanding_aex = {}
        #: page -> owning enclave key.  Eviction-protocol state belongs
        #: to one enclave *incarnation*: after a crash the relaunched
        #: enclave reuses the same addresses, and its fresh EBLOCK/EWB
        #: sequences must not be judged against the dead incarnation's
        #: history.  Page-table drops carry no enclave, so ownership is
        #: remembered from the last ISA op that touched the page.
        self._page_owner = {}
        self._seq = 0
        self._targets = []

    # -- installation ------------------------------------------------------

    def install(self, kernel, manager=None):
        """Attach to every observation point of one booted kernel."""
        self._attach(kernel.instr, "op_observer", self._on_isa)
        self._attach(kernel.cpu, "op_observer", self._on_cpu)
        self._attach(kernel.page_table, "op_observer", self._on_drop)
        if manager is not None:
            self.watch_manager(manager)
        return self

    def watch_manager(self, manager):
        """Attach to a recovery manager (call again after relaunch if a
        new manager is created; re-binding the same one is free)."""
        self._attach(manager, "lifecycle_observer", self._on_recovery)

    def _attach(self, host, attr, hook):
        self._targets.append((host, attr, getattr(host, attr)))
        setattr(host, attr, hook)

    def uninstall(self):
        for host, attr, previous in reversed(self._targets):
            setattr(host, attr, previous)
        self._targets = []

    @property
    def ok(self):
        return not self.violations

    # -- event feeds -------------------------------------------------------

    def _feed(self, automaton, name, encl=None, page=None):
        self._seq += 1
        self.trace.append((self._seq, name, encl, page))
        op = Op(name, encl, page, self._seq, {})
        self.violations.extend(automaton.feed(op) or ())

    def _on_isa(self, name, enclave, vaddr):
        key = f"enclave-{enclave.enclave_id}"
        page = None if vaddr is None else hex(page_base(vaddr))
        if page is not None:
            self._page_owner[page] = key
        if name in ("eblock", "ewb", "eldu"):
            self._feed(self._evict, name, encl=key,
                       page=f"{key}:{page}")
        else:
            self._feed(self._launch, name, encl=key, page=page)

    def _on_drop(self, name, vaddr):
        page = hex(page_base(vaddr))
        owner = self._page_owner.get(page, "os")
        self._feed(self._evict, "drop", page=f"{owner}:{page}")

    def _on_cpu(self, name, enclave, tcs):
        key = f"enclave-{enclave.enclave_id}"
        if name == "aex":
            self._outstanding_aex[id(tcs)] = \
                self._outstanding_aex.get(id(tcs), 0) + 1
        elif name == "eresume":
            pending = self._outstanding_aex.get(id(tcs), 0)
            if pending <= 0:
                self._seq += 1
                self.violations.append((
                    RULE_RESUME, self._seq,
                    f"ERESUME({key}) with no outstanding AEX on this "
                    f"TCS (op {self._seq})",
                ))
                return
            self._outstanding_aex[id(tcs)] = pending - 1
        elif name == "eenter":
            self._feed(self._launch, "eenter", encl=key)

    def _on_recovery(self, name):
        # One manager per oracle-attached world: a stable key keeps
        # violation messages (and therefore exploration digests)
        # deterministic across processes.
        self._feed(self._recovery, name, encl="manager")
