"""Static protocol automata over SGX ISA call sites.

The driver, runtime, and experiments issue the modeled ISA as ordinary
method calls (``self.instr.eblock(enclave, base)``), so orderliness —
the property Guardian checks for real enclaves — is statically visible:
collect the ISA calls of each function in source order, key them by the
enclave/page expression they name, and run three small automata:

* **launch** — ECREATE → EADD/EADD_TCS/EEXTEND → EINIT → EENTER.
  Flags EADD-family calls after EINIT or EENTER, EINIT after EENTER,
  and a second EINIT.  ECREATE resets the key (loops that build fresh
  enclaves are fine); SGX2 EAUG is legal after EINIT and is not in the
  EADD family.
* **evict** — EBLOCK → page-table drop (the TLB shootdown) → EWB.
  Flags EBLOCK after the drop, either of them after EWB.  ELDU resets
  the key (evict/reload cycles are fine).
* **resume** — AEX → ERESUME.  Only *observed* inversions are flagged:
  an ERESUME with no comparable AEX before it but one after it.  A
  function that resumes an enclave suspended elsewhere is not ours to
  judge.
* **recovery** — crash → relaunch → restore (the PR 5 crash/restore
  protocol).  Flags a ``restore`` that observably precedes the
  ``crash`` it recovers from, and journal activity (``note_*`` record
  appends, ``seal_checkpoint``) issued to a manager whose enclave
  crashed without an intervening ``restore`` — records appended to a
  dead incarnation are lost, checkpoints sealed over it anchor garbage.

Each automaton is a small class with an incremental ``feed(op)`` step,
so the *same spec* drives two consumers: the static pass (ops collected
from the AST by :class:`OpCollector`) and the model checker's runtime
oracle (:mod:`repro.analysis.passes.lifecycle.oracle`, ops observed
live from the instruction/CPU/recovery layers).

Two kinds of false positive are designed out.  Ops in sibling branch
arms carry *branch vectors* (``{id(if_node): arm}``) and are compared
only when their vectors agree on every shared node — ``if fast: ewb()
else: eblock(); ewb()`` is not an inversion.  And ``with
pytest.raises(...)`` bodies are skipped entirely: negative tests
deliberately mis-call the ISA to assert it refuses.

Calls that resolve (via the project call graph) to exactly one function
in a lifecycle module are *spliced*: the callee's ops are inlined at
the call site with parameter names rebound to the caller's argument
expressions, up to depth 4, so an experiment that calls
``driver.evict_page`` and ``driver.page_in`` in the wrong order is
caught even though it never names an ISA call itself.
"""

from __future__ import annotations

import ast

from repro.analysis.walker import attr_chain

RULE_LAUNCH = "lifecycle/launch-order"
RULE_EVICT = "lifecycle/evict-order"
RULE_RESUME = "lifecycle/resume-order"
RULE_RECOVERY = "lifecycle/recovery-order"

#: op name -> (enclave-key arg position, page-key arg position).
#: Positions ignore the receiver (``self.instr.ewb(enclave, base)`` has
#: ``enclave`` at 0).  ``None`` means the op does not name that key.
ISA_OPS = {
    "ecreate": (None, None),      # enclave key = the assignment target
    "eadd": (0, 1),
    "eadd_tcs": (0, 1),
    "eextend": (0, 1),
    "einit": (0, None),
    "eenter": (0, None),
    "eresume": (0, None),
    "aex": (0, None),
    "eblock": (0, 1),
    "ewb": (0, 1),
    "eldu": (0, 1),
}

#: ``drop`` is a page-table method name, not ISA; only treat it as the
#: shootdown step when called on something that is plainly a page table.
DROP_RECEIVERS = frozenset({"page_table", "pagetable", "pt"})

ADD_FAMILY = frozenset({"eadd", "eadd_tcs", "eextend"})

#: Recovery-protocol ops (PR 5 crash/restore), keyed by the manager
#: expression they are called on.  ``crash`` kills the incarnation,
#: ``restore`` replays the journal onto a relaunched one, and the
#: journal-record family appends to the sealed journal (``begin`` seals
#: the base checkpoint, ``seal_checkpoint`` anchors, ``note_*`` append
#: one record each).  The ``note_*``/``seal_checkpoint`` names are
#: distinctive; ``crash`` and ``restore`` are generic method names, so
#: they only count when called on a receiver that is plainly a recovery
#: manager (mirroring :data:`DROP_RECEIVERS`).
RECOVERY_RECEIVERS = frozenset({
    "manager", "recovery", "recovery_manager", "mgr", "rm",
})
RECOVERY_RECORD_OPS = frozenset({
    "begin", "seal_checkpoint", "note_fault", "note_progress",
    "note_balloon", "note_claim", "note_release", "note_regroup",
    "note_oram",
})

MAX_SPLICE_DEPTH = 4


class Op:
    __slots__ = ("name", "encl", "page", "line", "branch")

    def __init__(self, name, encl, page, line, branch):
        self.name = name
        self.encl = encl
        self.page = page
        self.line = line
        self.branch = branch


def comparable(a, b):
    """Two ops can execute in one run iff their branch vectors agree on
    every shared If node."""
    for node_id, arm in a.branch.items():
        if b.branch.get(node_id, arm) != arm:
            return False
    return True


def _key_of(expr):
    chain = attr_chain(expr)
    return ".".join(chain) if chain else None


def _is_pytest_raises(with_node):
    for item in with_node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            chain = attr_chain(expr.func)
            if chain and chain[-1] == "raises":
                return True
    return False


class OpCollector:
    """Collects the ISA ops of one function (or module body) in source
    order, splicing resolved lifecycle callees."""

    def __init__(self, project, config, module, caller):
        self.project = project
        self.config = config
        self.module = module
        self.caller = caller
        self.ops = []
        self.branch = {}
        self._stack = set()        # splice recursion guard (qualnames)

    def collect(self, body):
        for stmt in body:
            self._stmt(stmt)
        return self.ops

    # -- statements --------------------------------------------------------

    def _stmt(self, node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(node, ast.With):
            if _is_pytest_raises(node):
                return
            for stmt in node.body:
                self._stmt(stmt)
            return
        if isinstance(node, (ast.If,)):
            self._scan_expr(node.test)
            self._arm(node, 0, node.body)
            self._arm(node, 1, node.orelse)
            return
        if isinstance(node, ast.Try):
            for stmt in node.body:
                self._stmt(stmt)
            for stmt in node.orelse:
                self._stmt(stmt)
            for i, handler in enumerate(node.handlers):
                self._arm(node, i + 1, handler.body)
            for stmt in node.finalbody:
                self._stmt(stmt)
            return
        if isinstance(node, (ast.For, ast.While)):
            if isinstance(node, ast.While):
                self._scan_expr(node.test)
            else:
                self._scan_expr(node.iter)
            for stmt in node.body:
                self._stmt(stmt)
            for stmt in node.orelse:
                self._stmt(stmt)
            return
        if isinstance(node, ast.Assign):
            self._scan_expr(node.value, assign_target=node.targets[0])
            return
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if node.value is not None:
                self._scan_expr(node.value)
            return
        if isinstance(node, (ast.Return, ast.Expr, ast.Assert,
                             ast.Raise)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._scan_expr(child)
            return

    def _arm(self, node, arm, body):
        saved = dict(self.branch)
        self.branch[id(node)] = arm
        for stmt in body:
            self._stmt(stmt)
        self.branch = saved

    # -- calls -------------------------------------------------------------

    def _scan_expr(self, expr, assign_target=None):
        # Inner-to-outer source order is close enough: visit nested
        # calls first via ast.walk ordering on the arguments.
        for node in _calls_in_order(expr):
            self._call(node, assign_target if node is expr else None)

    def _call(self, call, assign_target):
        chain = attr_chain(call.func)
        if not chain:
            return
        name = chain[-1]
        if name in ISA_OPS:
            encl_pos, page_pos = ISA_OPS[name]
            encl = page = None
            if name == "ecreate":
                if isinstance(assign_target, ast.Name):
                    encl = assign_target.id
            else:
                if encl_pos is not None and encl_pos < len(call.args):
                    encl = _key_of(call.args[encl_pos])
                if page_pos is not None and page_pos < len(call.args):
                    page = _key_of(call.args[page_pos])
            self.ops.append(Op(name, encl, page, call.lineno,
                               dict(self.branch)))
            return
        if name == "drop" and len(chain) >= 2 and \
                chain[-2] in DROP_RECEIVERS:
            if call.args:
                page = _key_of(call.args[0])
                self.ops.append(Op("drop", None, page, call.lineno,
                                   dict(self.branch)))
            return
        if name in RECOVERY_RECORD_OPS and len(chain) >= 2:
            self.ops.append(Op(name, ".".join(chain[:-1]), None,
                               call.lineno, dict(self.branch)))
            return
        if name in ("crash", "restore") and len(chain) >= 2 and \
                chain[-2] in RECOVERY_RECEIVERS:
            self.ops.append(Op(name, ".".join(chain[:-1]), None,
                               call.lineno, dict(self.branch)))
            return
        self._splice(call, assign_target)

    def _splice(self, call, assign_target, depth=0):
        if depth >= MAX_SPLICE_DEPTH:
            return
        candidates = self.project.resolve_call(
            call, self.module, caller=self.caller)
        if len(candidates) != 1:
            return
        callee = candidates[0]
        if not callee.module.startswith(self.config.lifecycle_prefixes):
            return
        if callee.qualname in self._stack:
            return
        self._stack.add(callee.qualname)
        try:
            inner = OpCollector(self.project, self.config,
                                callee.module, callee)
            inner._stack = self._stack
            inner.collect(callee.node.body)
        finally:
            self._stack.discard(callee.qualname)
        if not inner.ops:
            return
        bound = self.project.bind_arguments(call, callee)
        rename = {}
        for i, expr in bound.items():
            key = _key_of(expr)
            if key is not None and i < len(callee.params):
                rename[callee.params[i]] = key
        if isinstance(assign_target, ast.Name):
            for ret in _return_names(callee.node):
                rename[ret] = assign_target.id
        # The scope carries the call-site line: a callee's *locals* are
        # fresh per invocation, so ops from two splices of the same
        # callee must never share a key (the callee's own internal
        # order is checked when the callee is analyzed directly).
        scope = f"{callee.name}@{call.lineno}:"
        for op in inner.ops:
            self.ops.append(Op(
                op.name,
                _rebind(op.encl, rename, scope),
                _rebind(op.page, rename, scope),
                call.lineno,
                dict(self.branch),
            ))

    @property
    def params(self):
        return self.caller.params if self.caller is not None else ()


def _rebind(key, rename, scope):
    if key is None:
        return None
    root, _, rest = key.partition(".")
    if root in rename:
        new = rename[root]
        return f"{new}.{rest}" if rest else new
    return scope + key


def _return_names(func_node):
    names = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Return) and \
                isinstance(node.value, ast.Name):
            names.add(node.value.id)
    return names


def _calls_in_order(expr):
    calls = [n for n in ast.walk(expr) if isinstance(n, ast.Call)]
    # ast.walk is breadth-first: outermost call first.  Arguments are
    # evaluated before the call runs, so reverse to inner-first —
    # exact sibling order does not matter to the automata.
    return list(reversed(calls))


# -- automata ---------------------------------------------------------------
#
# Each automaton consumes Op objects one at a time through ``feed`` and
# yields ``(rule, line, message)`` violations.  Branch vectors make the
# static feed conservative; the runtime oracle feeds ops with empty
# branch vectors (a live trace has no sibling arms), so the same
# transition tables are exact there.


def _prior(history, op):
    return [p for p in history if comparable(p, op)]


class LaunchAutomaton:
    """ECREATE → EADD/EADD_TCS/EEXTEND → EINIT → EENTER, per enclave."""

    rule = RULE_LAUNCH

    def __init__(self):
        self._history = {}   # enclave key -> [ops]

    def feed(self, op):
        if op.name == "ecreate":
            if op.encl is not None:
                self._history[op.encl] = []
            return
        if op.encl is None or op.name not in (
                ADD_FAMILY | {"einit", "eenter"}):
            return
        prior = _prior(self._history.setdefault(op.encl, []), op)
        if op.name in ADD_FAMILY:
            for kind in ("einit", "eenter"):
                hit = next((p for p in prior if p.name == kind), None)
                if hit is not None:
                    yield (RULE_LAUNCH, op.line,
                           f"{op.name.upper()}({op.encl}) after "
                           f"{kind.upper()} (line {hit.line}): the "
                           f"enclave is already sealed")
                    break
        elif op.name == "einit":
            hit = next((p for p in prior if p.name == "eenter"), None)
            if hit is not None:
                yield (RULE_LAUNCH, op.line,
                       f"EINIT({op.encl}) after EENTER (line "
                       f"{hit.line})")
            else:
                hit = next((p for p in prior if p.name == "einit"), None)
                if hit is not None:
                    yield (RULE_LAUNCH, op.line,
                           f"second EINIT({op.encl}) (first at line "
                           f"{hit.line})")
        self._history[op.encl].append(op)


class EvictAutomaton:
    """EBLOCK → page-table drop → EWB, per page; ELDU resets."""

    rule = RULE_EVICT

    def __init__(self):
        self._history = {}   # page key -> [ops]

    def feed(self, op):
        if op.name not in ("eblock", "drop", "ewb", "eldu"):
            return
        if op.page is None:
            return
        if op.name == "eldu":
            self._history[op.page] = []
            return
        prior = _prior(self._history.setdefault(op.page, []), op)
        if op.name == "eblock":
            for kind, why in (("ewb", "the page is already evicted"),
                              ("drop", "the mapping is already gone")):
                hit = next((p for p in prior if p.name == kind), None)
                if hit is not None:
                    yield (RULE_EVICT, op.line,
                           f"EBLOCK({op.page}) after {kind.upper()} "
                           f"(line {hit.line}): {why}")
                    break
        elif op.name == "drop":
            hit = next((p for p in prior if p.name == "ewb"), None)
            if hit is not None:
                yield (RULE_EVICT, op.line,
                       f"page-table drop({op.page}) after EWB (line "
                       f"{hit.line}): the shootdown must precede "
                       f"eviction")
        self._history[op.page].append(op)


class RecoveryAutomaton:
    """crash → relaunch → restore, per recovery manager.

    Two transitions are checked.  A ``restore`` is an *observed
    inversion* when no comparable ``crash`` precedes it but one follows
    (the resume automaton's conservatism: a function restoring after a
    crash that happened elsewhere is not ours to judge).  And once a
    comparable ``crash`` has been seen, any journal-record op
    (``begin``/``seal_checkpoint``/``note_*``) before the next
    comparable ``restore`` is a violation: the records go to a dead
    incarnation and are lost, checkpoints sealed there anchor garbage.
    """

    rule = RULE_RECOVERY

    def __init__(self):
        self._history = {}   # manager key -> [ops]
        self._pending = []   # restores awaiting a later crash

    def feed(self, op):
        if op.encl is None or op.name not in (
                RECOVERY_RECORD_OPS | {"crash", "restore"}):
            return
        history = self._history.setdefault(op.encl, [])
        prior = _prior(history, op)
        if op.name == "restore":
            if not any(p.name == "crash" for p in prior):
                self._pending.append(op)
        elif op.name == "crash":
            for waiting in list(self._pending):
                if waiting.encl == op.encl and comparable(waiting, op):
                    self._pending.remove(waiting)
                    yield (RULE_RECOVERY, waiting.line,
                           f"restore({op.encl}) before any crash (a "
                           f"crash follows at line {op.line}): restore "
                           f"replays the journal onto a relaunched "
                           f"enclave, not a live one")
        else:
            crash = None
            for p in reversed(prior):
                if p.name == "restore":
                    break
                if p.name == "crash":
                    crash = p
                    break
            if crash is not None:
                yield (RULE_RECOVERY, op.line,
                       f"{op.name}({op.encl}) after crash (line "
                       f"{crash.line}) without an intervening restore: "
                       f"the record reaches a dead incarnation")
        history.append(op)

    def finish(self):
        self._pending.clear()
        return ()


class ResumeAutomaton:
    """AEX → ERESUME; only observed inversions are flagged, which needs
    look-ahead: violations surface from :meth:`finish`."""

    rule = RULE_RESUME

    def __init__(self):
        self._by_key = {}

    def feed(self, op):
        if op.name in ("aex", "eresume") and op.encl is not None:
            self._by_key.setdefault(op.encl, []).append(op)
        return ()

    def finish(self):
        for key, seq in self._by_key.items():
            for i, op in enumerate(seq):
                if op.name != "eresume":
                    continue
                before = [p for p in seq[:i]
                          if p.name == "aex" and comparable(p, op)]
                after = [p for p in seq[i + 1:]
                         if p.name == "aex" and comparable(p, op)]
                if not before and after:
                    yield (RULE_RESUME, op.line,
                           f"ERESUME({key}) before any AEX (an AEX "
                           f"follows at line {after[0].line})")


def build_automata():
    """The full shared spec, one fresh automaton per protocol."""
    return (LaunchAutomaton(), EvictAutomaton(), RecoveryAutomaton(),
            ResumeAutomaton())


def check_ops(ops):
    """Run every automaton over ``ops``; yields (rule, line, message)."""
    automata = build_automata()
    for op in ops:
        for automaton in automata:
            yield from automaton.feed(op) or ()
    for automaton in automata:
        finish = getattr(automaton, "finish", None)
        if finish is not None:
            yield from finish()
