"""The effects pass family: interprocedural effect/purity inference.

``prepare`` runs the :class:`~.engine.EffectEngine` fixpoint once over
the shared call graph and indexes every parallel-runner call site;
``run`` then reports per module through the three checker families:

* ``effects/epoch-soundness`` — translation-affecting mutators must
  bump the :class:`~repro.sgx.epoch.TranslationEpoch` on all paths;
* ``effects/parallel-purity`` — ``run_indexed`` task workers must
  have empty ambient write sets;
* ``effects/hot-path-perf`` — hot-marked functions must keep their
  loops free of invariant re-lookup, allocation, and exceptions.
"""

from __future__ import annotations

from repro.analysis.passes.effects import epoch, hotpath, purity
from repro.analysis.passes.effects.engine import EffectEngine
from repro.analysis.passes.effects.model import EffectSummary, display

__all__ = ["EffectsPass", "EffectEngine", "EffectSummary", "display"]


class EffectsPass:
    """Effect summaries plus the three convention checkers."""

    family = "effects"

    def __init__(self, config):
        self.config = config
        self._engine = None
        self._sites = {}

    def applies(self, module):
        return True

    def prepare(self, project):
        self._engine = EffectEngine(project, self.config)
        self._engine.run()
        self._sites = purity.find_runner_sites(project, self.config)

    def run(self, mod):
        if self._engine is None:  # driver always prepares; be safe
            return
        yield from epoch.check_module(self._engine, self.config, mod)
        yield from purity.check_module(
            self._engine, self.config, self._sites, mod)
        yield from hotpath.check_module(
            self._engine.project, self.config, mod)
