"""effects/hot-path-perf — micro-discipline for the hot access seams.

The PR 4 engine holds its speedup by keeping the per-access loops
allocation-free and dispatch-light (``__slots__`` state objects,
hoisted bound methods, the returned-fault protocol instead of
exceptions).  On functions marked hot — by the configured
``Class.method`` list or an explicit ``# repro: hot`` comment on (or
directly above) the ``def`` line — this checker flags, inside any
``for``/``while`` loop:

* **loop-invariant attribute re-lookup** — a pure attribute chain of
  three or more segments whose root is never rebound in the loop
  (``self.page_table._ptes`` costs two dict lookups per iteration;
  hoist it to a local);
* **per-iteration allocation** — list/dict/set displays and
  comprehensions allocate garbage every iteration;
* **exception-driven control flow** — a ``try`` inside the loop body;
  faults on the hot path use the returned-fault protocol
  (``translate_nofault``) precisely to avoid unwinding costs.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding

RULE = "effects/hot-path-perf"

_ALLOC_NODES = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp,
                ast.DictComp, ast.GeneratorExp)
_ALLOC_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque"})

HOT_MARKER = "# repro: hot"


def check_module(project, config, mod):
    """Yield hot-path findings for one module."""
    marker_lines = {
        i + 1 for i, line in enumerate(mod.source.splitlines())
        if HOT_MARKER in line
    }
    for qual in sorted(project.functions):
        info = project.functions[qual]
        if info.module != mod.module or info.path != mod.path:
            continue
        if not _is_hot(info, config, marker_lines):
            continue
        yield from _check_function(info, mod)


def _is_hot(info, config, marker_lines):
    suffix = (f"{info.class_name}.{info.name}"
              if info.class_name else info.name)
    if suffix in config.effects_hot_functions:
        return True
    lineno = info.node.lineno
    return lineno in marker_lines or (lineno - 1) in marker_lines


def _check_function(info, mod):
    seen = set()
    for loop in ast.walk(info.node):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        rebound = _rebound_names(loop)
        body = list(loop.body) + list(loop.orelse)
        for finding in _check_loop(info, mod, body, rebound):
            key = (finding.line, finding.message)
            if key not in seen:
                seen.add(key)
                yield finding


def _rebound_names(loop):
    """Names assigned anywhere inside the loop (including its own
    ``for`` target): chains rooted at these are not loop-invariant."""
    names = set()
    nodes = list(loop.body) + list(loop.orelse)
    if isinstance(loop, ast.For):
        nodes.append(loop.target)
    for node in nodes:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, (ast.Store, ast.Del)):
                names.add(sub.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for t in ast.walk(sub.target):
                    if isinstance(t, ast.Name):
                        names.add(t.id)
            elif isinstance(sub, ast.comprehension):
                for t in ast.walk(sub.target):
                    if isinstance(t, ast.Name):
                        names.add(t.id)
    return names


def _check_loop(info, mod, body, rebound):
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load):
                chain = _pure_chain(node)
                if (chain is not None and len(chain) >= 3
                        and chain[0] not in rebound
                        and not _is_inner_attribute(node, stmt)):
                    dotted = ".".join(chain)
                    yield Finding(
                        path=mod.path, line=node.lineno, rule=RULE,
                        message=(
                            f"hot function '{info.name}' re-looks up "
                            f"loop-invariant chain '{dotted}' every "
                            f"iteration"
                        ),
                        hint=f"hoist '{dotted}' to a local before the loop",
                        module=mod.module,
                    )
            elif isinstance(node, _ALLOC_NODES):
                kind = type(node).__name__.lower()
                yield Finding(
                    path=mod.path, line=node.lineno, rule=RULE,
                    message=(
                        f"hot function '{info.name}' allocates a fresh "
                        f"{kind} every loop iteration"
                    ),
                    hint="hoist the container out of the loop or reuse "
                         "a preallocated one",
                    module=mod.module,
                )
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ALLOC_CALLS):
                yield Finding(
                    path=mod.path, line=node.lineno, rule=RULE,
                    message=(
                        f"hot function '{info.name}' allocates via "
                        f"{node.func.id}() every loop iteration"
                    ),
                    hint="hoist the container out of the loop or reuse "
                         "a preallocated one",
                    module=mod.module,
                )
            elif isinstance(node, ast.Try):
                yield Finding(
                    path=mod.path, line=node.lineno, rule=RULE,
                    message=(
                        f"hot function '{info.name}' uses exception-"
                        f"driven control flow inside the loop"
                    ),
                    hint="use the returned-fault protocol "
                         "(translate_nofault) instead of try/except "
                         "on the hot path",
                    module=mod.module,
                )


def _pure_chain(node):
    """``["self", "page_table", "_ptes"]`` for a pure attribute chain;
    None when the chain crosses a call or subscript (those results may
    legitimately change per iteration)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def _is_inner_attribute(node, stmt):
    """True when ``node`` is the ``.value`` of an enclosing Attribute —
    only the *maximal* chain is reported."""
    for parent in ast.walk(stmt):
        if isinstance(parent, ast.Attribute) and parent.value is node:
            return True
    return False
