"""effects/epoch-soundness — translation mutators must bump the epoch.

The PR 4 fast path (``Mmu`` memoization, ``probe_run``) is only sound
because every mutation of translation-affecting state — page-table
entries, EPCM entries, TLB contents, EPC residency, permission bits —
bumps the shared :class:`~repro.sgx.epoch.TranslationEpoch`, which
drops all memos wholesale.  This checker attributes blame to the
function whose *own statements* perform such a write (propagated
callee effects are the callee's responsibility) and requires the
must-bump analysis to prove a bump on every path that writes before a
normal return.  ``__init__``-style constructors are exempt: no memo
can exist for an object still being constructed.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.passes.effects.model import (
    affects_translation, display,
)

RULE = "effects/epoch-soundness"


def check_module(engine, config, mod):
    """Yield epoch-soundness findings for one module."""
    project = engine.project
    for qual in sorted(project.functions):
        info = project.functions[qual]
        if info.module != mod.module or info.path != mod.path:
            continue
        if not info.module.startswith(config.effects_epoch_prefixes):
            continue
        if info.name in config.effects_epoch_exempt_names:
            continue
        summary = engine.summaries[qual]
        if summary.epoch_sound:
            continue
        offending = sorted(
            tok for tok in summary.direct_writes
            if affects_translation(tok, config.effects_translation_attrs)
        )
        if not offending:
            continue
        shown = ", ".join(display(tok) for tok in offending[:3])
        if len(offending) > 3:
            shown += ", ..."
        yield Finding(
            path=mod.path,
            line=info.node.lineno,
            rule=RULE,
            message=(
                f"'{info.name}' writes translation-affecting state "
                f"({shown}) without bumping the TranslationEpoch on "
                f"every path"
            ),
            hint=(
                "bump epoch.value before returning (or via a "
                "must-bump helper), or annotate with # repro: "
                "allow[effects/epoch-soundness] and a reason"
            ),
            module=mod.module,
        )
