"""Interprocedural effect-and-purity inference.

Mirrors the taint engine's shape: one :class:`_FunctionEffects` walker
per function body tracks the provenance of every local name (which
ambient state it aliases, or :data:`~.model.LOCAL` for fresh objects),
records ambient writes, and rebinds callee summaries at every resolved
call site; :class:`EffectEngine` drives the walkers to a project-wide
fixpoint in deterministic qualname order.  Summaries only grow, so the
fixpoint is monotone; :data:`MAX_ROUNDS` bounds pathological chains.

On top of the data-effect walk, a structural *must-bump* pass decides
epoch soundness: scanning each body in statement order, a path is
``covered`` once it bumps a :class:`~repro.sgx.epoch.TranslationEpoch`
(directly, via ``.bump()``, or by calling a callee that definitely
bumps), ``failed`` if it returns after a translation-affecting write
without a bump, and merely ``open`` otherwise.  Raising is always an
acceptable exit — faults abort the access, so no memo can be minted
from the dead translation.
"""

from __future__ import annotations

import ast

from repro.analysis.walker import attr_chain
from repro.analysis.passes.effects.model import (
    LOCAL, EffectSummary, cap, extend,
)

#: Fixpoint round bound (effects propagate one call hop per round; the
#: deepest real chain — campaign point → system boot → ISA → state
#: object — is comfortably inside this).
MAX_ROUNDS = 16

#: Names resolving to builtins: results are locally constructed.
BUILTIN_NAMES = frozenset({
    "abs", "all", "any", "bin", "bool", "bytearray", "bytes", "callable",
    "chr", "classmethod", "dict", "divmod", "enumerate", "filter",
    "float", "format", "frozenset", "getattr", "hasattr", "hash", "hex",
    "id", "int", "isinstance", "issubclass", "iter", "len", "list",
    "map", "max", "min", "next", "object", "oct", "ord", "pow", "print",
    "property", "range", "repr", "reversed", "round", "set", "setattr",
    "slice", "sorted", "staticmethod", "str", "sum", "super", "tuple",
    "type", "vars", "zip", "ValueError", "TypeError", "KeyError",
    "IndexError", "AttributeError", "RuntimeError", "StopIteration",
    "NotImplementedError", "OSError", "Exception", "BaseException",
    "True", "False", "None", "NotImplemented", "Ellipsis",
})

#: Builtins whose result aliases their container argument(s): writing
#: through an element of ``sorted(xs)`` writes an element of ``xs``.
PASSTHROUGH_BUILTINS = frozenset({
    "sorted", "list", "tuple", "reversed", "iter", "next", "filter",
    "map", "enumerate", "zip", "min", "max",
})

#: Calls that hand back a *fresh* object even from ambient arguments:
#: cloning is the sanctioned way for a parallel worker to get private
#: mutable state.
FRESH_CALL_NAMES = frozenset({
    "deepcopy", "copy", "loads", "dumps", "fromkeys",
})

_COVERED, _OPEN, _FAILED = "covered", "open", "failed"


class EffectEngine:
    """Project-wide effect summaries, computed once per analysis."""

    def __init__(self, project, config):
        self.project = project
        self.config = config
        #: qualname -> EffectSummary
        self.summaries = {}
        #: qualname -> callee qualnames whose summaries it consumed
        #: (drives the dirty set: a function is re-analyzed only when
        #: one of its callees changed last round).
        self.deps = {}
        self.rounds = 0

    def run(self):
        order = sorted(self.project.functions)
        for qual in order:
            self.summaries[qual] = EffectSummary()
            self.deps[qual] = set()
        to_run = list(order)
        for _ in range(MAX_ROUNDS):
            if not to_run:
                break
            self.rounds += 1
            before = {q: self.summaries[q].snapshot() for q in order}
            for qual in to_run:
                _FunctionEffects(self, self.project.functions[qual]).run()
            changed = {
                q for q in order
                if self.summaries[q].snapshot() != before[q]
            }
            to_run = [
                q for q in order
                if self.deps[q] & changed or q in changed
            ]
        return self.summaries


class _FunctionEffects:
    """One body walk: provenance env, ambient writes, must-bump."""

    def __init__(self, engine, info):
        self.engine = engine
        self.project = engine.project
        self.config = engine.config
        self.info = info
        self.summary = engine.summaries[info.qualname]
        self._deps = engine.deps[info.qualname]
        self.env = {}
        self._globals = set()
        self._stmt_stack = []
        #: innermost statements performing a translation-affecting
        #: direct write (drives the must-bump Return verdicts).
        self._write_stmts = set()
        if info.class_name is not None:
            self.env["self"] = frozenset({("self",)})
            self.env["cls"] = frozenset({("self",)})
        for i, name in enumerate(info.params):
            self.env[name] = frozenset({(f"param:{i}",)})
        for name in info.kwonly:
            self.env[name] = frozenset({(f"param:kw.{name}",)})
        args = info.node.args
        if args.vararg is not None:
            self.env[args.vararg.arg] = frozenset({("param:*",)})
        if args.kwarg is not None:
            self.env[args.kwarg.arg] = frozenset({("param:**",)})

    def run(self):
        body = self.info.node.body
        # Two passes stabilize loop-carried aliases within one round.
        for _ in range(2):
            for stmt in body:
                self._stmt(stmt)
        state, wrote = self._covers(body, False)
        self.summary.bumps = self.summary.bumps or state == _COVERED
        if state == _FAILED or (state == _OPEN and wrote):
            self.summary.epoch_sound = False
        self.summary.bound()

    # -- effect recording --------------------------------------------------

    def _write(self, tokens):
        """An ambient write performed by this function's own code."""
        for tok in tokens:
            self.summary.direct_writes.add(tok)
            self.summary.writes.add(tok)
        if self._stmt_stack and any(
                self._affects_translation(tok) for tok in tokens):
            self._write_stmts.add(id(self._stmt_stack[-1]))

    def _write_propagated(self, tokens):
        self.summary.writes.update(tokens)

    def _read(self, tokens):
        self.summary.reads.update(tokens)

    def _affects_translation(self, token):
        attrs = self.config.effects_translation_attrs
        return any(
            seg in attrs for seg in token[1:]
            if seg not in ("[]", "()", "*")
        )

    # -- statements --------------------------------------------------------

    def _stmt(self, stmt):
        self._stmt_stack.append(stmt)
        try:
            self._stmt_inner(stmt)
        finally:
            self._stmt_stack.pop()

    def _stmt_inner(self, stmt):
        t = type(stmt)
        if t in (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef):
            return  # nested defs contribute when (resolvably) called
        if t is ast.Global:
            self._globals.update(stmt.names)
        elif t is ast.Assign:
            prov = self._expr(stmt.value)
            for target in stmt.targets:
                self._assign(target, prov)
        elif t is ast.AnnAssign:
            if stmt.value is not None:
                self._assign(stmt.target, self._expr(stmt.value))
        elif t is ast.AugAssign:
            self._expr(stmt.value)
            self._augtarget(stmt.target)
        elif t is ast.Delete:
            for target in stmt.targets:
                self._augtarget(target)
        elif t is ast.Expr:
            self._expr(stmt.value)
        elif t is ast.Return:
            if stmt.value is not None:
                self.summary.returns.update(self._expr(stmt.value))
        elif t is ast.If:
            self._expr(stmt.test)
            for s in stmt.body:
                self._stmt(s)
            for s in stmt.orelse:
                self._stmt(s)
        elif t in (ast.For, ast.AsyncFor):
            self._assign(stmt.target, extend(self._expr(stmt.iter), "[]"))
            for s in stmt.body:
                self._stmt(s)
            for s in stmt.orelse:
                self._stmt(s)
        elif t is ast.While:
            self._expr(stmt.test)
            for s in stmt.body:
                self._stmt(s)
            for s in stmt.orelse:
                self._stmt(s)
        elif t in (ast.With, ast.AsyncWith):
            for item in stmt.items:
                prov = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, prov)
            for s in stmt.body:
                self._stmt(s)
        elif t is ast.Try or t.__name__ == "TryStar":
            for s in stmt.body:
                self._stmt(s)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = LOCAL
                for s in handler.body:
                    self._stmt(s)
            for s in stmt.orelse:
                self._stmt(s)
            for s in stmt.finalbody:
                self._stmt(s)
        elif t is ast.Raise:
            if stmt.exc is not None:
                self._expr(stmt.exc)
            if stmt.cause is not None:
                self._expr(stmt.cause)
        elif t is ast.Assert:
            self._expr(stmt.test)
            if stmt.msg is not None:
                self._expr(stmt.msg)
        # Pass/Break/Continue/Import/Nonlocal: no data effects.

    def _assign(self, target, prov):
        t = type(target)
        if t is ast.Name:
            if target.id in self._globals:
                self._write(frozenset({
                    (f"global:{self.info.module}.{target.id}",)}))
            else:
                self.env[target.id] = prov
        elif t is ast.Attribute:
            self._write(extend(self._expr(target.value), target.attr))
        elif t is ast.Subscript:
            self._expr(target.slice)
            self._write(extend(self._expr(target.value), "[]"))
        elif t is ast.Starred:
            self._assign(target.value, prov)
        elif t in (ast.Tuple, ast.List):
            element = extend(prov, "[]")
            for elt in target.elts:
                self._assign(elt, element)

    def _augtarget(self, target):
        """AugAssign/Delete target: a write without an env rebind."""
        t = type(target)
        if t is ast.Name:
            if target.id in self._globals:
                self._write(frozenset({
                    (f"global:{self.info.module}.{target.id}",)}))
        elif t is ast.Attribute:
            self._write(extend(self._expr(target.value), target.attr))
        elif t is ast.Subscript:
            self._expr(target.slice)
            self._write(extend(self._expr(target.value), "[]"))

    # -- expressions -------------------------------------------------------

    def _expr(self, node):
        """Provenance of an expression (recording effects on the way)."""
        t = type(node)
        if t is ast.Name:
            if node.id in self.env and node.id not in self._globals:
                return self.env[node.id]
            return self._name_prov(node.id)
        if t is ast.Attribute:
            base = self._expr(node.value)
            if not base:
                return LOCAL
            tokens = extend(base, node.attr)
            if isinstance(node.ctx, ast.Load):
                self._read(tokens)
            return tokens
        if t is ast.Subscript:
            self._expr(node.slice)
            return extend(self._expr(node.value), "[]")
        if t is ast.Call:
            return self._call(node)
        if t is ast.Constant:
            return LOCAL
        if t is ast.BoolOp:
            out = set()
            for value in node.values:
                out |= self._expr(value)
            return frozenset(out)
        if t is ast.IfExp:
            self._expr(node.test)
            return frozenset(self._expr(node.body) | self._expr(node.orelse))
        if t in (ast.Tuple, ast.List, ast.Set):
            # A display is a locally-constructed container: mutating it
            # is pure even when it holds ambient references (writing
            # *through* a stored reference is the rare pattern traded
            # away here).
            for elt in node.elts:
                self._expr(elt)
            return LOCAL
        if t is ast.Dict:
            for key in node.keys:
                if key is not None:
                    self._expr(key)
            for value in node.values:
                self._expr(value)
            return LOCAL
        if t in (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp):
            return self._comprehension(node)
        if t is ast.Lambda:
            return LOCAL  # opaque; lambdas never resolve as callees
        if t is ast.Starred:
            return self._expr(node.value)
        if t in (ast.Await, ast.Yield, ast.YieldFrom):
            if node.value is not None:
                return self._expr(node.value)
            return LOCAL
        if t is ast.NamedExpr:
            prov = self._expr(node.value)
            self._assign(node.target, prov)
            return prov
        if t is ast.Slice:
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._expr(part)
            return LOCAL
        # BinOp, UnaryOp, Compare, JoinedStr, ...: fresh values, but
        # walk the children so nested calls still record effects.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)
        return LOCAL

    def _name_prov(self, name):
        if name in BUILTIN_NAMES:
            return LOCAL
        table = self.project.modules.get(self.info.module)
        if table is not None:
            if name in table.functions:
                return LOCAL  # a function object, not data
            if name in table.classes:
                return frozenset({(f"global:{self.info.module}.{name}",)})
            origin = table.imports.get(name)
            if origin is not None:
                return frozenset({(f"global:{origin}",)})
        return frozenset({(f"global:{self.info.module}.{name}",)})

    def _comprehension(self, node):
        saved = dict(self.env)
        for gen in node.generators:
            self._assign(gen.target, extend(self._expr(gen.iter), "[]"))
            for cond in gen.ifs:
                self._expr(cond)
        if isinstance(node, ast.DictComp):
            self._expr(node.key)
            out = self._expr(node.value)
        else:
            out = self._expr(node.elt)
        self.env = saved
        return out

    # -- calls -------------------------------------------------------------

    def _call(self, node):
        func = node.func
        prov_by_node = {}
        for arg in node.args:
            inner = arg.value if isinstance(arg, ast.Starred) else arg
            prov_by_node[id(inner)] = self._expr(inner)
        for kw in node.keywords:
            prov_by_node[id(kw.value)] = self._expr(kw.value)

        recv_prov, method = LOCAL, None
        if isinstance(func, ast.Attribute):
            recv_prov = self._expr(func.value)
            method = func.attr
        elif isinstance(func, ast.Name):
            method = func.id
        else:
            self._expr(func)

        if method == "setattr" and isinstance(func, ast.Name) and node.args:
            target = prov_by_node.get(id(node.args[0]), LOCAL)
            self._write(extend(target, "*"))
            return LOCAL

        chain = attr_chain(func)
        candidates = ()
        if chain:
            candidates, _strong = self.project.resolve_call_ex(
                node, self.info.module, self.info)

        result = set()
        handled = False
        for callee in candidates:
            summary = self.engine.summaries.get(callee.qualname)
            if summary is None:
                continue
            handled = True
            self._deps.add(callee.qualname)
            constructor = (callee.name == "__init__"
                           and method != "__init__")
            this_recv = LOCAL if constructor else recv_prov
            bound = self.project.bind_arguments(node, callee)
            bound_prov = {
                i: prov_by_node.get(id(expr), LOCAL)
                for i, expr in bound.items()
            }
            self._write_propagated(self._rebind_all(
                summary.writes, this_recv, bound_prov))
            if not constructor:
                result |= self._rebind_all(
                    summary.returns, this_recv, bound_prov)

        if not handled and method is not None:
            if (method in self.config.effects_mutator_methods
                    and recv_prov):
                self._write(extend(recv_prov, "[]"))
            if method in FRESH_CALL_NAMES:
                pass  # a clone: locally owned regardless of arguments
            elif method in self.config.effects_accessor_methods:
                result |= extend(recv_prov, "[]")
            elif (method in PASSTHROUGH_BUILTINS
                    and isinstance(func, ast.Name)):
                for prov in prov_by_node.values():
                    result |= prov
            elif self._is_module_receiver(func):
                # ``heapq.heappop(heap)``: a module-level function's
                # result aliases its arguments, not the module.
                for prov in prov_by_node.values():
                    result |= prov
            elif recv_prov and isinstance(func, ast.Attribute):
                # Unknown method on ambient state: the result may
                # alias something reachable from the receiver.
                result |= extend(extend(recv_prov, method), "()")
        return frozenset(result)

    def _is_module_receiver(self, func):
        """Is this an ``imported_module.function(...)`` call?"""
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            return False
        table = self.project.modules.get(self.info.module)
        if table is None:
            return False
        origin = table.imports.get(func.value.id)
        if origin is None:
            return False
        return origin in self.project.modules or "." not in origin

    def _rebind_all(self, tokens, recv_prov, bound_prov):
        out = set()
        for tok in tokens:
            out |= self._rebind(tok, recv_prov, bound_prov)
        return out

    def _rebind(self, token, recv_prov, bound_prov):
        """Map one callee token into this caller's frame."""
        root, rest = token[0], token[1:]
        if root == "self":
            base = recv_prov
        elif root.startswith("param:"):
            index = root[len("param:"):]
            if not index.isdigit():
                return frozenset()  # kwonly/varargs: no positional bind
            base = bound_prov.get(int(index), LOCAL)
        else:  # global roots survive rebinding unchanged
            return frozenset({token})
        if not base:
            return frozenset()  # bound to a locally-constructed object
        return frozenset(cap(b + rest) for b in base)

    # -- must-bump (epoch soundness) ---------------------------------------

    def _covers(self, stmts, wrote):
        """Scan a statement sequence for the epoch-bump discipline.

        Returns ``(state, wrote)``: ``covered`` when every continuing
        path has bumped (or exited acceptably), ``failed`` when some
        path returned after a translation write without bumping,
        ``open`` otherwise, with ``wrote`` tracking whether the
        fall-through path has written translation state so far.
        """
        state = _OPEN
        for stmt in stmts:
            if state != _OPEN:
                break
            t = type(stmt)
            if self._is_bump_stmt(stmt):
                state = _COVERED
                continue
            wrote = wrote or id(stmt) in self._write_stmts
            if t is ast.Return:
                return (_FAILED, wrote) if wrote else (_COVERED, wrote)
            if t is ast.Raise:
                return _COVERED, wrote
            if t is ast.If:
                b, bw = self._covers(stmt.body, wrote)
                o, ow = self._covers(stmt.orelse, wrote)
                if _FAILED in (b, o):
                    return _FAILED, wrote
                if b == _COVERED and o == _COVERED:
                    state = _COVERED
                wrote = bw or ow
            elif t in (ast.For, ast.AsyncFor, ast.While):
                b, bw = self._covers(stmt.body, wrote)
                o, ow = self._covers(stmt.orelse, wrote)
                if _FAILED in (b, o):
                    return _FAILED, wrote
                wrote = bw or ow
            elif t in (ast.With, ast.AsyncWith):
                b, bw = self._covers(stmt.body, wrote)
                if b == _FAILED:
                    return _FAILED, wrote
                if b == _COVERED:
                    state = _COVERED
                wrote = bw
            elif t is ast.Try or t.__name__ == "TryStar":
                f, _fw = self._covers(stmt.finalbody, wrote)
                if f == _FAILED:
                    return _FAILED, wrote
                b, bw = self._covers(stmt.body, wrote)
                o, ow = self._covers(stmt.orelse, bw)
                handlers = [self._covers(h.body, wrote)
                            for h in stmt.handlers]
                if (b == _FAILED or o == _FAILED
                        or any(h == _FAILED for h, _ in handlers)):
                    return _FAILED, wrote
                if f == _COVERED:
                    state = _COVERED
                elif (b == _COVERED
                        and all(h == _COVERED for h, _ in handlers)
                        and (not stmt.orelse or o == _COVERED)):
                    state = _COVERED
                wrote = bw or ow or any(hw for _, hw in handlers)
        return state, wrote

    def _is_bump_stmt(self, stmt):
        t = type(stmt)
        if t is ast.AugAssign and isinstance(stmt.op, ast.Add):
            chain = attr_chain(stmt.target)
            if chain[-2:] == ["epoch", "value"]:
                return True
            if (chain == ["self", "value"] and self.info.class_name
                    in self.config.effects_epoch_classes):
                return True
            return False
        call = None
        if t is ast.Expr and isinstance(stmt.value, ast.Call):
            call = stmt.value
        elif t is ast.Assign and isinstance(stmt.value, ast.Call):
            call = stmt.value
        if call is None:
            return False
        chain = attr_chain(call.func)
        if chain and chain[-1] == "bump":
            return True
        if not chain:
            return False
        candidates, _strong = self.project.resolve_call_ex(
            call, self.info.module, self.info)
        if not candidates:
            return False
        for c in candidates:
            self._deps.add(c.qualname)
        return all(
            self.engine.summaries.get(c.qualname) is not None
            and self.engine.summaries[c.qualname].bumps
            for c in candidates
        )
