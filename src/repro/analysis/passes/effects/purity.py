"""effects/parallel-purity — ``run_indexed`` workers must be pure.

``repro.parallel.run_indexed`` promises bit-identical results for any
``--jobs N``; that only holds when every task callable is free of
ambient writes — module/class globals shared across tasks, or in-place
mutation of the task item itself (mutations are visible to the caller
under ``--jobs 1`` but die with the worker process under ``--jobs N``).
This checker finds every runner call site, resolves the worker
callable (looking through ``functools.partial`` and decorators — the
summary belongs to the undecorated def), and requires its *transitive*
ambient write set to be empty.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.walker import attr_chain
from repro.analysis.passes.effects.model import display

RULE = "effects/parallel-purity"


def find_runner_sites(project, config):
    """Locate every parallel-runner call site, keyed by module name.

    Returns ``{module: [(call_node, worker_info, worker_label), ...]}``
    in deterministic order; call sites whose worker expression cannot
    be resolved to a project function are skipped (lambdas and dynamic
    dispatch cannot be summarized).
    """
    sites = {}
    for qual in sorted(project.functions):
        info = project.functions[qual]
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if not chain or chain[-1] not in config.effects_task_runners:
                continue
            if not _is_runner_call(project, node, info):
                continue
            position = config.effects_task_runners[chain[-1]]
            worker_expr = _worker_expr(node, position)
            if worker_expr is None:
                continue
            worker = _resolve_worker(project, info.module, worker_expr)
            if worker is None:
                continue
            if isinstance(worker_expr, ast.Call):
                # partial(worker, ...): name the worker, not the wrapper.
                label = worker.name
            else:
                label = ".".join(attr_chain(worker_expr)) or worker.name
            sites.setdefault(info.module, []).append((node, worker, label))
    return sites


def _is_runner_call(project, node, caller):
    """A call is a runner site when it resolves into ``repro.parallel``
    (or cannot resolve at all — synthetic fixtures analyze a single
    module, so the runner's definition is outside the project)."""
    candidates, _strong = project.resolve_call_ex(
        node, caller.module, caller)
    if not candidates:
        return True
    return any(
        c.module.startswith("repro.parallel") for c in candidates
    )


def _worker_expr(call, position):
    if len(call.args) > position:
        return call.args[position]
    for kw in call.keywords:
        if kw.arg == "fn":
            return kw.value
    return None


def _resolve_worker(project, module, expr):
    if isinstance(expr, ast.Call):
        # functools.partial(worker, ...) binds config, not impurity.
        chain = attr_chain(expr.func)
        if chain and chain[-1] == "partial" and expr.args:
            return _resolve_worker(project, module, expr.args[0])
        return None
    chain = attr_chain(expr)
    table = project.modules.get(module)
    if not chain or table is None:
        return None
    if len(chain) == 1:
        name = chain[0]
        if name in table.functions:
            return table.functions[name]
        origin = table.imports.get(name)
        if origin is not None:
            return project.resolve_dotted(origin)
        return None
    origin = table.imports.get(chain[0])
    if origin is not None:
        return project.resolve_dotted(".".join([origin] + chain[1:]))
    return None


def check_module(engine, config, sites, mod):
    """Yield purity findings for one module's runner call sites."""
    allowed = config.effects_purity_allowed_writes
    for call, worker, label in sites.get(mod.module, ()):
        summary = engine.summaries.get(worker.qualname)
        if summary is None:
            continue
        offending = sorted(
            tok for tok in summary.writes if display(tok) not in allowed
        )
        if not offending:
            continue
        shown = ", ".join(display(tok) for tok in offending[:3])
        if len(offending) > 3:
            shown += ", ..."
        mutates_item = any(
            tok[0].startswith("param:") for tok in offending)
        detail = (
            "mutates its task item (diverges between --jobs 1 and "
            "--jobs N)" if mutates_item and all(
                tok[0].startswith("param:") for tok in offending)
            else "writes ambient shared state"
        )
        yield Finding(
            path=mod.path,
            line=call.lineno,
            rule=RULE,
            message=(
                f"parallel task '{label}' {detail}: {shown}; "
                f"--jobs N bit-identity requires pure workers"
            ),
            hint=(
                "build all state locally inside the worker (fresh "
                "objects per task), or annotate with # repro: "
                "allow[effects/parallel-purity] and a reason"
            ),
            module=mod.module,
        )
