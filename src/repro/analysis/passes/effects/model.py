"""Effect tokens and per-function effect summaries.

An *effect token* names one piece of ambient state a function may read
or write, as a tuple of path segments rooted at the state's owner:

* ``("self", "_ptes", "[]")`` — an element of ``self._ptes``;
* ``("param:0", "backed", "[]")`` — an element of ``backed`` on the
  first positional argument;
* ``("global:repro.sgx.enclave.Enclave", "_next_id")`` — a class or
  module attribute, rooted at its *defining* module so the same state
  gets the same token no matter which module touches it.

Path segments after the root are attribute names, ``"[]"`` for
subscript/container-element steps, ``"()"`` for call-result steps, and
``"*"`` for a deterministic truncation marker once a path exceeds
:data:`MAX_PATH` segments.

Locally-constructed objects (literals, fresh constructor results) have
*no* token — their provenance is the empty set, spelled
:data:`LOCAL` — which is exactly the escape analysis: a write through
a local object is invisible in the summary, a write through anything
rooted in ``self``/a parameter/a global is ambient.
"""

from __future__ import annotations

#: Provenance of a locally-constructed (non-escaping) value.
LOCAL = frozenset()

#: Maximum token length; longer paths truncate deterministically.
MAX_PATH = 6

#: Cap on tokens kept per summary set (keeps the fixpoint bounded on
#: high-fan-in aggregation functions; pruning is deterministic).
MAX_TOKENS = 400


def cap(token):
    """Bound one token to :data:`MAX_PATH` segments."""
    if len(token) <= MAX_PATH:
        return token
    return token[:MAX_PATH - 1] + ("*",)


def extend(provenance, segment):
    """Append one path segment to every token of a provenance set."""
    if not provenance:
        return LOCAL
    return frozenset(cap(tok + (segment,)) for tok in provenance)


def display(token):
    """Human-readable rendering of one token."""
    root = token[0]
    if root.startswith("global:"):
        head = root[len("global:"):]
    elif root.startswith("param:"):
        head = f"arg[{root[len('param:'):]}]"
    else:
        head = root
    parts = [head]
    for seg in token[1:]:
        if seg == "[]":
            parts[-1] += "[...]"
        elif seg == "()":
            parts[-1] += "()"
        elif seg == "*":
            parts[-1] += ".*"
        else:
            parts.append(seg)
    return ".".join(parts)


def affects_translation(token, attrs):
    """Does this write token touch translation-affecting state?"""
    return any(
        seg in attrs for seg in token[1:] if seg not in ("[]", "()", "*")
    )


class EffectSummary:
    """Interprocedural read/write/return effects of one function.

    ``writes`` is the transitive ambient write set (own statements plus
    rebound callee effects); ``direct_writes`` keeps only the writes
    this function's own statements perform, which is what the
    epoch-soundness checker attributes blame by.  ``returns`` holds the
    ambient state the return value may alias, so call sites can track
    aliasing through helper results.  ``bumps`` records a *definite*
    epoch bump on every fall-through path (usable by callers);
    ``epoch_sound`` is the finer per-function verdict — no path writes
    translation state and then exits without a bump.
    """

    __slots__ = ("writes", "direct_writes", "reads", "returns",
                 "bumps", "epoch_sound", "truncated")

    def __init__(self):
        self.writes = set()
        self.direct_writes = set()
        self.reads = set()
        self.returns = set()
        self.bumps = False
        self.epoch_sound = True
        self.truncated = False

    def snapshot(self):
        return (
            frozenset(self.writes),
            frozenset(self.direct_writes),
            frozenset(self.reads),
            frozenset(self.returns),
            self.bumps,
            self.epoch_sound,
        )

    def bound(self):
        """Deterministically prune oversized sets."""
        for name in ("writes", "direct_writes", "reads", "returns"):
            tokens = getattr(self, name)
            if len(tokens) > MAX_TOKENS:
                setattr(self, name, set(sorted(tokens)[:MAX_TOKENS]))
                self.truncated = True
