"""The pass registry.

Each pass family lives in its own module and exposes one class with:

* ``family``  — the rule-family id (findings use ``family/subrule``);
* ``applies(module)`` — whether the pass runs on a dotted module name;
* ``run(mod)`` — yield :class:`~repro.analysis.findings.Finding`
  objects for one :class:`~repro.analysis.walker.ModuleSource`;
* optionally ``prepare(project)`` — called once per analysis with the
  interprocedural :class:`~repro.analysis.callgraph.Project` before any
  ``run``, for passes whose findings need the whole call graph.
"""

from __future__ import annotations

from repro.analysis.passes.accounting import CycleAccountingPass
from repro.analysis.passes.determinism import DeterminismPass
from repro.analysis.passes.effects import EffectsPass
from repro.analysis.passes.lifecycle import LifecyclePass
from repro.analysis.passes.mutation import MutationDisciplinePass
from repro.analysis.passes.robustness import RobustnessPass
from repro.analysis.passes.taint import LeakagePass
from repro.analysis.passes.trust_boundary import TrustBoundaryPass

PASS_CLASSES = (
    TrustBoundaryPass,
    MutationDisciplinePass,
    DeterminismPass,
    CycleAccountingPass,
    LeakagePass,
    LifecyclePass,
    RobustnessPass,
    EffectsPass,
)


def build_passes(config, only=None):
    """Instantiate the registered passes; ``only`` (an iterable of
    family names) restricts to those families."""
    classes = PASS_CLASSES
    if only is not None:
        wanted = set(only)
        classes = tuple(cls for cls in classes if cls.family in wanted)
    return [cls(config) for cls in classes]


def rule_families():
    return tuple(cls.family for cls in PASS_CLASSES)


#: rule id -> one-line invariant, for SARIF rule metadata and the docs
#: catalog.  ``suppression/unused`` is emitted by the driver itself.
RULE_CATALOG = {
    "trust-boundary/import":
        "untrusted modules must not import enclave-private modules",
    "trust-boundary/attr":
        "untrusted modules must not read enclave-private attributes",
    "mutation-discipline/call":
        "only the ISA layer may call EPC/EPCM/TLB mutators",
    "mutation-discipline/store":
        "only the ISA layer may store through EPC/EPCM/TLB components",
    "determinism/time":
        "simulated results must not read the wall clock",
    "determinism/random":
        "simulated results must not use unseeded/global randomness",
    "determinism/hash":
        "builtin hash() is per-process salted; results must not use it",
    "determinism/parallel-merge":
        "fan-out results must merge in canonical task order, never "
        "completion/hash/worker order",
    "cycle-accounting/uncharged":
        "modeled paging paths must charge the simulated clock",
    "leakage/page-address":
        "secret-tainted values must not become page addresses",
    "leakage/index":
        "app code must not index containers with secret-tainted values",
    "leakage/branch":
        "secret-tainted branches must not guard paging activity",
    "lifecycle/launch-order":
        "enclave build follows ECREATE → EADD/EEXTEND → EINIT → EENTER",
    "lifecycle/evict-order":
        "eviction follows EBLOCK → TLB shootdown → EWB",
    "lifecycle/resume-order":
        "ERESUME resumes an interrupted enclave: AEX comes first",
    "lifecycle/recovery-order":
        "recovery follows crash → relaunch → restore; journal records "
        "only reach a live incarnation",
    "robustness/broad-except":
        "runtime code must not swallow faults with broad except handlers",
    "robustness/unbounded-restart":
        "restart/retry loops must be bounded or escape via "
        "raise/return/break (restart churn is a §5.3 signal)",
    "robustness/unbounded-queue":
        "service/runtime while-loops must bound, drain, or escape any "
        "list/deque they accumulate into",
    "robustness/unguarded-failover":
        "replica-selection loops must own the all-replicas-unhealthy "
        "fall-through with an explicit return/raise",
    "effects/epoch-soundness":
        "translation-affecting mutators must bump the TranslationEpoch "
        "on every path before returning",
    "effects/parallel-purity":
        "parallel task workers must have empty ambient write sets "
        "(--jobs N bit-identity)",
    "effects/hot-path-perf":
        "hot-path loops must avoid invariant re-lookup, per-iteration "
        "allocation, and exception control flow",
    "suppression/unused":
        "allow-annotations must suppress at least one finding (--strict)",
}
