"""The pass registry.

Each pass family lives in its own module and exposes one class with:

* ``family``  — the rule-family id (findings use ``family/subrule``);
* ``applies(module)`` — whether the pass runs on a dotted module name;
* ``run(mod)`` — yield :class:`~repro.analysis.findings.Finding`
  objects for one :class:`~repro.analysis.walker.ModuleSource`.
"""

from __future__ import annotations

from repro.analysis.passes.accounting import CycleAccountingPass
from repro.analysis.passes.determinism import DeterminismPass
from repro.analysis.passes.mutation import MutationDisciplinePass
from repro.analysis.passes.trust_boundary import TrustBoundaryPass

PASS_CLASSES = (
    TrustBoundaryPass,
    MutationDisciplinePass,
    DeterminismPass,
    CycleAccountingPass,
)


def build_passes(config):
    return [cls(config) for cls in PASS_CLASSES]


def rule_families():
    return tuple(cls.family for cls in PASS_CLASSES)
