"""Trust-boundary pass: the host may not see behind the ISA.

The paper's §5.1.2/§5.1.3 changes exist precisely so the OS never
observes sub-page fault addresses, SSA contents, or other
enclave-private state.  In the simulator that state is ordinary Python
attributes, so this pass checks that modules on the untrusted side
(``repro.host.*``, ``repro.attacks.*``) neither import the
enclave-private modules nor reach through objects into enclave-private
attributes — except via the sanctioned driver surface, which implements
the §5.2.1 contract and is exempt by configuration.

Attacks that *deliberately* probe the host-visible surface annotate
their probes with ``# repro: allow[trust-boundary]``; the annotations
are the machine-checked inventory of what the threat model grants the
attacker.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.walker import attr_chain

RULE_IMPORT = "trust-boundary/import"
RULE_ATTR = "trust-boundary/attr"


class TrustBoundaryPass:
    family = "trust-boundary"
    rules = (RULE_IMPORT, RULE_ATTR)

    def __init__(self, config):
        self.config = config

    def applies(self, module):
        return self.config.is_untrusted(module)

    def run(self, mod):
        private_modules = self.config.enclave_private_modules
        private_attrs = self.config.enclave_private_attrs

        for node in ast.walk(mod.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(mod, node, private_modules)
            elif isinstance(node, ast.Attribute):
                yield from self._check_attr(mod, node, private_attrs)

    def _check_import(self, mod, node, private_modules):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        else:
            if node.level:  # relative import: resolve against the package
                package = mod.module.rsplit(".", node.level)[0]
                base = f"{package}.{node.module}" if node.module else package
            else:
                base = node.module or ""
            names = [base]
        for name in names:
            if any(name == p or name.startswith(p + ".")
                   for p in private_modules):
                yield Finding(
                    path=mod.path,
                    line=node.lineno,
                    rule=RULE_IMPORT,
                    message=(
                        f"untrusted module imports enclave-private "
                        f"{name!r}"
                    ),
                    hint=(
                        "route the interaction through the sanctioned "
                        "driver surface (repro.host.driver), or annotate "
                        "an intentional attacker probe with "
                        "# repro: allow[trust-boundary]"
                    ),
                    module=mod.module,
                )

    def _check_attr(self, mod, node, private_attrs):
        if node.attr not in private_attrs:
            return
        chain = attr_chain(node)
        # ``self.<attr>`` names the module's *own* state, not a reach
        # across the boundary; anything deeper (``self.enclave.backed``)
        # or rooted elsewhere (``tcs.ssa``) is a read of foreign state.
        if len(chain) == 2 and chain[0] in ("self", "cls"):
            return
        yield Finding(
            path=mod.path,
            line=node.lineno,
            rule=RULE_ATTR,
            message=(
                f"untrusted module reads enclave-private state "
                f"'.{node.attr}'"
                + (f" (via {'.'.join(chain[:-1])})" if chain else "")
            ),
            hint=(
                "the OS only sees masked faults and page-granular state "
                "(§5.1.2); go through repro.host.driver, or annotate an "
                "intentional probe with # repro: allow[trust-boundary]"
            ),
            module=mod.module,
        )
