"""Robustness pass: the runtime must not swallow faults wholesale.

The hardened paging runtime's fail-safe story (docs/fault-injection.md)
depends on exceptions keeping their identity: an
:class:`~repro.errors.IntegrityError` must surface as a fail-stop, an
:class:`~repro.errors.EnclaveTerminated` must carry its structured
abort reason to :class:`~repro.core.metrics.AbortStats`.  A broad
``except`` — bare, ``except Exception`` or ``except BaseException`` —
flattens that taxonomy and can silently convert an attack detection
into forward progress, which is exactly the outcome the chaos campaign
exists to rule out.

So this pass flags broad exception handlers anywhere in the ``repro``
package.  Two shapes are deliberately *not* findings:

* a handler that unconditionally re-raises (its last top-level
  statement is a bare ``raise``) — log-and-rethrow masks nothing;
* handlers outside the package (tests, benchmarks, examples routinely
  assert "anything raised here" and are not runtime code).

Intentional catch-alls — a top-level CLI report boundary, say — carry
``# repro: allow[robustness]`` with a justification, keeping the
inventory of broad handlers machine-checked like every other exemption.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding

RULE_BROAD_EXCEPT = "robustness/broad-except"

#: Exception names too wide for runtime code to catch.
BROAD_NAMES = frozenset({"Exception", "BaseException"})


class RobustnessPass:
    family = "robustness"
    rules = (RULE_BROAD_EXCEPT,)

    def __init__(self, config):
        self.config = config

    def applies(self, module):
        return (
            module in self.config.robustness_roots
            or module.startswith(self.config.robustness_prefixes)
        )

    def run(self, mod):
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if self._reraises(node):
                continue
            yield Finding(
                path=mod.path,
                line=node.lineno,
                rule=RULE_BROAD_EXCEPT,
                message=(
                    f"broad exception handler ({broad}) can swallow "
                    "integrity failures and structured aborts"
                ),
                hint=(
                    "catch the narrowest repro.errors type the block "
                    "can actually handle (IntegrityError, PolicyError, "
                    "HostCallDenied, ...), re-raise at the end of the "
                    "handler, or annotate a deliberate report boundary "
                    "with # repro: allow[robustness]"
                ),
                module=mod.module,
            )

    @staticmethod
    def _broad_name(type_node):
        """The offending name if the handler is broad, else ``None``."""
        if type_node is None:
            return "bare except"
        candidates = (
            type_node.elts if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        for candidate in candidates:
            # Accept both ``Exception`` and ``builtins.Exception``.
            if isinstance(candidate, ast.Attribute):
                name = candidate.attr
            elif isinstance(candidate, ast.Name):
                name = candidate.id
            else:
                continue
            if name in BROAD_NAMES:
                return f"except {name}"
        return None

    @staticmethod
    def _reraises(handler):
        """True when the handler ends in an unconditional bare ``raise``."""
        if not handler.body:
            return False
        last = handler.body[-1]
        return isinstance(last, ast.Raise) and last.exc is None
