"""Robustness pass: the runtime must not swallow faults wholesale,
nor respond to them forever.

The hardened paging runtime's fail-safe story (docs/fault-injection.md)
depends on exceptions keeping their identity: an
:class:`~repro.errors.IntegrityError` must surface as a fail-stop, an
:class:`~repro.errors.EnclaveTerminated` must carry its structured
abort reason to :class:`~repro.core.metrics.AbortStats`.  A broad
``except`` — bare, ``except Exception`` or ``except BaseException`` —
flattens that taxonomy and can silently convert an attack detection
into forward progress, which is exactly the outcome the chaos campaign
exists to rule out.

So this pass flags broad exception handlers anywhere in the ``repro``
package.  Two shapes are deliberately *not* findings:

* a handler that unconditionally re-raises (its last top-level
  statement is a bare ``raise``) — log-and-rethrow masks nothing;
* handlers outside the package (tests, benchmarks, examples routinely
  assert "anything raised here" and are not runtime code).

The second rule polices the *response* to failure: a restart/retry
loop with no bound is the other half of fail-safety.  §5.3 prices the
termination channel at one bit per restart — an ``while True`` loop
that keeps relaunching, re-spawning, or re-trying hands a Byzantine
host an unmetered channel (and an availability hole).  Every
restart-shaped loop must therefore be bounded (``for`` over a budget)
or visibly escape (``raise``/``return``/``break`` in its body); the
recovery supervisor itself is held to this rule.

Intentional catch-alls — a top-level CLI report boundary, say — carry
``# repro: allow[robustness]`` with a justification, keeping the
inventory of broad handlers machine-checked like every other exemption.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.findings import Finding

RULE_BROAD_EXCEPT = "robustness/broad-except"
RULE_UNBOUNDED_RESTART = "robustness/unbounded-restart"
RULE_UNBOUNDED_QUEUE = "robustness/unbounded-queue"
RULE_UNGUARDED_FAILOVER = "robustness/unguarded-failover"

#: Exception names too wide for runtime code to catch.
BROAD_NAMES = frozenset({"Exception", "BaseException"})

#: Call names that look like "bring the thing back" — the verbs an
#: unbounded supervision loop would spin on.
RESTART_NAME_RE = re.compile(
    r"(^|_)(restart|relaunch|respawn|spawn|launch|retry|recover|"
    r"restore|reconnect|factory)"
)

#: Methods that grow a list/deque (the accumulation side of the
#: unbounded-queue rule).
QUEUE_GROWERS = frozenset({"append", "appendleft", "extend"})

#: Methods that drain/bound the same container; a loop that consumes
#: what it produces is a queue, not a leak.
QUEUE_CONSUMERS = frozenset({
    "pop", "popleft", "popitem", "remove", "discard", "clear",
})


class RobustnessPass:
    family = "robustness"
    rules = (RULE_BROAD_EXCEPT, RULE_UNBOUNDED_RESTART,
             RULE_UNBOUNDED_QUEUE, RULE_UNGUARDED_FAILOVER)

    def __init__(self, config):
        self.config = config

    def applies(self, module):
        return (
            module in self.config.robustness_roots
            or module.startswith(self.config.robustness_prefixes)
        )

    def run(self, mod):
        yield from self._broad_handlers(mod)
        yield from self._unbounded_restarts(mod)
        if mod.module.startswith(self.config.robustness_queue_prefixes):
            yield from self._unbounded_queues(mod)
        if mod.module.startswith(
                self.config.robustness_failover_prefixes):
            yield from self._unguarded_failovers(mod)

    def _broad_handlers(self, mod):
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if self._reraises(node):
                continue
            yield Finding(
                path=mod.path,
                line=node.lineno,
                rule=RULE_BROAD_EXCEPT,
                message=(
                    f"broad exception handler ({broad}) can swallow "
                    "integrity failures and structured aborts"
                ),
                hint=(
                    "catch the narrowest repro.errors type the block "
                    "can actually handle (IntegrityError, PolicyError, "
                    "HostCallDenied, ...), re-raise at the end of the "
                    "handler, or annotate a deliberate report boundary "
                    "with # repro: allow[robustness]"
                ),
                module=mod.module,
            )

    def _unbounded_restarts(self, mod):
        """Flag ``while True`` loops that spin on a restart-shaped call
        with no visible escape (no ``raise``/``return``/``break`` in
        the loop body)."""
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.While):
                continue
            if not self._is_forever(node.test):
                continue
            verb = self._restart_call(node.body)
            if verb is None:
                continue
            if self._escapes(node.body):
                continue
            yield Finding(
                path=mod.path,
                line=node.lineno,
                rule=RULE_UNBOUNDED_RESTART,
                message=(
                    f"unbounded restart loop: 'while True' around "
                    f"{verb}() with no raise/return/break — restart "
                    "churn is a one-bit-per-restart termination channel "
                    "(§5.3) and must be budgeted"
                ),
                hint=(
                    "bound the loop (for attempt in range(budget)), "
                    "charge backoff between attempts "
                    "(runtime/backoff.py), and escape with a structured "
                    "abort (Quarantined / LockdownError) once the "
                    "budget is spent"
                ),
                module=mod.module,
            )

    def _unbounded_queues(self, mod):
        """Flag list/deque accumulation inside ``while`` loop scopes
        with nothing bounding the container.

        A long-lived service loop that only ever ``append``s turns
        load into unbounded memory — the exact failure mode the
        service's *bounded* run queue (shed with ``QUEUE_FULL``)
        exists to rule out.  Three shapes are not findings:

        * the loop test references the container (``while len(q) < n``
          — the accumulation *is* the bound);
        * the loop scope also consumes from it (``pop``/``popleft``/
          ``clear``/``del``/rebinding — a queue, not a leak);
        * the loop scope escapes via ``raise``/``return``/``break``
          (growth is bounded by the escape condition).
        """
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.While):
                continue
            test_names = self._dotted_names(node.test)
            if self._escapes(node.body):
                continue
            for call in self._walk_scope(node.body):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if not (isinstance(func, ast.Attribute)
                        and func.attr in QUEUE_GROWERS):
                    continue
                recv = self._dotted(func.value)
                if recv is None:
                    continue
                if recv in test_names:
                    continue
                if self._consumed_in(node.body, recv):
                    continue
                yield Finding(
                    path=mod.path,
                    line=call.lineno,
                    rule=RULE_UNBOUNDED_QUEUE,
                    message=(
                        f"unbounded accumulation: {recv}.{func.attr}() "
                        "inside a while loop that never bounds, drains, "
                        "or escapes — a long-lived loop turns offered "
                        "load into unbounded memory"
                    ),
                    hint=(
                        "bound the container (shed with a structured "
                        "reason once full, like the service run queue), "
                        "drain it in the same loop, or cap the loop "
                        "itself; annotate a reviewed exception with "
                        "# repro: allow[robustness]"
                    ),
                    module=mod.module,
                )

    def _unguarded_failovers(self, mod):
        """Flag replica-selection loops with no all-unhealthy guard.

        A ``for`` loop over a pool's replicas that *selects* a target
        (a ``return`` or its own ``break`` in the body) encodes
        failover: walk the replicas, pick the first healthy one.  When
        every replica is down the loop falls through — and a function
        that just falls off the end converts "the whole pool is
        unhealthy" into an implicit ``None`` (or stale state) nobody
        chose to handle.  The fall-through must be owned explicitly:
        a ``return`` or ``raise`` after the loop (or in its ``else``
        block), so the all-down case is a structured shed or abort,
        never an accident.  Loops that merely *visit* replicas
        (teardown sweeps, canonical tuples — no ``return``/``break``)
        are not selections and are not findings.
        """
        for func in ast.walk(mod.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            for loop, iterated in self._selection_loops(func.body):
                yield Finding(
                    path=mod.path,
                    line=loop.lineno,
                    rule=RULE_UNGUARDED_FAILOVER,
                    message=(
                        f"replica-selection loop over {iterated} can "
                        "fall through with every replica unhealthy and "
                        "no explicit outcome — the all-down pool must "
                        "shed or abort structurally, not fall off the "
                        "end"
                    ),
                    hint=(
                        "follow the loop with an explicit 'return "
                        "None' (callers shed with pool-unavailable) or "
                        "raise a structured abort, like "
                        "TenantPool.elect_primary; annotate a reviewed "
                        "exception with # repro: allow[robustness]"
                    ),
                    module=mod.module,
                )

    @classmethod
    def _selection_loops(cls, body):
        """``(loop, iterated-name)`` for every unguarded replica-
        selection ``for`` loop in ``body``'s scope (nested blocks
        included, nested ``def``/``class`` scopes excluded)."""
        for index, stmt in enumerate(body):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.For):
                iterated = cls._replica_iter(stmt.iter)
                if (iterated is not None
                        and cls._selects(stmt.body)
                        and not cls._guarded(stmt, body[index + 1:])):
                    yield stmt, iterated
            for block in cls._stmt_blocks(stmt):
                yield from cls._selection_loops(block)

    @classmethod
    def _replica_iter(cls, iter_expr):
        """The replica-shaped dotted name the loop iterates, if any."""
        for name in sorted(cls._dotted_names(iter_expr)):
            if "replica" in name.lower():
                return name
        return None

    @classmethod
    def _selects(cls, body):
        """Whether the loop body picks a target: a ``return`` in this
        scope or a ``break`` belonging to this loop."""
        if any(isinstance(node, ast.Return)
               for node in cls._walk_scope(body)):
            return True
        return cls._has_own_break(body)

    @classmethod
    def _guarded(cls, loop, tail):
        """Whether the fall-through is owned: a ``return``/``raise``
        in the loop's ``else`` block or anywhere after the loop in the
        same statement list."""
        for node in cls._walk_scope(list(loop.orelse)):
            if isinstance(node, (ast.Return, ast.Raise)):
                return True
        for node in cls._walk_scope(list(tail)):
            if isinstance(node, (ast.Return, ast.Raise)):
                return True
        return False

    @staticmethod
    def _stmt_blocks(stmt):
        """The nested statement lists of one compound statement."""
        blocks = []
        for field in ("body", "orelse", "finalbody"):
            block = getattr(stmt, field, None)
            if block:
                blocks.append(block)
        for handler in getattr(stmt, "handlers", []):
            blocks.append(handler.body)
        return blocks

    @classmethod
    def _consumed_in(cls, body, recv):
        """Whether the loop scope drains, deletes, or rebinds ``recv``."""
        for node in cls._walk_scope(body):
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in QUEUE_CONSUMERS
                        and cls._dotted(func.value) == recv):
                    return True
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) \
                            and cls._dotted(target.value) == recv:
                        return True
                    if cls._dotted(target) == recv:
                        return True
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if cls._dotted(target) == recv:
                        return True
        return False

    @classmethod
    def _dotted_names(cls, expr):
        """Every dotted name mentioned anywhere in ``expr``."""
        names = set()
        for node in ast.walk(expr):
            dotted = cls._dotted(node)
            if dotted is not None:
                names.add(dotted)
        return names

    @staticmethod
    def _dotted(expr):
        """``a.b.c`` display form of a Name/Attribute chain, or None."""
        parts = []
        while isinstance(expr, ast.Attribute):
            parts.append(expr.attr)
            expr = expr.value
        if not isinstance(expr, ast.Name):
            return None
        parts.append(expr.id)
        return ".".join(reversed(parts))

    @staticmethod
    def _is_forever(test):
        return isinstance(test, ast.Constant) and test.value in (True, 1)

    @classmethod
    def _restart_call(cls, body):
        """The first restart-shaped call name in the loop body, if any
        (nested ``def``/``class`` bodies are other scopes)."""
        for node in cls._walk_scope(body):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            else:
                continue
            if RESTART_NAME_RE.search(name):
                return name
        return None

    @classmethod
    def _escapes(cls, body):
        """Whether the loop body can leave the loop: ``raise`` or
        ``return`` anywhere in this scope, or a ``break`` belonging to
        this loop (not to a nested one)."""
        for node in cls._walk_scope(body):
            if isinstance(node, (ast.Raise, ast.Return)):
                return True
        return cls._has_own_break(body)

    @classmethod
    def _has_own_break(cls, body):
        """A ``break`` that belongs to *this* loop: found under
        if/try/with nesting, but not inside a nested loop (that break
        exits the inner loop) or a nested def (another scope)."""
        for stmt in body:
            if isinstance(stmt, ast.Break):
                return True
            if isinstance(stmt, (ast.For, ast.While, ast.AsyncFor,
                                 ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.If, ast.With, ast.AsyncWith,
                                 ast.Try)):
                blocks = list(getattr(stmt, "body", []))
                blocks += getattr(stmt, "orelse", [])
                blocks += getattr(stmt, "finalbody", [])
                for handler in getattr(stmt, "handlers", []):
                    blocks += handler.body
                if cls._has_own_break(blocks):
                    return True
        return False

    @staticmethod
    def _walk_scope(body):
        """Walk statements without descending into nested function or
        class definitions (separate scopes)."""
        stack = list(body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _broad_name(type_node):
        """The offending name if the handler is broad, else ``None``."""
        if type_node is None:
            return "bare except"
        candidates = (
            type_node.elts if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        for candidate in candidates:
            # Accept both ``Exception`` and ``builtins.Exception``.
            if isinstance(candidate, ast.Attribute):
                name = candidate.attr
            elif isinstance(candidate, ast.Name):
                name = candidate.id
            else:
                continue
            if name in BROAD_NAMES:
                return f"except {name}"
        return None

    @staticmethod
    def _reraises(handler):
        """True when the handler ends in an unconditional bare ``raise``."""
        if not handler.body:
            return False
        last = handler.body[-1]
        return isinstance(last, ast.Raise) and last.exc is None
