"""Mutation-discipline pass: only the ISA layer touches EPC/EPCM/TLB.

SGX's integrity story (§2.1) is that EPC contents, EPCM metadata, and
cached translations change only through architecturally defined
instructions — the OS proposes, the hardware checks.  The simulator
mirrors that: :mod:`repro.sgx.instructions` and :mod:`repro.sgx.mmu`
are the mutation entry points (plus the CPU's transition flushes and
the page table's IPI shootdowns, which model hardware behaviour).  Any
other module calling a mutator (``epc.resize``, ``tlb.flush``) or
storing through a component (``instr.tlb = ...``,
``epcm.entry(p).pending = True``) is flagged.

Boot-time wiring is exempt: assignments inside ``__init__`` construct
the machine rather than mutate its running state.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.walker import attr_chain

RULE_CALL = "mutation-discipline/call"
RULE_STORE = "mutation-discipline/store"


class MutationDisciplinePass:
    family = "mutation-discipline"
    rules = (RULE_CALL, RULE_STORE)

    def __init__(self, config):
        self.config = config

    def applies(self, module):
        return module not in self.config.mutation_sanctioned

    def run(self, mod):
        yield from self._visit(mod, mod.tree, in_init=False)

    def _visit(self, mod, node, in_init):
        for child in ast.iter_child_nodes(node):
            child_in_init = in_init
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_in_init = child.name == "__init__"
            elif isinstance(child, ast.Call):
                yield from self._check_call(mod, child)
            elif isinstance(child, (ast.Assign, ast.AugAssign, ast.Delete)):
                if not in_init:
                    yield from self._check_store(mod, child)
            yield from self._visit(mod, child, child_in_init)

    def _check_call(self, mod, node):
        chain = attr_chain(node.func)
        if len(chain) < 2:
            return
        component, method = chain[-2], chain[-1]
        mutators = self.config.mutating_methods.get(component)
        if mutators and method in mutators:
            yield Finding(
                path=mod.path,
                line=node.lineno,
                rule=RULE_CALL,
                message=(
                    f"{component.upper()} state mutated outside the ISA "
                    f"layer: {'.'.join(chain)}()"
                ),
                hint=(
                    "only repro.sgx.instructions / repro.sgx.mmu entry "
                    "points may mutate EPC/EPCM/TLB state (§2.1); go "
                    "through an SGX instruction, or annotate with "
                    "# repro: allow[mutation-discipline]"
                ),
                module=mod.module,
            )

    def _check_store(self, mod, node):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        else:
            targets = node.targets
        for target in targets:
            chain = attr_chain(target)
            # The component must be traversed, not be the bare root:
            # ``self.tlb.hits = 0`` inside the TLB's own module is
            # handled by the sanctioned-module exemption, while
            # ``tlb = Tlb()`` (a local variable) has chain ["tlb"].
            if len(chain) < 2:
                continue
            touched = self.config.mutable_components.intersection(chain)
            if touched:
                component = sorted(touched)[0]
                yield Finding(
                    path=mod.path,
                    line=node.lineno,
                    rule=RULE_STORE,
                    message=(
                        f"store into {component.upper()} state outside "
                        f"the ISA layer: {'.'.join(chain)}"
                    ),
                    hint=(
                        "EPC/EPCM/TLB state changes only through SGX "
                        "instructions; use the repro.sgx.instructions / "
                        "repro.sgx.mmu entry points, or annotate with "
                        "# repro: allow[mutation-discipline]"
                    ),
                    module=mod.module,
                )
