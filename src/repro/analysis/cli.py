"""The ``python -m repro analyze`` subcommand.

Exit status is the gate: 0 when the tree is clean (all remaining
violations carry ``# repro: allow[RULE]`` annotations), 1 when any
unsuppressed finding exists.  ``--strict`` additionally reports stale
annotations that no longer suppress anything, so the allow inventory
cannot rot.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.walker import analyze_paths, analyze_tree


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "Statically check the Autarky reproduction's trust-boundary, "
            "mutation-discipline, determinism, cycle-accounting, "
            "leakage, and lifecycle invariants "
            "(see docs/static-analysis.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: the installed "
             "repro package plus benchmarks/ and examples/)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on stale # repro: allow[...] annotations",
    )
    parser.add_argument(
        "--only", action="append", metavar="FAMILY",
        help="run only the named pass family (repeatable, or "
             "comma-separated); see docs/static-analysis.md for the "
             "family list",
    )
    parser.add_argument(
        "--unused-suppressions", action="store_true",
        help="report only stale # repro: allow[...] annotations "
             "(implies --strict; exit 1 iff any are stale)",
    )
    return parser


def run(argv=None):
    args = build_parser().parse_args(argv)
    strict = args.strict or args.unused_suppressions
    only = None
    if args.only:
        from repro.analysis.passes import rule_families

        only = [family.strip() for spec in args.only
                for family in spec.split(",") if family.strip()]
        unknown = sorted(set(only) - set(rule_families()))
        if unknown:
            families = ", ".join(rule_families())
            for family in unknown:
                print(f"repro analyze: unknown pass family: {family} "
                      f"(choose from {families})", file=sys.stderr)
            return 2
    if args.paths:
        # A typo'd path must not pass the gate vacuously.
        missing = [p for p in args.paths if not Path(p).exists()]
        if missing:
            for p in missing:
                print(f"repro analyze: no such path: {p}",
                      file=sys.stderr)
            return 2
        report = analyze_paths(args.paths, strict=strict, only=only)
    else:
        report = analyze_tree(strict=strict, only=only)
    if args.unused_suppressions:
        # Keep only staleness findings: real violations have their own
        # gate; this mode audits the allow inventory.
        report.findings = [
            f for f in report.findings if f.rule == "suppression/unused"
        ]
    if args.format == "json":
        print(report.render_json())
    elif args.format == "sarif":
        print(report.render_sarif())
    else:
        print(report.render_text())
    return 0 if report.ok() else 1


if __name__ == "__main__":
    raise SystemExit(run())
