"""Static analysis of the reproduction's own source tree.

Autarky's security argument is a *layering invariant*: the untrusted
host observes only page-granular, rate-limited state, while
enclave-private state (true fault addresses, SSA contents, EPCM
metadata) stays behind the ISA.  The simulator mirrors that split
across ``repro.sgx`` / ``repro.host`` / ``repro.attacks`` — but Python
enforces none of it.  This package machine-checks the conventions the
model depends on, in the spirit of Guardian's static validation of
enclave interface orderliness:

* ``trust-boundary``      — host/attack code must not read
  enclave-private state except through the sanctioned driver surface
  (§5.1.2, §5.1.3 of the paper).
* ``mutation-discipline`` — EPC/EPCM/TLB state is mutated only by the
  ISA-model layer (§2.1, §5.1.4).
* ``determinism``         — cycle-accounted code must be
  bit-reproducible: no wall-clock reads, no unseeded randomness, no
  ``PYTHONHASHSEED``-dependent hashing.
* ``cycle-accounting``    — every modeled fault/paging path charges the
  simulated clock before returning (Figures 5–8 depend on it).
* ``leakage``             — secrets (app inputs, ORAM block ids,
  ``# repro: secret`` declarations) must not flow into page addresses,
  container indices in app code, or branches that guard paging — the
  controlled channel itself, tracked interprocedurally over the
  project call graph (``repro.analysis.callgraph``).
* ``lifecycle``           — SGX ISA call sites respect the launch
  (ECREATE→EADD→EINIT→EENTER), evict (EBLOCK→shootdown→EWB), and
  resume (AEX→ERESUME) protocols.

Intentional exceptions carry a ``# repro: allow[RULE]`` annotation so
the analyzer doubles as documentation of the threat model.  Run it with
``python -m repro analyze [--strict] [--format text|json|sarif]``; the
pytest gate (``tests/test_analysis.py``) keeps the tree at zero
unsuppressed findings.
"""

from __future__ import annotations

from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.walker import (
    analyze_paths,
    analyze_source,
    analyze_tree,
)

__all__ = [
    "AnalysisConfig",
    "DEFAULT_CONFIG",
    "Finding",
    "analyze_paths",
    "analyze_source",
    "analyze_tree",
]
