"""Source discovery, suppression parsing, and the analysis driver.

The walker turns files into :class:`ModuleSource` objects (path, dotted
module name, parsed AST, suppression table), runs every registered pass
over them, and filters findings through the per-line
``# repro: allow[RULE]`` annotations.

Suppression syntax
------------------

Either on the offending line::

    self.kernel.epc.resize(n)   # repro: allow[mutation-discipline] why

or as a standalone comment immediately above it::

    # repro: allow[trust-boundary] the attacker probes host state
    pfn = self.enclave.backed[vpn]

Several rules may be listed, comma separated.  A bare family name
(``trust-boundary``) suppresses every rule in the family; a full rule
id (``trust-boundary/attr``) suppresses only that rule.  Stale
annotations that suppress nothing are themselves reported under
``suppression/unused`` in ``--strict`` mode.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.findings import Finding, Report

ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")

#: Directories never scanned inside the package tree.
SKIP_DIRS = {"__pycache__"}


def attr_chain(node):
    """Flatten an attribute/name/call chain into its name segments.

    ``self.epcm.entry(pfn).pending`` → ``["self", "epcm", "entry",
    "pending"]``; returns ``[]`` when the chain roots in something
    unnameable (a literal, a subscript result, …).
    """
    parts = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            break
        else:
            return []
    parts.reverse()
    return parts


class Suppressions:
    """The ``# repro: allow[...]`` table of one source file.

    Annotations are real comment tokens (found via :mod:`tokenize`), so
    the syntax can be *mentioned* in docstrings and string literals —
    the analyzer's own documentation depends on that.
    """

    def __init__(self, source):
        #: code line → (frozenset of allowed rule tokens, comment line)
        self.by_line = {}
        self._used = set()       # comment lines that suppressed something
        self._comment_lines = {}  # comment line → tokens (for staleness)

        lines = source.splitlines()
        allow_comments = {}      # lineno → (rules, standalone?)
        for tok in self._comment_tokens(source):
            match = ALLOW_RE.search(tok.string)
            if not match:
                continue
            rules = frozenset(
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            )
            lineno, col = tok.start
            standalone = lines[lineno - 1][:col].strip() == ""
            allow_comments[lineno] = (rules, standalone)
            self._comment_lines[lineno] = rules

        pending_rules, pending_line = None, None
        for lineno in range(1, len(lines) + 1):
            entry = allow_comments.get(lineno)
            if entry is not None:
                rules, standalone = entry
                if standalone:
                    # Applies to the next code line (consecutive
                    # standalone allows merge).
                    if pending_rules:
                        pending_rules = pending_rules | rules
                    else:
                        pending_rules, pending_line = rules, lineno
                else:
                    self.by_line[lineno] = (rules, lineno)
                continue
            stripped = lines[lineno - 1].strip()
            if not stripped or stripped.startswith("#"):
                continue  # blanks and plain comments keep the pending
            if pending_rules is not None:
                self.by_line[lineno] = (pending_rules, pending_line)
            pending_rules, pending_line = None, None

    @staticmethod
    def _comment_tokens(source):
        try:
            for tok in tokenize.generate_tokens(
                    io.StringIO(source).readline):
                if tok.type == tokenize.COMMENT:
                    yield tok
        except (tokenize.TokenError, IndentationError):
            return

    @staticmethod
    def _matches(tokens, rule):
        family = rule.split("/", 1)[0]
        return rule in tokens or family in tokens

    def suppresses(self, rule, line):
        """True iff ``rule`` at ``line`` is annotated away (marks the
        annotation as used)."""
        entry = self.by_line.get(line)
        if entry is None:
            return False
        tokens, comment_line = entry
        if self._matches(tokens, rule):
            self._used.add(comment_line)
            return True
        return False

    def unused(self):
        """Comment lines whose annotation never suppressed a finding."""
        return sorted(
            line for line in self._comment_lines if line not in self._used
        )

    def unused_entries(self):
        """Like :meth:`unused`, with each line's rule tokens (so the
        driver can skip annotations for families it did not run)."""
        return [
            (line, self._comment_lines[line]) for line in self.unused()
        ]


@dataclass
class ModuleSource:
    """One parsed source file ready for analysis."""

    path: str
    module: str
    source: str
    tree: ast.AST
    suppressions: Suppressions = field(default=None)

    def __post_init__(self):
        if self.suppressions is None:
            self.suppressions = Suppressions(self.source)


#: Directory names that anchor a dotted module name besides ``repro``:
#: the repo's sibling trees the analyzer also covers.
ROOT_COMPONENTS = ("repro", "tests", "benchmarks", "examples")


def module_name_for(path):
    """Derive the dotted module name from a file path.

    Looks for the last ``repro`` component (or a ``tests``/
    ``benchmarks``/``examples`` root) so it works for the installed
    tree, ``src/`` checkouts, sibling trees, and synthetic test trees
    alike; falls back to the file stem.
    """
    parts = list(Path(path).with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for root in ROOT_COMPONENTS:  # "repro" wins over an enclosing root
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == root:
                return ".".join(parts[i:])
    return parts[-1] if parts else str(path)


def load_module(path, module=None):
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return ModuleSource(
        path=str(path),
        module=module or module_name_for(path),
        source=source,
        tree=ast.parse(source, filename=str(path)),
    )


def iter_source_files(root):
    root = Path(root)
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if SKIP_DIRS.intersection(path.parts):
            continue
        yield path


def default_root():
    """The installed ``repro`` package directory."""
    import repro
    return Path(repro.__file__).parent


def default_roots():
    """Default analysis scope: the package plus, when running from a
    checkout (``src/repro`` layout with a ``pyproject.toml`` two levels
    up), the ``benchmarks/`` and ``examples/`` trees."""
    package = default_root()
    roots = [package]
    repo = package.parent.parent
    if (repo / "pyproject.toml").is_file():
        for extra in ("benchmarks", "examples"):
            tree = repo / extra
            if tree.is_dir():
                roots.append(tree)
    return roots


def run_passes(modules, config=None, strict=False, only=None):
    """Run the registered passes over ``modules``; returns a Report.

    The interprocedural :class:`~repro.analysis.callgraph.Project` is
    built exactly once here and shared by every pass via ``prepare``;
    its build time, resolution-cache statistics, and per-pass-family
    wall time land in the report (``--format json``) so regressions in
    graph construction or any one pass are visible in CI.  ``only``
    restricts the run to the named pass families; stale-annotation
    findings (``--strict``) then cover only annotations mentioning
    those families, so a narrowed run cannot misreport suppressions
    owned by passes it never executed.
    """
    import time

    from repro.analysis.callgraph import Project
    from repro.analysis.passes import build_passes

    config = config or DEFAULT_CONFIG
    passes = build_passes(config, only=only)
    # Timing tool output, never a simulated result: the analyzer runs
    # on the host, outside the deterministic simulation.
    started = time.perf_counter()  # repro: allow[determinism/time]
    project = Project(modules)
    build_seconds = time.perf_counter() - started  # repro: allow[determinism/time]
    pass_seconds = {pass_.family: 0.0 for pass_ in passes}
    for pass_ in passes:
        prepare = getattr(pass_, "prepare", None)
        if prepare is not None:
            started = time.perf_counter()  # repro: allow[determinism/time]
            prepare(project)
            pass_seconds[pass_.family] += \
                time.perf_counter() - started  # repro: allow[determinism/time]
    report = Report()
    report.callgraph = {
        "build_seconds": round(build_seconds, 6),
        "modules": len(project.modules),
        "functions": len(project.functions),
    }
    ran_families = frozenset(pass_seconds)
    for mod in modules:
        report.checked_files += 1
        for pass_ in passes:
            if not pass_.applies(mod.module):
                continue
            started = time.perf_counter()  # repro: allow[determinism/time]
            for finding in pass_.run(mod):
                if mod.suppressions.suppresses(finding.rule, finding.line):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)
            pass_seconds[pass_.family] += \
                time.perf_counter() - started  # repro: allow[determinism/time]
        if strict:
            for line, tokens in mod.suppressions.unused_entries():
                if only is not None and not any(
                        token.split("/", 1)[0] in ran_families
                        for token in tokens):
                    continue
                report.findings.append(Finding(
                    path=mod.path,
                    line=line,
                    rule="suppression/unused",
                    message="allow annotation suppresses nothing",
                    hint="delete the stale # repro: allow[...] comment",
                    module=mod.module,
                ))
    report.findings.sort(key=Finding.sort_key)
    report.callgraph["resolve_cache_hits"] = project.cache_hits
    report.callgraph["resolve_cache_misses"] = project.cache_misses
    report.callgraph["pass_seconds"] = {
        family: round(seconds, 6)
        for family, seconds in sorted(pass_seconds.items())
    }
    return report


def analyze_paths(paths, config=None, strict=False, only=None):
    """Analyze explicit files/directories; returns a Report."""
    modules = []
    for path in paths:
        for file_path in iter_source_files(path):
            modules.append(load_module(file_path))
    return run_passes(modules, config=config, strict=strict, only=only)


def analyze_tree(root=None, config=None, strict=False, only=None):
    """Analyze the default scope (package + benchmarks/ + examples/
    when present); an explicit ``root`` narrows to that tree."""
    roots = [root] if root is not None else default_roots()
    return analyze_paths(roots, config=config, strict=strict, only=only)


def analyze_source(source, module, path="<memory>", config=None,
                   strict=False, only=None):
    """Analyze one in-memory snippet (the unit-test entry point)."""
    mod = ModuleSource(
        path=path,
        module=module,
        source=source,
        tree=ast.parse(source, filename=path),
    )
    return run_passes([mod], config=config, strict=strict, only=only)
