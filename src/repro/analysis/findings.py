"""Structured findings and their rendering.

A :class:`Finding` pins one rule violation to a file and line, with a
fix hint so the annotation/refactor decision is quick.  Rendering lives
here too (text for humans and CI logs, JSON for tooling) so every
consumer — CLI, pytest gate, CI — prints findings identically.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str            # file path as scanned (relative when possible)
    line: int            # 1-based line of the offending node
    rule: str            # e.g. "trust-boundary/attr"
    message: str         # what is wrong, concretely
    hint: str = ""       # how to fix or annotate it
    module: str = ""     # dotted module name ("repro.host.kernel")

    @property
    def family(self):
        """The rule family ("trust-boundary" for "trust-boundary/attr")."""
        return self.rule.split("/", 1)[0]

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self):
        return asdict(self)

    def render(self):
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class Report:
    """The outcome of one analyzer run over a set of modules."""

    findings: list = field(default_factory=list)
    suppressed: int = 0
    checked_files: int = 0
    #: Call-graph build metadata from the driver (build time, module/
    #: function counts, resolution-cache statistics); shown in the JSON
    #: rendering so CI can track graph-construction regressions.
    callgraph: dict = field(default_factory=dict)

    def ok(self):
        return not self.findings

    def sorted_findings(self):
        return sorted(self.findings, key=Finding.sort_key)

    def render_text(self):
        lines = [f.render() for f in self.sorted_findings()]
        lines.append(
            f"{len(self.findings)} finding(s), "
            f"{self.suppressed} suppressed, "
            f"{self.checked_files} file(s) checked"
        )
        return "\n".join(lines)

    def render_json(self):
        payload = {
            "findings": [f.to_dict() for f in self.sorted_findings()],
            "suppressed": self.suppressed,
            "checked_files": self.checked_files,
        }
        if self.callgraph:
            payload["callgraph"] = self.callgraph
        return json.dumps(payload, indent=2)

    def render_sarif(self):
        """SARIF 2.1.0, the GitHub code-scanning ingestion format.

        One run, one driver; every rule the analyzer can emit is listed
        in the driver's rule table so code scanning can show the
        invariant even for rules with no findings in this run.
        """
        from repro.analysis.passes import RULE_CATALOG

        rule_ids = sorted(RULE_CATALOG)
        rule_index = {rule: i for i, rule in enumerate(rule_ids)}
        results = []
        for f in self.sorted_findings():
            message = f.message
            if f.hint:
                message += f" ({f.hint})"
            results.append({
                "ruleId": f.rule,
                "ruleIndex": rule_index.get(f.rule, -1),
                "level": "error",
                "message": {"text": message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                        },
                        "region": {"startLine": f.line},
                    },
                }],
            })
        return json.dumps(
            {
                "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                            "sarif-spec/master/Schemata/sarif-schema-"
                            "2.1.0.json"),
                "version": "2.1.0",
                "runs": [{
                    "tool": {
                        "driver": {
                            "name": "repro-analyze",
                            "rules": [
                                {
                                    "id": rule,
                                    "shortDescription": {
                                        "text": RULE_CATALOG[rule],
                                    },
                                }
                                for rule in rule_ids
                            ],
                        },
                    },
                    "results": results,
                }],
            },
            indent=2,
        )
