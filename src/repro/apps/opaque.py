"""Opaque-style oblivious analytics (§1's motivating application).

"The Opaque data analytics platform requires an oblivious scratchpad
memory, that SGX currently cannot provide."  With Autarky it can: the
scratchpad lives behind the cached ORAM (or on pinned enclave-managed
pages), and the operators below are written in the oblivious style —
their *access sequence* is a fixed function of the input size, never of
the data:

* :meth:`ObliviousDataset.oblivious_filter` — full scan with a
  fixed-size padded output (a dummy write happens whether or not the
  row matches);
* :meth:`ObliviousDataset.oblivious_sort` — a bitonic sorting network:
  the compare-exchange sequence depends only on N;
* :meth:`ObliviousDataset.oblivious_aggregate` — scan + accumulator.

The tests verify the headline property directly: two datasets of the
same size produce byte-identical access traces through any engine.
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.sgx.params import PAGE_SIZE


def next_power_of_two(n):
    return 1 if n <= 1 else 1 << (n - 1).bit_length()


class ObliviousDataset:
    """A table of numeric rows on an oblivious scratchpad.

    Rows are fixed-size records, ``rows_per_page`` to a page; the
    engine is charged one data access per row touch plus per-row
    compute, so the cost model follows the operator's network shape.
    """

    #: Compare-exchange / predicate-evaluation work per row touch.
    ROW_COMPUTE = 350
    #: Bytes per record (key + payload), fixed for obliviousness.
    ROW_SIZE = 128

    def __init__(self, engine, region_start, rows, output_start=None):
        if not rows:
            raise PolicyError("dataset needs at least one row")
        self.engine = engine
        self.region_start = region_start
        self.rows_per_page = PAGE_SIZE // self.ROW_SIZE
        #: Padded to a power of two so the bitonic network is total.
        self.capacity = next_power_of_two(len(rows))
        pad = self.capacity - len(rows)
        #: Padding rows carry +inf keys so they sort to the end and
        #: match no filter.
        self._rows = list(rows) + [float("inf")] * pad
        self.n_rows = len(rows)
        self.output_start = (
            output_start if output_start is not None
            else region_start + self.total_pages * PAGE_SIZE
        )

    @property
    def total_pages(self):
        return -(-self.capacity // self.rows_per_page)

    def row_page(self, index):
        return self.region_start + \
            (index // self.rows_per_page) * PAGE_SIZE

    def output_page(self, index):
        return self.output_start + \
            (index // self.rows_per_page) * PAGE_SIZE

    # -- operators ----------------------------------------------------------

    def oblivious_sort(self):
        """Bitonic sort: the exchange network is a pure function of
        capacity — identical traces for any data."""
        n = self.capacity
        k = 2
        while k <= n:
            j = k // 2
            while j >= 1:
                for i in range(n):
                    partner = i ^ j
                    if partner > i:
                        self._compare_exchange(
                            i, partner, ascending=(i & k) == 0
                        )
                j //= 2
            k *= 2
        return [r for r in self._rows if r != float("inf")]

    def oblivious_filter(self, predicate):
        """Padded filter: every row is read, and an output slot is
        written for every row (real match or dummy), so the output
        trace reveals only N."""
        matches = []
        for i in range(self.capacity):
            self.engine.data_access(self.row_page(i))
            self.engine.compute(self.ROW_COMPUTE)
            row = self._rows[i]
            matched = row != float("inf") and predicate(row)
            if matched:
                matches.append(row)
            # Dummy or real — the write happens either way.
            self.engine.data_access(self.output_page(i), write=True)
        return matches

    def oblivious_aggregate(self, fold, initial=0):
        """Scan-with-accumulator; the accumulator page is touched per
        row regardless of contribution."""
        accumulator_page = self.output_start
        value = initial
        for i in range(self.capacity):
            self.engine.data_access(self.row_page(i))
            self.engine.data_access(accumulator_page, write=True)
            self.engine.compute(self.ROW_COMPUTE)
            row = self._rows[i]
            if row != float("inf"):
                value = fold(value, row)
        return value

    # -- internals ----------------------------------------------------------

    def _compare_exchange(self, i, j, ascending):
        self.engine.data_access(self.row_page(i))
        self.engine.data_access(self.row_page(j))
        self.engine.compute(self.ROW_COMPUTE)
        a, b = self._rows[i], self._rows[j]
        swap = (a > b) if ascending else (a < b)
        # The write-back happens on both slots whether or not the
        # values move (CMOV-style), keeping the store trace fixed.
        if swap:
            self._rows[i], self._rows[j] = b, a
        self.engine.data_access(self.row_page(i), write=True)
        self.engine.data_access(self.row_page(j), write=True)
