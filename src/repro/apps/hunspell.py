"""Hunspell model (§7.3): spell checking over hashed dictionaries.

Hunspell keeps each dictionary in a chained hash table.  The published
attack profiled the page-access sequence of inserting each word during
dictionary load, then matched the sequences observed at query time —
recovering the words being spell-checked (assuming correct spelling).

Defenses evaluated by the paper:

* the en_US working set fits EPC → pin everything (no leak, no cost);
* a 15-dictionary spelling server exceeds EPC → one cluster per
  dictionary: accesses within a dictionary are hidden, only *which
  language* is in use leaks.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.runtime.rate_limit import ProgressKind
from repro.sgx.params import PAGE_SIZE


def stable_hash(word):
    """Deterministic string hash (Python's ``hash`` is salted)."""
    return zlib.crc32(word.encode("utf-8"))


@dataclass
class Dictionary:
    """One language dictionary's layout inside the enclave heap."""

    name: str
    start: int            # first page of this dictionary's arena
    n_words: int
    entry_size: int = 48  # word + affix flags + chain pointer

    def __post_init__(self):
        self.entries_per_page = PAGE_SIZE // self.entry_size
        # Chains average ~4 entries, as with Hunspell's default table.
        self.nbuckets = max(1, self.n_words // 4)
        self.entry_pages = -(-self.n_words // self.entries_per_page)
        bucket_bytes = self.nbuckets * 8
        self.bucket_pages = -(-bucket_bytes // PAGE_SIZE)

    @property
    def total_pages(self):
        return self.entry_pages + self.bucket_pages

    def pages(self):
        return [
            self.start + i * PAGE_SIZE for i in range(self.total_pages)
        ]

    def word_index(self, word):
        """Deterministic word → entry-slot mapping (stands in for the
        insertion order of the real dictionary file)."""
        return stable_hash(word) % self.n_words

    def bucket_page(self, word):
        index = self.word_index(word)
        bucket = index % self.nbuckets
        offset = self.entry_pages * PAGE_SIZE + (bucket * 8 // PAGE_SIZE) \
            * PAGE_SIZE
        return self.start + offset

    def chain_pages(self, word):
        """Entry pages visited walking to the word — its signature."""
        index = self.word_index(word)
        bucket = index % self.nbuckets
        position = index // self.nbuckets
        pages = []
        for k in range(position + 1):
            entry = bucket + k * self.nbuckets
            if entry >= self.n_words:
                break
            pages.append(
                self.start + (entry // self.entries_per_page) * PAGE_SIZE
            )
        return pages

    def signature(self, word):
        """Full page-access signature of checking ``word``."""
        return tuple([self.bucket_page(word)] + self.chain_pages(word))


class Hunspell:
    """The spell checker: one or more dictionaries plus query logic."""

    #: Hashing and affix analysis per checked word.
    WORD_COMPUTE = 4_000
    #: Per-entry-insert work during dictionary load.
    LOAD_COMPUTE = 400

    def __init__(self, engine, dictionaries, code_page=None):
        if not dictionaries:
            raise ValueError("need at least one dictionary")
        self.engine = engine
        self.dictionaries = {d.name: d for d in dictionaries}
        #: Page holding the hash/lookup code, executed at the start of
        #: every check.  The published attack uses exactly this page as
        #: its per-query trigger to re-arm the fault channel.
        self.code_page = code_page
        self.checked = 0

    def load(self, name, words_per_progress=512):
        """Populate a dictionary (touches every entry page in hash
        order — the faulting phase that dominates Table 2's overhead)."""
        d = self.dictionaries[name]
        for i in range(d.n_words):
            if i % words_per_progress == 0:
                self.engine.progress(ProgressKind.ALLOCATION)
            bucket = i % d.nbuckets
            page = d.start + ((bucket * 8 // PAGE_SIZE) * PAGE_SIZE) \
                + d.entry_pages * PAGE_SIZE
            self.engine.data_access(page, write=True)
            self.engine.data_access(
                d.start + (i // d.entries_per_page) * PAGE_SIZE,
                write=True,
            )
            self.engine.compute(self.LOAD_COMPUTE)

    def check(self, word, dict_name):
        """Spell-check one word: bucket probe plus chain walk."""
        d = self.dictionaries[dict_name]
        self.checked += 1
        if self.code_page is not None:
            self.engine.code_access(self.code_page)
        # repro: allow[leakage] deliberate victim (Table 2): the word
        # hashes to the bucket page the OS observes
        self.engine.data_access(d.bucket_page(word))
        for page in d.chain_pages(word):
            # repro: allow[leakage] word-dependent chain walk
            self.engine.data_access(page)
        self.engine.compute(self.WORD_COMPUTE)
        return True

    def check_text(self, words, dict_name):
        """Spell-check a text, one progress event per word (I/O bound)."""
        for word in words:
            self.engine.progress(ProgressKind.IO)
            self.check(word, dict_name)
