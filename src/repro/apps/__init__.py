"""Application models for the paper's evaluation workloads.

Each app reproduces the *page-access structure* of the real program —
the property the controlled channel attacks and the defenses act on —
as a deterministic stream of page-granular accesses driven through an
access engine (:class:`repro.core.system.DirectEngine` or
:class:`~repro.core.system.OramEngine`).  Secrets (words, glyphs,
image content, keys) are first-class so attack experiments can measure
recovery accuracy against ground truth.
"""

from repro.apps.uthash import UthashTable
from repro.apps.memcached import Memcached
from repro.apps.jpeg import JpegCodec, make_block_image
from repro.apps.hunspell import Hunspell, Dictionary
from repro.apps.freetype import FreeType
from repro.apps.opaque import ObliviousDataset
from repro.apps.ml_inference import DecisionForest

__all__ = [
    "UthashTable",
    "Memcached",
    "JpegCodec",
    "make_block_image",
    "Hunspell",
    "Dictionary",
    "FreeType",
    "ObliviousDataset",
    "DecisionForest",
]
