"""uthash model: a chained hash table over enclave heap pages (§7.2).

uthash resolves collisions with per-bucket chains of items.  The layout
matters for the attack and the defense alike:

* items live wherever the allocator put them at insertion time, so a
  chain walk touches a *sequence of pages* that uniquely fingerprints
  the bucket (the Hunspell-attack structure);
* rehashing doubles the bucket count, halving chains — which is why
  §7.2 measures before and after rehash (about 1.5× better after).

The paper's configuration: 431 MB of data, 256-byte items, up to 10
items per bucket.  Item placement is computed arithmetically (item
``i`` sits at page ``i // items_per_page``), so the model scales to
millions of items without materializing them.
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.sgx.params import PAGE_SIZE


class UthashTable:
    """Chained hash table with arithmetic item/bucket placement.

    ``engine`` is any access engine; ``heap_start`` is where the item
    arena begins; the bucket-head array sits immediately after the item
    pages.  Item ``i`` hashes to bucket ``i % nbuckets`` at chain
    position ``i // nbuckets`` — the uniform layout the paper's uniform
    random workload assumes.
    """

    #: cycles of hashing + pointer chasing per chain node visited.
    NODE_COMPUTE = 120

    def __init__(self, engine, heap_start, data_bytes, item_size=256,
                 max_chain=10):
        if item_size > PAGE_SIZE:
            raise PolicyError("items larger than a page are unsupported")
        self.engine = engine
        self.heap_start = heap_start
        self.item_size = item_size
        self.n_items = data_bytes // item_size
        self.items_per_page = PAGE_SIZE // item_size
        self.max_chain = max_chain
        #: Enough buckets that chains stay at/below ``max_chain``.
        self.nbuckets = max(1, -(-self.n_items // max_chain))

        self.item_pages = -(-self.n_items // self.items_per_page)
        self.bucket_array_start = (
            heap_start + self.item_pages * PAGE_SIZE
        )
        self.lookups = 0
        #: item → (page trace, walk cycles) of its lookup.  The
        #: arithmetic layout is static between rehashes, so the trace
        #: can be computed once per item (cleared by :meth:`rehash`).
        self._trace_cache = {}

    @property
    def bucket_pages(self):
        """Bucket-array pages at the *current* bucket count (grows on
        rehash, in place in this arithmetic layout)."""
        return -(-self.nbuckets * 8 // PAGE_SIZE)

    @property
    def total_pages(self):
        return self.item_pages + self.bucket_pages

    def total_pages_after_rehash(self, factor=2):
        """Footprint including the expanded bucket array, so callers
        can size allocations/clusters before triggering the rehash."""
        return self.item_pages + (
            -(-self.nbuckets * factor * 8 // PAGE_SIZE)
        )

    # -- layout ----------------------------------------------------------

    def item_page(self, item):
        return self.heap_start + (item // self.items_per_page) * PAGE_SIZE

    def bucket_of(self, item):
        return item % self.nbuckets

    def chain_position(self, item):
        return item // self.nbuckets

    def bucket_page(self, bucket):
        return self.bucket_array_start + (bucket * 8 // PAGE_SIZE) * PAGE_SIZE

    def chain_items(self, bucket, upto):
        """Items visited walking bucket's chain to position ``upto``."""
        return [bucket + k * self.nbuckets for k in range(upto + 1)]

    # -- operations ----------------------------------------------------------

    # repro: hot
    def lookup(self, item):
        """GET: walk the chain to the item, touching each node's page.

        The chain's page list is planned once per item with the
        engine's :meth:`make_run` and replayed as one batch; per-node
        compute is charged in bulk (cycle totals are order-independent,
        and the access order — bucket page, then chain pages in
        position order — is unchanged).
        """
        self.lookups += 1
        trace = self._trace_cache.get(item)
        if trace is None:
            if not 0 <= item < self.n_items:
                raise KeyError(item)
            bucket = item % self.nbuckets
            base = self.heap_start
            per_page = self.items_per_page
            nbuckets = self.nbuckets
            # Bucket page first, then the chain pages in position
            # order — the same trace the per-access loop produced.
            pages = [self.bucket_page(bucket)]
            pages += [
                base + ((bucket + k * nbuckets) // per_page) * PAGE_SIZE
                for k in range(item // nbuckets + 1)
            ]
            # repro: allow[leakage] deliberate victim (Table 2): the
            # item hashes to the bucket page and item-dependent chain
            # pages the OS observes
            run = self.engine.make_run(pages)
            trace = (run, self.NODE_COMPUTE * (len(pages) - 1))
            # repro: allow[leakage] in-enclave memo keyed by the item;
            # the OS-visible trace is the page run above
            self._trace_cache[item] = trace
        self.engine.replay(trace)
        return item

    def insert(self, item):
        """PUT: walk to the chain end, then write the item's page."""
        self.lookups += 1
        # repro: allow[leakage] item-dependent bucket-page write
        self.engine.data_access(
            self.bucket_page(self.bucket_of(item)), write=True
        )
        pos = self.chain_position(item)
        for node in self.chain_items(self.bucket_of(item), pos)[:-1]:
            # repro: allow[leakage] item-dependent chain walk
            self.engine.data_access(self.item_page(node))
            self.engine.compute(self.NODE_COMPUTE)
        # repro: allow[leakage] item-dependent insertion write
        self.engine.data_access(self.item_page(item), write=True)

    def rehash(self, factor=2):
        """Bucket expansion: chains shrink by ``factor``.

        We model the post-rehash state (new bucket count and chain
        positions) without charging the one-time rehash pass — the §7.2
        experiment measures steady-state lookups before and after."""
        self.nbuckets *= factor
        self._trace_cache.clear()

    def access_signature(self, item):
        """The page trace a lookup of ``item`` produces — what the
        attacker's profiling phase computes from the public binary."""
        pages = [self.bucket_page(self.bucket_of(item))]
        pos = self.chain_position(item)
        pages.extend(
            self.item_page(node)
            for node in self.chain_items(self.bucket_of(item), pos)
        )
        return tuple(pages)
