"""Decision-forest inference: the paper's "machine learning task".

§5.2.4 gives ML inference as a rate-limited paging client ("a machine
learning task may express its limit in faults per memory allocation").
It is also a canonical controlled-channel victim: tree traversal takes
a root-to-leaf path determined by the (secret) input features, and
when nodes spread across pages, the page trace spells the path out —
recovering the model's decision and with it a bundle of input
predicates.

The model here is a real classifier: deterministic pseudo-random
trees, genuine threshold comparisons, majority vote.  Node *layout* is
the attack surface: breadth-first across pages, so deeper levels fan
out over more pages and leak more.
"""

from __future__ import annotations

import zlib

from repro.errors import PolicyError
from repro.runtime.rate_limit import ProgressKind
from repro.sgx.params import PAGE_SIZE


def _node_hash(tree, node, salt):
    return zlib.crc32(f"{salt}:{tree}:{node}".encode())


class DecisionForest:
    """A random-forest classifier over an enclave memory region."""

    #: Bytes per node record (feature idx, threshold, child pointers).
    NODE_SIZE = 32
    #: Comparison + pointer chase per node visited.
    NODE_COMPUTE = 180

    def __init__(self, engine, region_start, n_trees=8, depth=10,
                 n_features=16, n_classes=4, seed=77):
        if depth < 1 or n_trees < 1:
            raise PolicyError("need at least one tree of depth ≥ 1")
        self.engine = engine
        self.region_start = region_start
        self.n_trees = n_trees
        self.depth = depth
        self.n_features = n_features
        self.n_classes = n_classes
        self.seed = seed
        self.nodes_per_tree = (1 << (depth + 1)) - 1
        self.nodes_per_page = PAGE_SIZE // self.NODE_SIZE
        self.tree_pages = -(-self.nodes_per_tree // self.nodes_per_page)
        self.classifications = 0

    @property
    def total_pages(self):
        return self.n_trees * self.tree_pages

    def pages(self):
        return [
            self.region_start + i * PAGE_SIZE
            for i in range(self.total_pages)
        ]

    def node_page(self, tree, node):
        page_index = tree * self.tree_pages + node // self.nodes_per_page
        return self.region_start + page_index * PAGE_SIZE

    # -- the model itself ---------------------------------------------------

    def _node_params(self, tree, node):
        h = _node_hash(tree, node, self.seed)
        feature = h % self.n_features
        threshold = ((h >> 8) % 1_000) / 1_000.0
        return feature, threshold

    def _leaf_class(self, tree, leaf):
        return _node_hash(tree, leaf, self.seed ^ 0xC1A55) \
            % self.n_classes

    def _walk(self, tree, features, touch):
        node = 0
        for _level in range(self.depth):
            if touch:
                # repro: allow[leakage] deliberate victim (Table 2):
                # the decision path selects the node pages
                self.engine.data_access(self.node_page(tree, node))
                self.engine.compute(self.NODE_COMPUTE)
            feature, threshold = self._node_params(tree, node)
            # repro: allow[leakage] feature-indexed comparison picks
            # the child, and with it the next page
            node = 2 * node + (1 if features[feature] < threshold
                               else 2)
        if touch:
            # repro: allow[leakage] input-dependent leaf page
            self.engine.data_access(self.node_page(tree, node))
        return node

    def classify(self, features):
        """Majority vote over all trees (the real computation)."""
        if len(features) != self.n_features:
            raise PolicyError(
                f"expected {self.n_features} features, "
                f"got {len(features)}"
            )
        self.classifications += 1
        votes = [0] * self.n_classes
        for tree in range(self.n_trees):
            leaf = self._walk(tree, features, touch=True)
            # repro: allow[leakage] leaf class indexes the vote array
            votes[self._leaf_class(tree, leaf)] += 1
        self.engine.progress(ProgressKind.ALLOCATION)
        return max(range(self.n_classes), key=votes.__getitem__)

    # -- the attacker's profiling oracle --------------------------------------

    def path_signature(self, features):
        """The page trace classifying ``features`` produces — computed
        offline from the public model, exactly what an attacker
        profiles."""
        pages = []
        for tree in range(self.n_trees):
            node = 0
            for _level in range(self.depth):
                pages.append(self.node_page(tree, node))
                feature, threshold = self._node_params(tree, node)
                # repro: allow[leakage] the oracle replays _walk()'s
                # input-dependent descent by construction
                node = 2 * node + (1 if features[feature] < threshold
                                   else 2)
            pages.append(self.node_page(tree, node))
        return tuple(pages)

    def leaves_for(self, features):
        """Ground-truth leaf per tree (what recovery aims at)."""
        return tuple(
            self._walk(tree, features, touch=False)
            for tree in range(self.n_trees)
        )
