"""FreeType model (§7.3): glyph rendering with per-glyph control flow.

Rendering a character walks a glyph-specific path through the
rasterizer: different outline shapes exercise different code pages
(curve vs. line segments, hinting paths, fill rules).  Xu et al.
recovered rendered text purely from the sequence of *instruction
fetches*.

Autarky's mitigation is structural: pin the library's code (it is small
— §7.3 reports no measurable overhead), or cluster all of its code
pages so the per-glyph fetch pattern collapses into one indistinct
cluster fetch.
"""

from __future__ import annotations

import random

from repro.runtime.rate_limit import ProgressKind
from repro.sgx.params import PAGE_SIZE


class FreeType:
    """Font renderer with deterministic per-glyph code signatures."""

    #: Outline decomposition + rasterization per glyph.
    GLYPH_COMPUTE = 22_000
    #: Code pages every glyph executes (entry, cmap lookup).
    COMMON_PAGES = 2
    #: Glyph-specific pages per signature.
    SIGNATURE_LEN = 4

    def __init__(self, engine, lib, bitmap_start, glyphs=None, seed=42):
        self.engine = engine
        self.lib = lib
        self.bitmap_start = bitmap_start
        self.glyphs = glyphs or [chr(c) for c in range(32, 127)]
        self.rendered = 0
        self._signatures = self._build_signatures(seed)

    def _build_signatures(self, seed):
        """Assign each glyph a distinct sequence of code pages, as the
        rasterizer's shape-dependent control flow does."""
        rng = random.Random(seed)
        npages = self.lib.image.code_pages
        if npages < self.COMMON_PAGES + self.SIGNATURE_LEN:
            raise ValueError(
                "library too small for distinct glyph signatures"
            )
        signatures = {}
        seen = set()
        for glyph in self.glyphs:
            while True:
                pages = tuple(rng.sample(
                    range(self.COMMON_PAGES, npages), self.SIGNATURE_LEN
                ))
                if pages not in seen:
                    seen.add(pages)
                    signatures[glyph] = pages
                    break
        return signatures

    def signature(self, glyph):
        """Code-page signature (absolute addresses) for the oracle."""
        common = tuple(
            self.lib.code_page(i) for i in range(self.COMMON_PAGES)
        )
        specific = tuple(
            # repro: allow[leakage] the oracle mirrors render()'s
            # glyph-dependent page set by construction
            self.lib.code_page(i) for i in self._signatures[glyph]
        )
        return common + specific

    def render(self, glyph):
        """Render one glyph: common pages, glyph path, bitmap write."""
        if glyph not in self._signatures:
            raise KeyError(f"no glyph {glyph!r}")
        for i in range(self.COMMON_PAGES):
            self.engine.code_access(self.lib.code_page(i))
        # repro: allow[leakage] deliberate victim (Table 2): the glyph
        # selects which rasterizer code pages fault in
        for i in self._signatures[glyph]:
            self.engine.code_access(self.lib.code_page(i))
        slot = ord(glyph) % 8
        # repro: allow[leakage] glyph-dependent bitmap slot write
        self.engine.data_access(
            self.bitmap_start + slot * PAGE_SIZE, write=True
        )
        self.engine.compute(self.GLYPH_COMPUTE)
        self.rendered += 1

    def render_text(self, text):
        for glyph in text:
            self.engine.progress(ProgressKind.IO)
            self.render(glyph)
