"""libjpeg model (§7.3): streaming block decode with a secret-dependent
code path.

The published attack targets the inverse DCT: libjpeg elides needless
state updates for mostly-zero (smooth) blocks, so *which IDCT code
page executes* — and how many temp-buffer updates follow — depends on
the image content.  Counting page faults per block reconstructs the
image.

The model streams over MCU blocks exactly like the decoder: sequential
input pages, a small cyclic temp buffer, sequential output pages, and
per-block code fetches where the IDCT page is chosen by the block's
(secret) complexity bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sgx.params import PAGE_SIZE


@dataclass
class BlockImage:
    """A JPEG image as its per-block complexity bitmap (the secret)."""

    width_blocks: int
    height_blocks: int
    complexity: list  # one bool per block, row-major

    @property
    def n_blocks(self):
        return self.width_blocks * self.height_blocks

    def decoded_bytes(self, bytes_per_block):
        return self.n_blocks * bytes_per_block


def make_block_image(width_blocks, height_blocks, pattern="noise",
                     seed=7, density=0.5):
    """Synthesize an image's complexity bitmap.

    ``noise`` scatters complex blocks at the given density; ``disc``
    places a filled circle of complex blocks on a smooth background —
    the silhouette shape the published attack recovers.
    """
    n = width_blocks * height_blocks
    if pattern == "noise":
        rng = random.Random(seed)
        bits = [rng.random() < density for _ in range(n)]
    elif pattern == "disc":
        cx, cy = width_blocks / 2, height_blocks / 2
        r = min(width_blocks, height_blocks) / 3
        bits = [
            ((x - cx) ** 2 + (y - cy) ** 2) <= r * r
            for y in range(height_blocks) for x in range(width_blocks)
        ]
    else:
        raise ValueError(f"unknown pattern {pattern!r}")
    return BlockImage(width_blocks, height_blocks, bits)


class JpegCodec:
    """Streaming decoder/encoder over enclave memory.

    ``lib`` is a :class:`~repro.runtime.loader.LoadedLibrary` whose code
    pages include (by convention) page 0 = entry/huffman, page 1 = the
    full IDCT, page 2 = the shortcut IDCT — the two leaky pages.
    """

    #: Decoded bytes per 8×8 block (one grayscale component here).
    BYTES_PER_BLOCK = 256
    #: Huffman + dequant + colorspace work per block.
    BLOCK_COMPUTE = 12_000
    #: Extra cycles the full IDCT spends vs. the shortcut.
    FULL_IDCT_EXTRA = 4_000
    #: Compressed input is ~10:1 smaller than decoded output.
    COMPRESSION_RATIO = 10

    HUFFMAN_PAGE = 0
    IDCT_FULL_PAGE = 1
    IDCT_SKIP_PAGE = 2

    def __init__(self, engine, lib, input_start, temp_start, output_start,
                 temp_pages=16):
        if lib.image.code_pages < 3:
            raise ValueError("libjpeg model needs at least 3 code pages")
        self.engine = engine
        self.lib = lib
        self.input_start = input_start
        self.temp_start = temp_start
        self.temp_pages = temp_pages
        self.output_start = output_start
        self.blocks_decoded = 0

    @property
    def blocks_per_output_page(self):
        return PAGE_SIZE // self.BYTES_PER_BLOCK

    @property
    def blocks_per_input_page(self):
        return self.blocks_per_output_page * self.COMPRESSION_RATIO

    def idct_page_for(self, complex_block):
        page = self.IDCT_FULL_PAGE if complex_block else self.IDCT_SKIP_PAGE
        return self.lib.code_page(page)

    def output_pages(self, image):
        n = -(-image.n_blocks // self.blocks_per_output_page)
        return [self.output_start + i * PAGE_SIZE for i in range(n)]

    def decode(self, image):
        """Decode the image; returns decoded size in bytes."""
        for i, complex_block in enumerate(image.complexity):
            self.engine.code_access(self.lib.code_page(self.HUFFMAN_PAGE))
            self.engine.data_access(
                self.input_start
                + (i // self.blocks_per_input_page) * PAGE_SIZE
            )
            # The leak: which IDCT page runs depends on the block.
            # repro: allow[leakage] deliberate victim (Table 2)
            self.engine.code_access(self.idct_page_for(complex_block))
            self.engine.data_access(
                self.temp_start + (i % self.temp_pages) * PAGE_SIZE,
                write=True,
            )
            self.engine.data_access(
                self.output_start
                + (i // self.blocks_per_output_page) * PAGE_SIZE,
                write=True,
            )
            cycles = self.BLOCK_COMPUTE
            if complex_block:
                cycles += self.FULL_IDCT_EXTRA
            self.engine.compute(cycles)
            self.blocks_decoded += 1
        return image.decoded_bytes(self.BYTES_PER_BLOCK)

    def invert(self, image):
        """Data-independent filter pass over the decoded buffer — the
        insensitive pipeline stage whose buffer may stay OS-managed."""
        for page in self.output_pages(image):
            self.engine.data_access(page, write=True)
            self.engine.compute(PAGE_SIZE // 2)

    def encode(self, image):
        """Re-encode: stream the decoded buffer back through the codec."""
        for i, complex_block in enumerate(image.complexity):
            self.engine.code_access(self.lib.code_page(self.HUFFMAN_PAGE))
            self.engine.data_access(
                self.output_start
                + (i // self.blocks_per_output_page) * PAGE_SIZE
            )
            self.engine.data_access(
                self.temp_start + (i % self.temp_pages) * PAGE_SIZE,
                write=True,
            )
            self.engine.compute(self.BLOCK_COMPUTE // 2)
        return image.n_blocks * self.BYTES_PER_BLOCK // \
            self.COMPRESSION_RATIO
