"""Memcached model (§7.3): slab-allocated KV store under YCSB load.

Memcached stores fixed-class items in slab pages; a GET hashes the key,
walks the index, and reads the item.  With 400 MB of 1 KB entries the
store oversubscribes EPC, so paging — and the paging side channel on
*which keys are hot* — is unavoidable without a defense.

The paper modifies Memcached's slab allocation (30 LOC) so all item
accesses are managed by 10-page clusters, or recompiles it to use ORAM
for all items; rate-limited paging needs no change at all.  The model
exposes the same knob via whichever engine/policy the system was built
with.
"""

from __future__ import annotations

from repro.sgx.params import PAGE_SIZE


class Memcached:
    """Single-threaded KV store (the paper's thread-safety-limited
    ORAM configuration) with arithmetic slab placement."""

    #: Hash + protocol parse + LRU bookkeeping per request.
    REQUEST_COMPUTE = 15_000
    #: Per-item copy-out to the response buffer.
    ITEM_COMPUTE = 800

    def __init__(self, engine, heap_start, data_bytes, item_size=1024):
        self.engine = engine
        self.heap_start = heap_start
        self.item_size = item_size
        self.n_keys = data_bytes // item_size
        self.items_per_page = PAGE_SIZE // item_size

        self.item_pages = -(-self.n_keys // self.items_per_page)
        index_bytes = self.n_keys * 8
        self.index_pages = -(-index_bytes // PAGE_SIZE)
        self.index_start = heap_start + self.item_pages * PAGE_SIZE
        self.gets = 0
        self.sets = 0
        #: key → (page run, copy-out cycles); the slab layout is
        #: static, so a GET's page pair is planned once per key with
        #: the engine's ``make_run``.
        self._trace_cache = {}

    @property
    def total_pages(self):
        return self.item_pages + self.index_pages

    def item_page(self, key):
        return self.heap_start + (key // self.items_per_page) * PAGE_SIZE

    def index_page(self, key):
        return self.index_start + (key * 8 // PAGE_SIZE) * PAGE_SIZE

    # repro: hot
    def get(self, key):
        """One YCSB GET: index probe, item read, response copy."""
        self.gets += 1
        self.engine.compute(self.REQUEST_COMPUTE)
        trace = self._trace_cache.get(key)
        if trace is None:
            if not 0 <= key < self.n_keys:
                raise KeyError(key)
            # repro: allow[leakage] deliberate victim (Table 2): the
            # key selects the index page and item page the OS observes
            run = self.engine.make_run(
                (self.index_page(key), self.item_page(key))
            )
            trace = (run, self.ITEM_COMPUTE)
            # repro: allow[leakage] in-enclave memo keyed by the key;
            # the OS-visible trace is the page run above
            self._trace_cache[key] = trace
        self.engine.replay(trace)

    def set(self, key):
        """One SET: index probe, item write."""
        if not 0 <= key < self.n_keys:
            raise KeyError(key)
        self.sets += 1
        self.engine.compute(self.REQUEST_COMPUTE)
        # repro: allow[leakage] key-dependent index-page write
        self.engine.data_access(self.index_page(key), write=True)
        # repro: allow[leakage] key-dependent item-page write
        self.engine.data_access(self.item_page(key), write=True)
        self.engine.compute(self.ITEM_COMPUTE)

    def serve(self, keys, progress_kind=None):
        """Serve a GET stream, emitting one progress event per request
        (the "faults per socket receive" bound of §5.2.4)."""
        from repro.runtime.rate_limit import ProgressKind
        kind = progress_kind or ProgressKind.IO
        for key in keys:
            self.engine.progress(kind)
            self.get(key)
