"""Autarky: closing controlled channels with self-paging enclaves.

A full-system reproduction of the EuroSys 2020 paper: an SGX
memory-management simulator, the published controlled-channel attacks,
Autarky's ISA modifications, a self-paging library OS with three secure
paging policies, and the benchmark harness for every table and figure.

Public API tour:

>>> from repro import AutarkySystem, SystemConfig
>>> system = AutarkySystem(SystemConfig.for_policy("clusters"))
>>> engine = system.engine()

Subpackages:

- :mod:`repro.sgx` — the hardware model
- :mod:`repro.host` — the untrusted kernel and SGX driver
- :mod:`repro.attacks` — controlled-channel attackers and oracles
- :mod:`repro.runtime` — the trusted libOS and paging policies
- :mod:`repro.oram` — PathORAM and Autarky's page cache
- :mod:`repro.apps` — workload models (uthash, Memcached, libjpeg, ...)
- :mod:`repro.workloads` — YCSB / nbench / Phoenix-PARSEC generators
- :mod:`repro.core` — system assembly, metrics, leakage math
- :mod:`repro.experiments` — the per-figure reproduction harness
"""

from repro.clock import Category, Clock
from repro.core.config import PolicyConfig, SystemConfig
from repro.core.metrics import Measurement, RunMetrics, geomean, slowdown
from repro.core.system import AutarkySystem, DirectEngine, OramEngine
from repro.errors import (
    AttackDetected,
    EnclaveTerminated,
    EpcExhausted,
    EpcmViolation,
    IntegrityError,
    PageFault,
    PolicyError,
    RateLimitExceeded,
    ReproError,
    SgxError,
)
from repro.host.kernel import HostKernel
from repro.runtime.libos import EnclaveLayout, GrapheneRuntime, Management
from repro.sgx.params import (
    PAGE_SIZE,
    AccessType,
    ArchOptimizations,
    CostModel,
    SgxVersion,
)

__version__ = "1.0.0"

__all__ = [
    "Category",
    "Clock",
    "PolicyConfig",
    "SystemConfig",
    "Measurement",
    "RunMetrics",
    "geomean",
    "slowdown",
    "AutarkySystem",
    "DirectEngine",
    "OramEngine",
    "AttackDetected",
    "EnclaveTerminated",
    "EpcExhausted",
    "EpcmViolation",
    "IntegrityError",
    "PageFault",
    "PolicyError",
    "RateLimitExceeded",
    "ReproError",
    "SgxError",
    "HostKernel",
    "EnclaveLayout",
    "GrapheneRuntime",
    "Management",
    "PAGE_SIZE",
    "AccessType",
    "ArchOptimizations",
    "CostModel",
    "SgxVersion",
    "__version__",
]
