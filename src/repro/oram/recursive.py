"""Recursive PathORAM: the position map stored in smaller ORAMs.

A flat position map for N blocks needs N entries of trusted memory —
exactly the state Autarky pins in enclave-managed pages (§5.2.2) and
CoSMIX scans obliviously.  The classical alternative [Stefanov et al.]
recurses: store the map itself in a (pack_factor×) smaller ORAM, and
that ORAM's map in a smaller one still, until the top map fits a
constant budget.

This gives the third point in the design space the paper's discussion
implies:

* flat map, pinned (Autarky): fastest, costs N entries of EPC;
* flat map, scanned (CoSMIX): no pinning, catastrophically slow;
* recursive map: O(1) pinned state, ~(levels+1)× the path work.

`benchmarks/` compares all three; the recursion's functional
correctness is property-tested against a dict model.
"""

from __future__ import annotations

from repro.clock import Category
from repro.oram.path_oram import OramCosts, PathOram


class RecursivePathOram:
    """PathORAM whose position map recurses into smaller ORAMs.

    ``pack_factor`` position-map entries pack into one block of the
    next level (64 eight-byte entries per 512-byte metadata block is
    typical).  Recursion stops when a level's map fits
    ``top_map_entries`` — that residue is the only pinned state.
    """

    def __init__(self, num_blocks, clock, costs=None, pack_factor=64,
                 top_map_entries=256, seed=0xACE, bucket_size=4):
        if num_blocks < 1:
            raise ValueError("ORAM needs at least one block")
        if pack_factor < 2:
            raise ValueError("pack_factor must be at least 2")
        self.num_blocks = num_blocks
        self.clock = clock
        self.costs = costs or OramCosts()
        self.pack_factor = pack_factor
        self.top_map_entries = top_map_entries

        # Data ORAM plus the chain of position-map ORAMs.
        self._data = PathOram(
            num_blocks, clock, costs=self.costs, seed=seed,
            bucket_size=bucket_size,
        )
        self._map_orams = []
        entries = num_blocks
        level_seed = seed
        while entries > top_map_entries:
            entries = -(-entries // pack_factor)
            level_seed += 1
            self._map_orams.append(PathOram(
                entries, clock, costs=self.costs, seed=level_seed,
                bucket_size=bucket_size,
            ))
        #: The constant-size residue a real enclave pins in EPC.
        self._top_map = {}
        self.accesses = 0

    @property
    def recursion_depth(self):
        return len(self._map_orams)

    def pinned_entries(self):
        """Trusted state this construction needs resident (vs. N for a
        flat map)."""
        return self.top_map_entries

    def access(self, block_id, data=None, write=False):
        """One logical access = one path per recursion level + the
        data path.  The per-level *map blocks* ride inside the level
        ORAMs, so their positions are themselves ORAM-protected."""
        if not 0 <= block_id < self.num_blocks:
            raise ValueError(f"block {block_id} out of range")
        self.accesses += 1

        # Walk the recursion from the top map down to the data ORAM.
        # Level i stores the packed position-map blocks of level i-1;
        # functionally, PathOram keeps each level's own position map,
        # so the recursion here charges the *path work* each level
        # costs while the top map supplies the root lookup.
        index = block_id
        for level in reversed(self._map_orams):
            index //= self.pack_factor
            bounded = index % level.num_blocks
            map_block = level.access(bounded)
            if map_block is None:
                level.access(bounded, data=("posmap", bounded),
                             write=True)
        self._top_map[block_id % self.top_map_entries] = True
        self.clock.charge(
            self.costs.metadata_direct, Category.ORAM
        )
        return self._data.access(block_id, data=data, write=write)

    def stash_size(self):
        return self._data.stash_size() + sum(
            level.stash_size() for level in self._map_orams
        )
