"""PathORAM [Stefanov et al., CCS'13] with cycle accounting.

The untrusted server side is a complete binary tree of Z-slot buckets
holding encrypted page-size blocks; the client side is a position map
(block → leaf) and a stash of in-flight blocks.  Every access reads one
root-to-leaf path into the stash, remaps the block to a fresh random
leaf, and greedily writes the path back — so the server observes one
uniformly random path per access regardless of the client's addresses.

Two metadata modes:

* ``oblivious_metadata=False`` (Autarky): position map and stash live
  in enclave-managed pinned pages; lookups are direct.
* ``oblivious_metadata=True`` (CoSMIX baseline): every metadata touch
  is a CMOV linear scan, charged per entry — the cost that made
  pre-Autarky enclave ORAM orders of magnitude slower (§7.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.clock import Category
from repro.oram.oblivious import ObliviousScanCosts, oblivious_scan_cycles


@dataclass
class OramCosts:
    """Cycle costs of the ORAM protocol's building blocks.

    ``block_io`` covers transfer + pipelined AES of one block slot,
    charged for every slot on the path (dummies included) in both
    directions.  The default is calibrated jointly with the cluster
    fetch costs so the uthash experiment reproduces the paper's two
    anchor points: cached ORAM breaks even with ~10-page clusters
    (Figure 6), and the uncached CoSMIX baseline lands two-plus orders
    of magnitude below the cached one (232× in §7.2).  CoSMIX's memory
    stores use sub-page ORAM blocks with AES-NI, so per-slot costs far
    below a full 4 KiB software encryption are the realistic regime.
    """

    block_io: int = 940
    metadata_direct: int = 20
    scan: ObliviousScanCosts = field(default_factory=ObliviousScanCosts)


class PathOram:
    """One PathORAM instance over ``num_blocks`` page-size blocks."""

    def __init__(self, num_blocks, clock, costs=None, bucket_size=4,
                 seed=0x5EED, oblivious_metadata=False, rng=None):
        if num_blocks < 1:
            raise ValueError("ORAM needs at least one block")
        self.num_blocks = num_blocks
        self.clock = clock
        self.costs = costs or OramCosts()
        self.bucket_size = bucket_size
        self.oblivious_metadata = oblivious_metadata

        # Smallest tree whose leaves cover the block count.
        self.levels = max(1, (num_blocks - 1).bit_length())
        self.num_leaves = 1 << self.levels

        # Leaf remaps draw from a seeded private stream (``rng`` lets a
        # caller share one stream across instances); the process-global
        # ``random`` module is never touched, so runs replay exactly.
        self._rng = rng or random.Random(seed)
        self._tree = {}        # (level, index) -> [(block_id, data), ...]
        self._position = {}    # block_id -> leaf
        self._stash = {}       # block_id -> data

        #: Statistics for tests and experiments.
        self.accesses = 0
        self.stash_peak = 0

    # -- public protocol -----------------------------------------------------

    def access(self, block_id, data=None, write=False):
        """One ORAM access; returns the block's (possibly new) contents."""
        if not 0 <= block_id < self.num_blocks:
            raise ValueError(f"block {block_id} out of range")
        self.accesses += 1

        leaf = self._position_lookup(block_id)
        if leaf is None:
            leaf = self._rng.randrange(self.num_leaves)
        self._read_path(leaf)

        # Remap before write-back so the old path stays unlinkable.
        new_leaf = self._rng.randrange(self.num_leaves)
        self._position_update(block_id, new_leaf)

        if write:
            self._stash[block_id] = data
        result = self._stash.get(block_id)

        self._write_path(leaf)
        self.stash_peak = max(self.stash_peak, len(self._stash))
        return result

    def stash_size(self):
        return len(self._stash)

    def snapshot_state(self):
        """Canonical client+server state for recovery fingerprints:
        tree occupancy, position map, stash membership, counters, and
        the exact position of the private random stream (two ORAM
        instances are equivalent only if their next remaps agree)."""
        tree = tuple(sorted(
            (level, index, tuple(sorted(bid for bid, _data in bucket)))
            for (level, index), bucket in self._tree.items()
        ))
        return (
            tree,
            tuple(sorted(self._position.items())),
            tuple(sorted(self._stash)),
            self.accesses,
            self.stash_peak,
            self._rng.getstate(),
        )

    # -- protocol internals ----------------------------------------------------

    def _bucket_index(self, leaf, level):
        return leaf >> (self.levels - level)

    def _read_path(self, leaf):
        """Decrypt every slot on the path into the stash."""
        slots = (self.levels + 1) * self.bucket_size
        self.clock.charge(slots * self.costs.block_io, Category.ORAM)
        self._charge_slot_metadata(slots)
        for level in range(self.levels + 1):
            bucket = self._tree.pop(
                (level, self._bucket_index(leaf, level)), None
            )
            if not bucket:
                continue
            for block_id, data in bucket:
                self._stash[block_id] = data

    def _write_path(self, leaf):
        """Greedily drain the stash back onto the path, leaves first."""
        slots = (self.levels + 1) * self.bucket_size
        self.clock.charge(slots * self.costs.block_io, Category.ORAM)
        self._charge_slot_metadata(slots)
        for level in range(self.levels, -1, -1):
            index = self._bucket_index(leaf, level)
            bucket = []
            for block_id in list(self._stash):
                if len(bucket) >= self.bucket_size:
                    break
                block_leaf = self._position[block_id]
                if self._bucket_index(block_leaf, level) == index:
                    bucket.append((block_id, self._stash.pop(block_id)))
            if bucket:
                self._tree[(level, index)] = bucket

    # -- metadata cost model ---------------------------------------------------

    def _position_lookup(self, block_id):
        self._charge_position_touch()
        return self._position.get(block_id)

    def _position_update(self, block_id, leaf):
        self._charge_position_touch()
        self._position[block_id] = leaf

    def _charge_position_touch(self):
        if self.oblivious_metadata:
            self.clock.charge(
                oblivious_scan_cycles(self.num_blocks, self.costs.scan),
                Category.OBLIVIOUS_SCAN,
            )
        else:
            self.clock.charge(self.costs.metadata_direct, Category.ORAM)

    def _charge_slot_metadata(self, slots):
        """Metadata cost of processing ``slots`` path slots.

        CoSMIX-style oblivious operation must, for every slot it reads
        or writes, obliviously select the matching stash entry and
        consult the position map with data-independent scans — one full
        linear scan of each structure per slot.  This is the term that
        makes uncached enclave ORAM catastrophically slow (§7.2's
        24-hour non-completion).  With Autarky (direct metadata) the
        same work is a constant-time index per slot.
        """
        if self.oblivious_metadata:
            per_slot = (
                oblivious_scan_cycles(self.num_blocks, self.costs.scan)
                + oblivious_scan_cycles(
                    max(len(self._stash), 1), self.costs.scan
                )
            )
            self.clock.charge(slots * per_slot, Category.OBLIVIOUS_SCAN)
        else:
            self.clock.charge(
                slots * self.costs.metadata_direct, Category.ORAM
            )
