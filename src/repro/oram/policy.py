"""The ORAM secure paging policy (§5.2.2).

Plugs cached (or uncached) ORAM into the runtime's policy slot:

* The ORAM cache, position map, stash, and the instrumented code are
  all enclave-managed *pinned* pages, so any fault on them is an
  attack and terminates the enclave.
* Application accesses to the protected data region do not go through
  page faults at all — they are instrumented (CoSMIX-style) and call
  :meth:`OramPolicy.access`.
"""

from __future__ import annotations

from repro.errors import AttackDetected
from repro.oram.cached import CachedOram
from repro.oram.path_oram import PathOram
from repro.runtime.policies import SecurePagingPolicy
from repro.sgx.params import PAGE_SIZE


class OramPolicy(SecurePagingPolicy):
    """Provably leak-free paging: the attacker's view of the data
    region is a uniformly random path sequence."""

    name = "oram"

    def __init__(self, tree_pages, cache_pages, clock, region_start=0,
                 oblivious_metadata=False, oram_costs=None, seed=0x5EED):
        super().__init__()
        self.oram = PathOram(
            tree_pages, clock, costs=oram_costs,
            oblivious_metadata=oblivious_metadata, seed=seed,
        )
        self.cache = (
            CachedOram(self.oram, cache_pages, clock,
                       region_start=region_start)
            if cache_pages else None
        )
        self.region_start = region_start
        self.instrumented_accesses = 0
        #: Optional repro.recovery.RecoveryManager: ORAM accesses are the
        #: instrumented equivalent of page faults, so they are journaled
        #: the same way for crash recovery.
        self.observer = None

    @property
    def cached(self):
        return self.cache is not None

    #: Without the cache, consecutive instrumented loads to the same
    #: page cannot coalesce: each goes through the full ORAM protocol.
    #: A page-granular touch in our workload models stands for ~2
    #: distinct instrumented loads on average (pointer + payload).
    UNCACHED_LOADS_PER_TOUCH = 2

    # -- the instrumented data path ---------------------------------------

    def access(self, vaddr, data=None, write=False):
        """One instrumented access to the ORAM-protected region."""
        self.instrumented_accesses += 1
        if self.cache is not None:
            result = self.cache.access(vaddr, data=data, write=write)
        else:
            block = (vaddr - self.region_start) // PAGE_SIZE
            result = self.oram.access(block, data=data, write=write)
            for _ in range(self.UNCACHED_LOADS_PER_TOUCH - 1):
                self.oram.access(block, data=data, write=write)
        if self.observer is not None:
            self.observer.note_oram(vaddr, write)
        return result

    # -- SecurePagingPolicy interface ---------------------------------------

    def on_fault(self, vaddr, access):
        """Everything this policy manages is pinned; faults only happen
        when the OS tampers."""
        raise AttackDetected(
            f"fault on ORAM-protected memory at {vaddr:#x}"
        )

    def hit_rate(self):
        return self.cache.hit_rate() if self.cache else 0.0
