"""Oblivious RAM (§2.3, §5.2.2): PathORAM plus Autarky's page cache.

``PathOram`` is a full functional PathORAM (binary tree, Z-slot
buckets, stash, position map) with cycle accounting.  ``CachedOram``
adds the paper's contribution: a large in-EPC page cache backed by
enclave-managed (pinned) pages, which Autarky makes safe because the
OS can no longer observe accesses to mapped EPC pages.  Cache hits
bypass the ORAM protocol entirely — the "orders of magnitude" speedup
of §7.2.  The uncached configuration (CoSMIX-style oblivious linear
scans over the position map and stash on every access) is retained as
the baseline.
"""

from repro.oram.oblivious import ObliviousScanCosts, oblivious_scan_cycles
from repro.oram.path_oram import PathOram, OramCosts
from repro.oram.cached import CachedOram
from repro.oram.recursive import RecursivePathOram
from repro.oram.policy import OramPolicy

__all__ = [
    "ObliviousScanCosts",
    "oblivious_scan_cycles",
    "PathOram",
    "OramCosts",
    "CachedOram",
    "RecursivePathOram",
    "OramPolicy",
]
