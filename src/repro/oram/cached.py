"""Autarky's ORAM page cache (§5.2.2, §6).

CoSMIX-style instrumentation sends every access to an annotated memory
region through ORAM.  Autarky's insight: since the proposed hardware
hides accesses to *mapped* EPC pages, a large pre-allocated buffer of
enclave-managed (pinned) pages can cache recently-used ORAM pages, and
instrumented accesses become a cheap cache lookup; only misses invoke
the ORAM protocol.  Fetch/evict between the cache and the ORAM tree is
an oblivious copy, so the cache adds no leak.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.clock import Category
from repro.errors import PolicyError
from repro.sgx.params import PAGE_SIZE, page_base


class CachedOram:
    """A page-granular software cache in front of a :class:`PathOram`.

    ``capacity_pages`` is bounded by how much EPC the enclave can pin —
    128 MB in the paper's uthash/Memcached experiments.  Eviction is
    LRU; dirty pages are written back through the ORAM protocol, clean
    pages are dropped (their tree copy is current).
    """

    #: Instrumented access through the cache: bounds check and hash
    #: probe injected by the CoSMIX compiler pass, plus the oblivious
    #: sub-page copy of the referenced data in/out of the cache page
    #: (instrumentation runs per load, far below page granularity).
    HIT_CYCLES = 2_500
    #: Oblivious copy of one 4 KiB page between cache and stash buffer.
    COPY_CYCLES = 1_200

    def __init__(self, oram, capacity_pages, clock, region_start=0):
        if capacity_pages < 1:
            raise PolicyError("ORAM cache needs at least one page")
        if region_start % PAGE_SIZE:
            raise PolicyError("ORAM region start must be page aligned")
        self.oram = oram
        self.capacity_pages = capacity_pages
        self.clock = clock
        #: Virtual base of the ORAM-protected region; blocks are
        #: page offsets from here.
        self.region_start = region_start
        #: vaddr base -> (data, dirty); ordered for LRU.
        self._cache = OrderedDict()

        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def access(self, vaddr, data=None, write=False):
        """One instrumented access to the ORAM-protected region."""
        base = page_base(vaddr)
        self.clock.charge(self.HIT_CYCLES, Category.ORAM)
        entry = self._cache.get(base)
        if entry is not None:
            self.hits += 1
            self._cache.move_to_end(base)
            if write:
                self._cache[base] = (data, True)
                return data
            return entry[0]

        self.misses += 1
        self._make_room()
        block = self._block_of(base)
        fetched = self.oram.access(block)
        self.clock.charge(self.COPY_CYCLES, Category.ORAM)
        if write:
            self._cache[base] = (data, True)
            return data
        self._cache[base] = (fetched, False)
        return fetched

    def flush(self):
        """Write every dirty page back to the tree (shutdown path)."""
        for base, (data, dirty) in list(self._cache.items()):
            if dirty:
                self.oram.access(self._block_of(base), data, write=True)
                self.writebacks += 1
        self._cache.clear()

    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def cached_pages(self):
        return len(self._cache)

    def snapshot_state(self):
        """Canonical cache state for recovery fingerprints: membership
        and dirtiness in LRU order (order decides future victims), plus
        the lifetime counters."""
        return (
            tuple((base, dirty)
                  for base, (_data, dirty) in self._cache.items()),
            self.hits,
            self.misses,
            self.writebacks,
        )

    # -- internals -----------------------------------------------------------

    def _make_room(self):
        while len(self._cache) >= self.capacity_pages:
            victim, (data, dirty) = self._cache.popitem(last=False)
            if dirty:
                self.oram.access(self._block_of(victim), data, write=True)
                self.writebacks += 1
            self.clock.charge(self.COPY_CYCLES, Category.ORAM)

    def _block_of(self, base):
        if base < self.region_start:
            raise PolicyError(f"{base:#x} below the ORAM region")
        return (base - self.region_start) // PAGE_SIZE
