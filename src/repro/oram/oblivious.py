"""Oblivious access primitives and their costs.

Without Autarky, ORAM metadata (position map, stash) itself leaks
through the paging channel, so CoSMIX-style systems access it with
CMOVZ *linear scans*: every lookup touches every entry so the access
pattern is data-independent.  The cost is what makes uncached enclave
ORAM impractical — §7.2's uncached uthash run "did not complete in 24
hours" on the full input.

With Autarky, the metadata lives in enclave-managed pinned pages and
can be indexed directly; the scan cost disappears.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import Category


@dataclass
class ObliviousScanCosts:
    """Calibration for CMOV-based linear scans.

    ``cycles_per_entry`` models one load + CMOVZ + bookkeeping per
    scanned element (pessimistically cache-resident); real scans are
    memory-bound, so treat this as a lower bound for the baseline.
    """

    cycles_per_entry: float = 2.0


def oblivious_scan_cycles(n_entries, costs=None):
    """Cycles to obliviously select one element out of ``n_entries``."""
    costs = costs or ObliviousScanCosts()
    return int(n_entries * costs.cycles_per_entry)


class ObliviousTable:
    """A key-value table whose lookups charge a full linear scan.

    Functionally a dict; the obliviousness is expressed purely in the
    cycle charges (the simulator does not need data-independent Python
    control flow, only data-independent *modelled* behaviour).
    """

    def __init__(self, clock, costs=None, category=Category.OBLIVIOUS_SCAN):
        self.clock = clock
        self.costs = costs or ObliviousScanCosts()
        self.category = category
        self._data = {}
        self.scans = 0

    def __len__(self):
        return len(self._data)

    def get(self, key, default=None):
        self._charge_scan()
        return self._data.get(key, default)

    def put(self, key, value):
        self._charge_scan()
        self._data[key] = value

    def pop(self, key, default=None):
        self._charge_scan()
        return self._data.pop(key, default)

    def items_unsafe(self):
        """Non-oblivious iteration for write-back paths that already
        scan the whole structure (charged by the caller)."""
        return self._data.items()

    def _charge_scan(self):
        self.scans += 1
        self.clock.charge(
            oblivious_scan_cycles(max(len(self._data), 1), self.costs),
            self.category,
        )
