"""SGX-Step-style interrupt single-stepping [66] (§8 related work).

SGX-Step arms the APIC timer so the enclave is interrupted after
(nearly) every instruction, letting the attacker interleave her own
code with the victim's at the finest granularity.  An interrupt AEX is
*legitimate* — the OS must be able to preempt enclaves — so no defense
can block the stepping itself.  What matters is what each step lets
the attacker *read*:

* on vanilla SGX: the A/D bits updated since the last step — an
  instruction-granular page trace ("the same mechanism helps remove
  the noise from microarchitectural attacks", §1);
* under Autarky: fault addresses are masked, A/D bits are frozen-set,
  and sampling-by-clearing trips the fill check.  The stepper still
  steps; it just observes nothing.

The model interrupts the victim after every engine operation — the
limit case of timer single-stepping.
"""

from __future__ import annotations

from repro.attacks.controlled_channel import Attacker
from repro.sgx.params import page_base


class SgxStepAttacker(Attacker):
    """Single-step the enclave and sample page-table state per step."""

    def __init__(self, kernel, enclave, tcs, target_pages):
        super().__init__()
        self.kernel = kernel
        self.enclave = enclave
        self.tcs = tcs
        self.targets = {page_base(p) for p in target_pages}
        self.steps = 0
        #: Per-step sets of pages observed accessed since last step.
        self.step_trace = []

    def step(self, clear=True):
        """One timer interrupt: preempt, sample, (optionally) clear,
        resume.  Returns the pages seen accessed this step."""
        self.steps += 1
        self.kernel.cpu.interrupt(self.enclave, self.tcs)

        seen = set()
        for base in self.targets:
            pte = self.kernel.page_table.lookup(base)
            if pte is not None and pte.present and pte.accessed:
                seen.add(base)
                if clear:
                    self.kernel.page_table.set_accessed_dirty(
                        base, accessed=False, dirty=False
                    )
        self.step_trace.append(frozenset(seen))

        self.kernel.cpu.resume_from_interrupt(self.enclave, self.tcs)
        return seen

    def single_page_steps(self):
        """Steps that isolated exactly one page — the instruction-level
        precision SGX-Step is prized for."""
        return [next(iter(s)) for s in self.step_trace if len(s) == 1]
