"""The fault-free accessed/dirty-bit controlled channel [67, 72].

Instead of inducing faults, the OS clears the A/D bits of target PTEs
and samples which ones the hardware re-set — a silent trace of the
enclave's working set at whatever granularity the attacker samples.
Software-only defenses that merely count page faults cannot see this
attack at all, which is the paper's §4 argument that they are
insufficient.

Under Autarky the cleared bit itself becomes a tripwire: the next TLB
fill for that page *faults* (§5.1.4), the enclave's handler observes a
fault on a resident page, and the enclave terminates.
"""

from __future__ import annotations

from repro.attacks.controlled_channel import Attacker
from repro.sgx.params import page_base


class AdBitMonitor(Attacker):
    """Samples and clears A/D bits of target pages between victim ops.

    Drive it from the experiment loop: ``arm()`` once, then ``sample()``
    at each point where a concurrent attacker thread would read the
    page tables (our stand-in for the sibling-core sampling loop the
    real attack uses).
    """

    def __init__(self, kernel, enclave, target_pages):
        super().__init__()
        self.kernel = kernel
        self.enclave = enclave
        self.targets = {page_base(p) for p in target_pages}
        #: One entry per sample: the set of pages observed accessed
        #: (A bit) and written (D bit) during the interval.
        self.samples = []

    def arm(self):
        """Clear A/D on all mapped target pages to start the trace."""
        self._clear_all()

    def sample(self):
        """Read which bits the hardware re-set, then clear them again."""
        accessed, written = set(), set()
        for base in self.targets:
            pte = self.kernel.page_table.lookup(base)
            if pte is None or not pte.present:
                continue
            if pte.accessed:
                accessed.add(base)
            if pte.dirty:
                written.add(base)
        self.samples.append((frozenset(accessed), frozenset(written)))
        self._clear_all()
        return accessed, written

    def sample_readonly(self):
        """Read the current A/D state without clearing — the passive
        variant (no tripwire even under Autarky, but also no
        per-interval resolution: bits only accumulate)."""
        accessed = set()
        for base in self.targets:
            pte = self.kernel.page_table.lookup(base)
            if pte is not None and pte.present and pte.accessed:
                accessed.add(base)
        return sorted(accessed)

    def access_trace(self):
        """Flattened per-interval access sets (the attack's output)."""
        return [acc for acc, _written in self.samples]

    def _clear_all(self):
        for base in self.targets:
            pte = self.kernel.page_table.lookup(base)
            if pte is None or not pte.present:
                continue
            if pte.accessed or pte.dirty:
                self.kernel.page_table.set_accessed_dirty(
                    base, accessed=False, dirty=False
                )
