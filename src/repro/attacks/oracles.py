"""Secret-recovery oracles: turning page traces into application secrets.

The controlled channel only yields page numbers; what made the
published attacks devastating is that page-access *signatures* map back
to secrets when the attacker knows the application (enclave code is
public, §3).  These oracles implement that last step:

* :class:`SignatureOracle` — match known per-secret page signatures
  against an observed trace (the Hunspell word-recovery and FreeType
  glyph-recovery technique).
* :func:`trace_accuracy` — fraction of ground-truth secrets recovered,
  the metric our attack-mitigation experiments report.
"""

from __future__ import annotations


def sequence_contains(haystack, needle, start=0):
    """First index ≥ ``start`` where ``needle`` occurs contiguously in
    ``haystack``, or -1."""
    if not needle:
        return start
    limit = len(haystack) - len(needle)
    i = start
    while i <= limit:
        if haystack[i:i + len(needle)] == needle:
            return i
        i += 1
    return -1


class SignatureOracle:
    """Recovers a sequence of secrets from a page-fault trace.

    ``signatures`` maps each candidate secret to the page-access
    signature the attacker profiled offline (running the public binary
    on inputs of her choice).  Recovery scans the victim trace and
    emits the secret whose signature matches at each position,
    preferring longer signatures (more specific) on ties.
    """

    def __init__(self, signatures):
        if not signatures:
            raise ValueError("need at least one signature")
        self.signatures = {
            secret: tuple(sig) for secret, sig in signatures.items()
        }
        #: Longest-first so greedy matching prefers specific patterns.
        self._ordered = sorted(
            self.signatures.items(),
            key=lambda item: (-len(item[1]), str(item[0])),
        )

    def recover(self, trace):
        """Greedy left-to-right recovery of secrets from ``trace``."""
        trace = tuple(trace)
        recovered = []
        i = 0
        while i < len(trace):
            matched = False
            for secret, sig in self._ordered:
                if sig and trace[i:i + len(sig)] == sig:
                    recovered.append(secret)
                    i += len(sig)
                    matched = True
                    break
            if not matched:
                i += 1
        return recovered

    def distinguishable_fraction(self):
        """Fraction of secrets whose signatures are unique — an upper
        bound on what any trace can reveal."""
        from collections import Counter
        counts = Counter(self.signatures.values())
        unique = sum(
            1 for sig in self.signatures.values() if counts[sig] == 1
        )
        return unique / len(self.signatures)


def trace_accuracy(ground_truth, recovered):
    """Positional accuracy of recovered secrets vs. the truth.

    Uses longest-common-subsequence alignment so insertions/deletions
    in the recovery do not cascade into zero scores.
    """
    truth = list(ground_truth)
    guess = list(recovered)
    if not truth:
        return 1.0 if not guess else 0.0
    # Classic O(n*m) LCS length.
    prev = [0] * (len(guess) + 1)
    for t in truth:
        cur = [0]
        for j, g in enumerate(guess, start=1):
            if t == g:
                cur.append(prev[j - 1] + 1)
            else:
                cur.append(max(prev[j], cur[-1]))
        prev = cur
    return prev[-1] / len(truth)
