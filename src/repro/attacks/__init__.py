"""Controlled-channel attackers (§2.2).

These run with full OS privilege against the simulated page tables —
they are real implementations of the published attacks, not stand-ins:

* :class:`PageFaultTracer` — Xu et al.'s fault-injection tracer:
  unmap, observe the fault, remap, silently resume.
* :class:`AdBitMonitor` — the fault-free accessed/dirty-bit monitor of
  Wang et al. / Van Bulck et al.
* :mod:`repro.attacks.oracles` — secret-recovery oracles that turn
  page traces back into application secrets (words, glyphs, image
  structure).
"""

from repro.attacks.controlled_channel import Attacker, PageFaultTracer
from repro.attacks.ad_monitor import AdBitMonitor
from repro.attacks.sgx_step import SgxStepAttacker
from repro.attacks.oracles import (
    SignatureOracle,
    sequence_contains,
    trace_accuracy,
)

__all__ = [
    "Attacker",
    "PageFaultTracer",
    "AdBitMonitor",
    "SgxStepAttacker",
    "SignatureOracle",
    "sequence_contains",
    "trace_accuracy",
]
