"""The page-fault-injection controlled channel (Xu et al. [76]).

The attacker unmaps target pages; when the enclave touches one, the OS
fault handler observes the (page-granular) fault address, remaps that
page, unmaps the previously-accessed one, and silently ERESUMEs.  In
the limit this yields a noise-free page-granularity trace of every
enclave memory access — enough to reconstruct JPEG images, spell-checked
words, and rendered glyphs.

Against Autarky the same code collects nothing: fault addresses are
masked to the enclave base, and the silent-resume step is rejected by
hardware, forcing the fault through the enclave's handler, which
terminates on the first tampered page.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SgxError
from repro.sgx.params import page_base


@dataclass
class AttackLog:
    """Everything an attack run observed and did."""

    #: Observed fault addresses (as delivered by hardware — page
    #: granular for legacy enclaves, masked for self-paging ones).
    trace: list = field(default_factory=list)
    #: Per-page observed fault counts.
    counts: dict = field(default_factory=dict)
    #: Whether a silent ERESUME was ever rejected by hardware.
    silent_resume_rejected: bool = False
    #: Number of faults intercepted.
    intercepted: int = 0

    def distinct_pages(self):
        return set(self.trace)


class Attacker:
    """Base class: observe the kernel's fault stream, never interfere."""

    def __init__(self):
        self.log = AttackLog()

    def on_enclave_fault(self, enclave, tcs, masked):
        """Kernel hook.  Return True iff the attacker fully resolved
        the fault (the kernel then skips its own resolution)."""
        self.log.intercepted += 1
        self.log.trace.append(masked.vaddr)
        self.log.counts[masked.vaddr] = \
            self.log.counts.get(masked.vaddr, 0) + 1
        return False


class PageFaultTracer(Attacker):
    """Xu et al.'s attack: trace accesses to ``target_pages``.

    ``mode`` selects the fault-injection primitive — all three trigger
    the same OS-visible fault stream on vanilla SGX:

    * ``"unmap"``   — clear the present bit (the original attack [76]);
    * ``"protect"`` — revoke W and X so reads still work but writes and
      instruction fetches trap (the permission variant [74]);
    * ``"remap"``   — point the PTE at a *different* enclave frame; the
      EPCM vaddr check turns the access into a fault (the Foreshadow
      setup step [68]).

    When hardware rejects the silent resume (Autarky), the attacker
    falls back to the compliant protocol so the victim's handler runs —
    and promptly kills the enclave.
    """

    MODES = ("unmap", "protect", "remap")

    def __init__(self, kernel, enclave, target_pages, mode="unmap"):
        super().__init__()
        if mode not in self.MODES:
            raise ValueError(f"unknown tracer mode {mode!r}")
        self.kernel = kernel
        self.enclave = enclave
        self.mode = mode
        self.targets = {page_base(p) for p in target_pages}
        self._armed = set()
        self._saved = {}        # base -> original PTE fields
        self._last_remapped = None

    def arm(self):
        """Sabotage every currently-mapped target page."""
        for base in sorted(self.targets):
            pte = self.kernel.page_table.lookup(base)
            if pte is not None and pte.present:
                self._sabotage(base, pte)
                self._armed.add(base)

    def disarm(self):
        """Restore every mapping the attack disturbed."""
        for base in sorted(self._armed):
            self._restore(base)
        self._armed.clear()

    def _sabotage(self, base, pte):
        if self.mode == "unmap":
            self.kernel.page_table.unmap(base)
        elif self.mode == "protect":
            self._saved[base] = (pte.writable, pte.executable)
            self.kernel.page_table.set_protection(
                base, writable=False, executable=False
            )
        else:  # remap: swap in some other frame of the same enclave
            self._saved[base] = pte.pfn
            # Intentional: the Foreshadow-style remap needs some other
            # EPC frame of the victim, and the OS legitimately knows
            # frame assignments (it installed the PTEs).  ``backed`` is
            # the simulator's stand-in for the driver's own records.
            # repro: allow[trust-boundary] attacker uses OS frame table
            frames = self.enclave.backed.items()
            other = next(
                (pfn for _vpn, pfn in frames if pfn != pte.pfn),
                pte.pfn,
            )
            pte.pfn = other
            self.kernel.page_table._shootdown(base)

    def _restore(self, base):
        if self.mode == "unmap":
            pte = self.kernel.page_table.lookup(base)
            if pte is not None and not pte.present:
                self.kernel.page_table.remap(base)
        elif self.mode == "protect":
            writable, executable = self._saved.get(base, (True, False))
            self.kernel.page_table.set_protection(
                base, writable=writable, executable=executable
            )
        else:
            pte = self.kernel.page_table.lookup(base)
            original = self._saved.get(base)
            if pte is not None and original is not None:
                pte.pfn = original
                self.kernel.page_table._shootdown(base)

    def on_enclave_fault(self, enclave, tcs, masked):
        super().on_enclave_fault(enclave, tcs, masked)
        fault_page = page_base(masked.vaddr)

        if enclave.self_paging:
            # All faults report the enclave base: nothing to single-step
            # on.  Probe the silent resume once to document the
            # architectural rejection, then defer to the kernel's
            # compliant protocol (which runs the victim's handler).
            try:
                self.kernel.cpu.eresume(enclave, tcs)
            except SgxError:
                self.log.silent_resume_rejected = True
            return False

        if fault_page not in self._armed:
            # Not our doing (demand paging) — let the kernel resolve.
            return False

        # Classic single-step: heal the faulting page, re-arm the
        # previous one, silently resume.
        self._restore(fault_page)
        self._armed.discard(fault_page)
        if self._last_remapped is not None and \
                self._last_remapped in self.targets and \
                self._last_remapped != fault_page:
            pte = self.kernel.page_table.lookup(self._last_remapped)
            if pte is not None and pte.present:
                self._sabotage(self._last_remapped, pte)
                self._armed.add(self._last_remapped)
        self._last_remapped = fault_page
        return True
