"""Page clusters (§5.2.3): application-aware secure self-paging units.

A page cluster is a consistent set of enclave-managed pages that are
evicted and fetched together, so a fault cannot reveal *which* of the
cluster's pages was accessed.  Clusters need not be contiguous, may be
assembled dynamically, and may share pages (useful for code: two
libraries calling a third share its cluster).

The security invariant maintained by the system:

    for each non-resident page, there is at least one cluster to which
    it belongs with all of its pages non-resident.

Fetching must therefore pull in the *transitive closure* of clusters
sharing pages with the faulting cluster (§5.2.3 explains the
one-resident-page-left corner case this prevents); evicting a single
cluster is always safe.

The public API mirrors Table 1 of the paper.
"""

from __future__ import annotations

import itertools
from collections import deque

from repro.errors import PolicyError
from repro.sgx.params import page_base


class ClusterManager:
    """Owns every cluster of one enclave."""

    def __init__(self):
        self._clusters = {}        # cluster_id -> set of page bases
        self._capacity = {}        # cluster_id -> max pages (None = no cap)
        self._page_clusters = {}   # page base -> set of cluster_ids
        self._ids = itertools.count(1)

    # -- Table 1 API ---------------------------------------------------------

    def ay_init_clusters(self, n, s):
        """Initialize ``n`` clusters of size ``s``; returns their ids."""
        if n < 1:
            raise PolicyError("need at least one cluster")
        if s is not None and s < 1:
            raise PolicyError("cluster size must be positive")
        return [self.new_cluster(s) for _ in range(n)]

    def ay_release_clusters(self):
        """Release all resources."""
        self._clusters.clear()
        self._capacity.clear()
        self._page_clusters.clear()

    def ay_add_page(self, cluster_id, vaddr):
        """Register ``vaddr``'s page with a cluster."""
        pages = self._require(cluster_id)
        base = page_base(vaddr)
        cap = self._capacity[cluster_id]
        if base not in pages and cap is not None and len(pages) >= cap:
            raise PolicyError(
                f"cluster {cluster_id} is full ({cap} pages)"
            )
        pages.add(base)
        self._page_clusters.setdefault(base, set()).add(cluster_id)

    def ay_remove_page(self, cluster_id, vaddr):
        """De-register ``vaddr``'s page from a cluster."""
        pages = self._require(cluster_id)
        base = page_base(vaddr)
        pages.discard(base)
        owners = self._page_clusters.get(base)
        if owners is not None:
            owners.discard(cluster_id)
            if not owners:
                del self._page_clusters[base]

    def ay_get_cluster_ids(self, vaddr):
        """All clusters containing ``vaddr``'s page."""
        return sorted(self._page_clusters.get(page_base(vaddr), ()))

    # -- system-side operations ----------------------------------------------

    def new_cluster(self, capacity=None):
        cluster_id = next(self._ids)
        self._clusters[cluster_id] = set()
        self._capacity[cluster_id] = capacity
        return cluster_id

    def pages_of(self, cluster_id):
        return set(self._require(cluster_id))

    def cluster_count(self):
        return len(self._clusters)

    def clustered(self, vaddr):
        return page_base(vaddr) in self._page_clusters

    def fetch_closure(self, vaddr):
        """All pages that must be fetched together with ``vaddr``.

        BFS over the cluster-sharing graph: the faulting page's
        clusters, every page in them, every cluster those pages belong
        to, and so on.  Disjoint clusters degenerate to a single
        cluster's page set."""
        base = page_base(vaddr)
        seed = self._page_clusters.get(base)
        if not seed:
            raise PolicyError(f"page {base:#x} is not in any cluster")
        seen_clusters = set()
        pages = set()
        frontier = deque(seed)
        while frontier:
            cluster_id = frontier.popleft()
            if cluster_id in seen_clusters:
                continue
            seen_clusters.add(cluster_id)
            for page in self._clusters[cluster_id]:
                if page in pages:
                    continue
                pages.add(page)
                for other in self._page_clusters.get(page, ()):
                    if other not in seen_clusters:
                        frontier.append(other)
        return pages

    def merge_sparse_clusters(self, target_fill):
        """Merge under-filled capped clusters so they stay near-full
        (the libOS allocator's response to frees, §5.2.3).  Returns the
        number of merges performed."""
        sparse = [
            cid for cid, pages in self._clusters.items()
            if self._capacity[cid] is not None
            and 0 < len(pages) < target_fill
        ]
        merges = 0
        while len(sparse) >= 2:
            dst = sparse.pop()
            src = sparse.pop()
            cap = self._capacity[dst]
            for page in list(self._clusters[src]):
                if cap is not None and len(self._clusters[dst]) >= cap:
                    sparse.append(src)
                    break
                self.ay_remove_page(src, page)
                self.ay_add_page(dst, page)
            merges += 1
            if not self._clusters[src]:
                del self._clusters[src]
                del self._capacity[src]
            if (self._capacity[dst] is not None
                    and len(self._clusters[dst]) < target_fill):
                sparse.append(dst)
        return merges

    def check_invariant(self, is_resident):
        """Verify the §5.2.3 invariant given a residency predicate over
        page bases.  Returns the set of violating pages (empty = holds)."""
        violations = set()
        for base, owners in self._page_clusters.items():
            if is_resident(base):
                continue
            ok = any(
                all(not is_resident(p) for p in self._clusters[cid])
                for cid in owners
            )
            if not ok:
                violations.add(base)
        return violations

    # -- internals -----------------------------------------------------------

    def _require(self, cluster_id):
        pages = self._clusters.get(cluster_id)
        if pages is None:
            raise PolicyError(f"unknown cluster {cluster_id}")
        return pages
