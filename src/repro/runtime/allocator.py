"""libOS page allocator with automatic data clustering (§5.2.3).

"We propose an automatic policy that eagerly fills clusters with
allocated pages by extending the libOS page allocator.  A user
specifies the desired size of data clusters.  Each allocated page is
added to a cluster, up to the maximum size, at which time a new cluster
is created.  When enough pages are freed, the libOS allocator merges
clusters to keep them near-full."
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.sgx.params import PAGE_SIZE, page_base


class ClusteringAllocator:
    """Page-granularity allocator over one heap region."""

    def __init__(self, manager, heap_start, heap_pages, cluster_pages=None):
        if heap_start % PAGE_SIZE:
            raise PolicyError("heap start must be page aligned")
        self.manager = manager
        self.heap_start = heap_start
        self.heap_pages = heap_pages
        #: Desired pages per automatic data cluster (None disables
        #: automatic clustering — pages come back unclustered).
        self.cluster_pages = cluster_pages

        self._bump = 0
        self._free = []
        self._current_cluster = None
        self.allocated = 0

    def alloc_pages(self, n):
        """Allocate ``n`` pages; returns their base addresses.

        Each page joins the currently-filling automatic cluster; a new
        cluster opens whenever the current one reaches the target size.
        """
        if n < 1:
            raise PolicyError("allocation of zero pages")
        bases = []
        for _ in range(n):
            if self._free:
                base = self._free.pop()
            else:
                if self._bump >= self.heap_pages:
                    raise MemoryError(
                        f"heap exhausted ({self.heap_pages} pages)"
                    )
                base = self.heap_start + self._bump * PAGE_SIZE
                self._bump += 1
            self._assign_cluster(base)
            bases.append(base)
        self.allocated += n
        return bases

    def free_pages(self, bases):
        """Return pages to the allocator and compact sparse clusters."""
        for base in bases:
            base = page_base(base)
            for cluster_id in self.manager.ay_get_cluster_ids(base):
                self.manager.ay_remove_page(cluster_id, base)
            self._free.append(base)
        self.allocated -= len(bases)
        if self.cluster_pages:
            self.manager.merge_sparse_clusters(self.cluster_pages)

    def _assign_cluster(self, base):
        if not self.cluster_pages:
            return
        if self._current_cluster is None or self._cluster_full():
            self._current_cluster = self.manager.new_cluster(
                self.cluster_pages
            )
        self.manager.ay_add_page(self._current_cluster, base)

    def _cluster_full(self):
        pages = self.manager.pages_of(self._current_cluster)
        return len(pages) >= self.cluster_pages
