"""Memory-management upcalls from OS to enclave (§5.2.1, deferred by
the paper to future work; implemented here as an extension).

"Similar to memory ballooning in virtual machines, memory management
upcalls from OS to enclave imply a series of difficult tradeoffs.
First, the enclave must be given time to reduce its memory allocation.
Second, the enclave runtime must take care that its eviction policy
does not leak sensitive information.  Third, the enclave may not
cooperate."

This module implements the cooperative half: a :class:`BalloonPolicy`
the runtime consults when the OS upcalls asking for pages back.  The
security argument mirrors self-paging's: only whole eviction *units*
(cluster closures) are surrendered, in the same order the self-pager
would have evicted them anyway, so the upcall reveals nothing beyond
what regular paging already does.  Pinned pages and a configurable
floor are never surrendered — the non-cooperation §5.2.1 anticipates —
leaving the OS with its big hammer (whole-enclave suspension) as the
only recourse.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BalloonPolicy:
    """How the enclave answers memory-reduction upcalls.

    ``floor_pages`` — never shrink the resident set below this (the
    working set the enclave is unwilling to give up).
    ``max_fraction_per_request`` — bound on how much one upcall can
    take, so a malicious OS cannot empty the enclave in one shot and
    then watch it fault its secrets back in.
    """

    floor_pages: int = 0
    max_fraction_per_request: float = 0.5
    cooperative: bool = True


class BalloonHandler:
    """Runtime-side handler for OS memory-reduction upcalls."""

    def __init__(self, pager, policy=None):
        self.pager = pager
        self.policy = policy or BalloonPolicy()
        self.requests = 0
        self.pages_surrendered = 0
        #: Upcalls answered with 0 pages — the §5.2.1 non-cooperation
        #: the OS must be prepared for (and chaos campaigns count).
        self.refusals = 0

    def snapshot_counters(self):
        """Canonical counter tuple for recovery fingerprints."""
        return (self.requests, self.pages_surrendered, self.refusals)

    def handle_request(self, pages_requested):
        """Give back up to ``pages_requested`` pages; returns the count
        actually freed (0 = refusal).

        The request comes from the untrusted OS, so it is clamped, not
        trusted: absurd sizes (negative, larger than the enclave) are
        treated as a request for everything the policy allows."""
        self.requests += 1
        if not self.policy.cooperative or pages_requested <= 0:
            self.refusals += 1
            return 0

        resident = self.pager.resident_count()
        pages_requested = min(pages_requested, resident)
        ceiling = int(resident * self.policy.max_fraction_per_request)
        allowance = min(
            pages_requested,
            ceiling,
            max(0, resident - self.policy.floor_pages),
        )
        if allowance <= 0:
            self.refusals += 1
            return 0

        freed = 0
        # Bounded by construction: each pop consumes one queued unit,
        # and the allowance can never exceed the resident set.
        while freed < allowance:
            unit = self.pager._pop_victim()
            if unit is None:
                break
            freed += self.pager.evict_unit(unit)
        self.pages_surrendered += freed
        if freed == 0:
            self.refusals += 1
        return freed
