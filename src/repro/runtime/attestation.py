"""Remote attestation and restart-attack detection (§3).

The paper rules termination/restart attacks out of scope *because*
known defenses exist: "the enclave could perform remote attestation at
startup ... users or trusted services could detect unusually frequent
restarts."  This module implements that machinery:

* :func:`quote` — a (model) SGX quote over the enclave's measurement
  and attested attributes.  Autarky's ``SELF_PAGING`` bit is part of
  the attributes (§5.1.1), so a verifier can refuse enclaves running
  in legacy (insecure) mode.
* :class:`AttestationService` — the trusted relying party: verifies
  quotes against an expected measurement, requires the self-paging
  attribute, and tracks per-measurement launch times so the
  termination attack's restart churn (≈1 bit of leakage per restart)
  raises an alarm long before it amounts to anything.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import AttackDetected, SgxError


@dataclass(frozen=True)
class Quote:
    """An attestation quote (modelled, but structurally faithful)."""

    measurement: int
    self_paging: bool
    nonce: int
    signature: int

    @staticmethod
    def _sign(measurement, self_paging, nonce):
        data = f"{measurement}:{self_paging}:{nonce}".encode()
        return int.from_bytes(
            hashlib.sha256(data).digest()[:8], "big"
        )


def quote(enclave, nonce):
    """Produce a quote for a launched enclave (EREPORT/quoting model)."""
    if not enclave.initialized:
        raise SgxError("cannot quote an uninitialized enclave")
    if enclave.dead:
        raise SgxError("cannot quote a terminated enclave")
    measurement = enclave.measurement.digest()
    return Quote(
        measurement=measurement,
        self_paging=enclave.self_paging,
        nonce=nonce,
        signature=Quote._sign(measurement, enclave.self_paging, nonce),
    )


@dataclass
class VerificationResult:
    accepted: bool
    reason: str = ""


class AttestationService:
    """A trusted relying party monitoring an enclave fleet.

    ``restart_window_s`` / ``max_restarts_per_window`` implement the
    frequent-restart alarm: a controlled-channel attacker grinding the
    termination channel needs a fresh launch per probe, and each launch
    attests here first.
    """

    def __init__(self, expected_measurement, clock,
                 require_self_paging=True,
                 restart_window_s=60.0, max_restarts_per_window=3):
        self.expected_measurement = expected_measurement
        self.clock = clock
        self.require_self_paging = require_self_paging
        self.restart_window_s = restart_window_s
        self.max_restarts_per_window = max_restarts_per_window
        self._nonces = set()
        self._launch_times = []
        self.alarms = []

    def fresh_nonce(self):
        nonce = len(self._nonces) * 2_654_435_761 % (1 << 32)
        self._nonces.add(nonce)
        return nonce

    def verify(self, presented, nonce):
        """Verify a quote; records the launch and may raise an alarm."""
        if nonce not in self._nonces:
            return VerificationResult(False, "unknown nonce (replay?)")
        if presented.nonce != nonce:
            return VerificationResult(False, "nonce mismatch")
        if presented.signature != Quote._sign(
            presented.measurement, presented.self_paging,
            presented.nonce,
        ):
            return VerificationResult(False, "bad signature")
        if presented.measurement != self.expected_measurement:
            return VerificationResult(False, "wrong measurement")
        if self.require_self_paging and not presented.self_paging:
            return VerificationResult(
                False, "enclave launched without the self-paging "
                       "attribute (legacy mode is insecure)"
            )

        now = self.clock.seconds()
        self._launch_times.append(now)
        recent = [
            t for t in self._launch_times
            if now - t <= self.restart_window_s
        ]
        if len(recent) > self.max_restarts_per_window:
            self.alarms.append(
                (now, f"{len(recent)} launches within "
                      f"{self.restart_window_s}s — possible "
                      f"termination-attack restart churn")
            )
        return VerificationResult(True)

    def attest(self, enclave):
        """One full attestation round for a (re)launched enclave.

        Issues a fresh nonce, obtains the quote, and verifies it; a
        rejected quote raises :class:`AttackDetected` — the recovery
        supervisor must never resume traffic to an unattested restart.
        """
        nonce = self.fresh_nonce()
        result = self.verify(quote(enclave, nonce), nonce)
        if not result.accepted:
            raise AttackDetected(
                f"re-attestation rejected: {result.reason}"
            )
        return result

    @property
    def under_attack(self):
        return bool(self.alarms)
