"""Host-call channel: exitless RPC vs. exit-based calls.

The prototype (§6) uses exitless host calls [Eleos, SCONE, HotCalls] to
avoid enclave transitions on every driver request: the enclave writes a
request to shared untrusted memory and an untrusted worker thread
executes it, at roughly half the cost of an EEXIT/EENTER round trip.
The exit-based mode exists for the A2 ablation.
"""

from __future__ import annotations

from repro.clock import Category


class HostCallChannel:
    """Issues driver calls from inside the enclave."""

    def __init__(self, kernel, exitless=True):
        self.kernel = kernel
        self.exitless = exitless
        self.calls = 0

    def call(self, name, *args):
        """One host call; returns the syscall's result."""
        self.calls += 1
        cost = self.kernel.cost
        if self.exitless:
            self.kernel.clock.charge(cost.exitless_call, Category.EXITLESS)
        else:
            # A synchronous OCALL: leave the enclave and re-enter.
            self.kernel.clock.charge(
                cost.eexit + cost.eenter, Category.EENTER_EEXIT
            )
        return self.kernel.syscall(name, *args)
