"""Graphene-style multi-process mode (§3): a parent enclave supervises
its children's lifecycle.

"A local parent enclave (as in Graphene-SGX's multi-process mode)
could manage its children's lifecycle.  In either case, users or
trusted services could detect unusually frequent restarts."

The supervisor launches children through a caller-provided factory,
attests each one at spawn (measurement and the self-paging attribute),
and enforces a restart budget: a controlled-channel attacker grinding
the termination channel — one bit per restart, §5.3 — runs out of
restarts long before extracting anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AttackDetected, EnclaveTerminated, SgxError
from repro.runtime.attestation import quote


@dataclass
class ChildRecord:
    """Lifecycle bookkeeping for one supervised child."""

    child_id: int
    runtime: object
    restarts: int = 0
    terminations: list = field(default_factory=list)


class LockdownError(SgxError):
    """The supervisor refused to restart a child (budget exhausted)."""


class EnclaveSupervisor:
    """Parent-enclave logic: spawn, attest, restart-or-lockdown."""

    def __init__(self, child_factory, expected_measurement=None,
                 max_restarts=3, require_self_paging=True):
        """``child_factory()`` must return a fresh child runtime.

        ``expected_measurement=None`` pins the first child's
        measurement (trust-on-first-launch); pass an explicit value for
        a pre-provisioned deployment.
        """
        self._factory = child_factory
        self.expected_measurement = expected_measurement
        self.max_restarts = max_restarts
        self.require_self_paging = require_self_paging
        self._children = {}
        self._next_id = 0
        self.locked_down = False

    # -- lifecycle ---------------------------------------------------------

    def spawn(self):
        """Launch and attest one child."""
        if self.locked_down:
            raise LockdownError("supervisor is locked down")
        runtime = self._factory()
        self._attest(runtime.enclave)
        record = ChildRecord(child_id=self._next_id, runtime=runtime)
        self._next_id += 1
        self._children[record.child_id] = record
        return record

    def run_child(self, record, workload):
        """Run ``workload(runtime)``; on termination, restart within
        budget or lock down.  Returns the workload's result."""
        while True:
            try:
                return workload(record.runtime)
            except EnclaveTerminated as exc:
                record.terminations.append(str(exc))
                if record.restarts >= self.max_restarts:
                    self.locked_down = True
                    raise LockdownError(
                        f"child {record.child_id} terminated "
                        f"{record.restarts + 1} times — refusing to "
                        f"restart (termination-attack churn)"
                    ) from exc
                record.restarts += 1
                self._reclaim(record)
                record.runtime = self._factory()
                self._attest(record.runtime.enclave)

    def _reclaim(self, record):
        """Free the dead incarnation's host resources (EPC frames,
        page-table entries, driver paging state) before a replacement
        launches — restart churn must not leak EPC."""
        runtime = record.runtime
        if runtime is not None:
            runtime.kernel.driver.reclaim_enclave(runtime.enclave)
            record.runtime = None

    def teardown(self, record):
        """Retire one child and reclaim everything it held."""
        self._children.pop(record.child_id, None)
        self._reclaim(record)

    def shutdown(self):
        """Retire the whole brood (supervisor teardown)."""
        for record in list(self._children.values()):
            self.teardown(record)

    # -- attestation -------------------------------------------------------

    def _attest(self, enclave):
        child_quote = quote(enclave, nonce=0)
        if self.require_self_paging and not child_quote.self_paging:
            raise AttackDetected(
                "child launched without the self-paging attribute"
            )
        if self.expected_measurement is None:
            self.expected_measurement = child_quote.measurement
        elif child_quote.measurement != self.expected_measurement:
            raise AttackDetected(
                "child measurement mismatch (tampered binary?)"
            )

    # -- queries -----------------------------------------------------------

    def total_restarts(self):
        return sum(r.restarts for r in self._children.values())

    def children(self):
        return list(self._children.values())
