"""The trusted in-enclave runtime (Graphene-like library OS).

Everything here executes inside the enclave's trust boundary: the
exception handler that Autarky's hardware guarantees is invoked on
every fault, the self-paging engine, the page-cluster abstraction, the
rate limiter, and the secure paging policies built from them.
"""

from repro.runtime.exitless import HostCallChannel
from repro.runtime.paging_ops import (
    PagingOps,
    Sgx1PagingOps,
    Sgx2PagingOps,
    make_paging_ops,
)
from repro.runtime.self_paging import SelfPager, EvictionOrder
from repro.runtime.clusters import ClusterManager
from repro.runtime.rate_limit import RateLimiter, ProgressKind
from repro.runtime.policies import (
    SecurePagingPolicy,
    PinAllPolicy,
    ClusterPolicy,
    RateLimitPolicy,
)
from repro.runtime.allocator import ClusteringAllocator
from repro.runtime.loader import Loader, LibraryImage
from repro.runtime.libos import GrapheneRuntime

__all__ = [
    "HostCallChannel",
    "PagingOps",
    "Sgx1PagingOps",
    "Sgx2PagingOps",
    "make_paging_ops",
    "SelfPager",
    "EvictionOrder",
    "ClusterManager",
    "RateLimiter",
    "ProgressKind",
    "SecurePagingPolicy",
    "PinAllPolicy",
    "ClusterPolicy",
    "RateLimitPolicy",
    "ClusteringAllocator",
    "Loader",
    "LibraryImage",
    "GrapheneRuntime",
]
