"""Trusted loader: places binaries and builds automatic code clusters.

§5.2.3, "Clusters for code pages": placing all code pages of a library
in a single cluster ensures control flow through the library's internal
code does not leak (defeating the FreeType-style instruction-fetch
attack).  A loader may also cluster at function granularity for better
paging performance when inter-function control flow is not sensitive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import PolicyError
from repro.sgx.params import PAGE_SIZE


class CodeClusterGranularity(enum.Enum):
    LIBRARY = "library"      # one cluster per library (default)
    FUNCTION = "function"    # one cluster per function


@dataclass
class FunctionSymbol:
    """A function's span inside its library image (page granular)."""

    name: str
    first_page: int
    npages: int


@dataclass
class LibraryImage:
    """A binary to load: code plus statically-allocated data."""

    name: str
    code_pages: int
    data_pages: int = 0
    functions: list = field(default_factory=list)


@dataclass
class LoadedLibrary:
    """Where a library landed and which clusters cover it."""

    image: LibraryImage
    code_start: int
    data_start: int
    code_cluster_ids: list

    @property
    def code_end(self):
        return self.code_start + self.image.code_pages * PAGE_SIZE

    def code_page(self, index):
        if not 0 <= index < self.image.code_pages:
            raise PolicyError(
                f"{self.image.name}: code page {index} out of range"
            )
        return self.code_start + index * PAGE_SIZE

    def data_page(self, index):
        if not 0 <= index < self.image.data_pages:
            raise PolicyError(
                f"{self.image.name}: data page {index} out of range"
            )
        return self.data_start + index * PAGE_SIZE


class Loader:
    """Lays out library images in the enclave's code/data regions."""

    def __init__(self, manager, code_start, code_pages,
                 data_start, data_pages,
                 granularity=CodeClusterGranularity.LIBRARY):
        self.manager = manager
        self.granularity = granularity
        self._code_cursor = code_start
        self._code_end = code_start + code_pages * PAGE_SIZE
        self._data_cursor = data_start
        self._data_end = data_start + data_pages * PAGE_SIZE
        self.loaded = {}

    def load(self, image):
        """Place one image and cluster its code pages."""
        if image.name in self.loaded:
            raise PolicyError(f"{image.name} already loaded")
        code_start = self._carve_code(image.code_pages)
        data_start = self._carve_data(image.data_pages)

        if self.granularity is CodeClusterGranularity.LIBRARY:
            cluster_ids = [self._cluster_span(
                code_start, image.code_pages
            )]
        else:
            if not image.functions:
                raise PolicyError(
                    f"{image.name}: function granularity requires symbols"
                )
            cluster_ids = [
                self._cluster_span(
                    code_start + fn.first_page * PAGE_SIZE, fn.npages
                )
                for fn in image.functions
            ]

        lib = LoadedLibrary(
            image=image,
            code_start=code_start,
            data_start=data_start,
            code_cluster_ids=cluster_ids,
        )
        self.loaded[image.name] = lib
        return lib

    def link(self, user_name, dep_name):
        """Record that ``user`` calls into ``dep``: their code clusters
        must share a page so fetches pull both (the "two libraries use a
        third" rule).  We model the PLT page as membership of the
        dependency's first code page in the user's cluster."""
        user = self.loaded[user_name]
        dep = self.loaded[dep_name]
        self.manager.ay_add_page(user.code_cluster_ids[0],
                                 dep.code_page(0))

    def all_code_pages(self):
        pages = []
        for lib in self.loaded.values():
            pages.extend(
                lib.code_page(i) for i in range(lib.image.code_pages)
            )
        return pages

    def _cluster_span(self, start, npages):
        cluster_id = self.manager.new_cluster()
        for i in range(npages):
            self.manager.ay_add_page(cluster_id, start + i * PAGE_SIZE)
        return cluster_id

    def _carve_code(self, npages):
        start = self._code_cursor
        self._code_cursor += npages * PAGE_SIZE
        if self._code_cursor > self._code_end:
            raise MemoryError("code region exhausted")
        return start

    def _carve_data(self, npages):
        if npages == 0:
            return self._data_cursor
        start = self._data_cursor
        self._data_cursor += npages * PAGE_SIZE
        if self._data_cursor > self._data_end:
            raise MemoryError("data region exhausted")
        return start
