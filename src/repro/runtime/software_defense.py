"""Software-only controlled-channel defenses, for comparison (§4, §8).

Varys [46] and Déjà Vu / T-SGX [12, 58] run on unmodified SGX by
*detecting* the attack's side effects — chiefly, the asynchronous
enclave exits every injected fault causes — and terminating when exits
exceed a threshold.  The paper's §4 critique, which this module lets us
demonstrate quantitatively:

* **Benign page faults are indistinguishable from an attack**, so the
  threshold trades false positives against missed attacks:
  - a threshold low enough to catch a slow attacker kills any enclave
    that legitimately demand-pages;
  - a threshold high enough to tolerate demand paging gives the
    attacker that many traced pages for free before detection.
* The A/D-bit channel causes **no AEX at all**, so these defenses never
  see it (Autarky's fill check does).

The detector is modelled faithfully to Varys's mechanism: it samples
the AEX counter at every opportunity the program gives it (loop-ish
checkpoints inserted by recompilation) and compares the exit rate per
checkpoint against a budget.
"""

from __future__ import annotations

from repro.errors import EnclaveTerminated


class AexDetectionTripped(EnclaveTerminated):
    """The software defense concluded it is under attack."""


class AexRateDefense:
    """A Varys-style in-enclave AEX-rate watchdog.

    ``max_aex_per_checkpoint`` is the tuning knob §4 criticizes: there
    is no value that both admits benign demand paging and stops a
    patient attacker.

    Unlike Autarky this requires recompilation (checkpoints must be
    injected into the program), which the model represents by the
    application calling :meth:`checkpoint` explicitly.
    """

    def __init__(self, kernel, enclave, max_aex_per_checkpoint):
        if max_aex_per_checkpoint < 1:
            raise ValueError("need a positive AEX budget")
        self.kernel = kernel
        self.enclave = enclave
        self.max_aex_per_checkpoint = max_aex_per_checkpoint
        self._last_count = kernel.cpu.aex_count
        self.checkpoints = 0
        self.tripped = False

    def checkpoint(self):
        """One instrumented program point: sample and judge."""
        self.checkpoints += 1
        count = self.kernel.cpu.aex_count
        delta = count - self._last_count
        self._last_count = count
        if delta > self.max_aex_per_checkpoint:
            self.tripped = True
            self.enclave.dead = True
            raise AexDetectionTripped(
                f"{delta} AEXs since last checkpoint "
                f"(budget {self.max_aex_per_checkpoint})"
            )
        return delta
