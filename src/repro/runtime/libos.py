"""Graphene-like library OS with the Autarky runtime (§6, Figure 4).

The runtime is the enclave's trusted software layer: it lays out the
address space, claims sensitive pages for enclave management, registers
itself as the enclave's entry-point dispatcher, and runs the page-fault
handler that the modified hardware guarantees is invoked on every
fault.  Applications interact with it through:

* :meth:`GrapheneRuntime.access` — one enclave memory access (the
  simulator's equivalent of a load/store/fetch);
* :meth:`GrapheneRuntime.compute` — application work between accesses;
* :meth:`GrapheneRuntime.progress` — forward-progress events feeding
  the rate-limit policy;
* the loader / allocator / cluster APIs re-exported as attributes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.clock import Category
from repro.errors import (
    AttackDetected,
    IntegrityAbort,
    IntegrityError,
    PolicyError,
)
from repro.sgx.columnar import PageRun
from repro.sgx.params import PAGE_SIZE, AccessType, SgxVersion
from repro.runtime.allocator import ClusteringAllocator
from repro.runtime.clusters import ClusterManager
from repro.runtime.exitless import HostCallChannel
from repro.runtime.loader import CodeClusterGranularity, Loader
from repro.runtime.paging_ops import make_paging_ops
from repro.runtime.self_paging import EvictionOrder, SelfPager


class Management(enum.Enum):
    """Who pages a region (the §5.2.1 two-level split)."""

    OS = "os"
    ENCLAVE = "enclave"


@dataclass
class RuntimeRegion:
    """One region of the enclave's address space, as the libOS sees it."""

    name: str
    start: int
    npages: int
    management: Management
    pinned: bool = False
    writable: bool = True
    executable: bool = False

    @property
    def end(self):
        return self.start + self.npages * PAGE_SIZE

    def contains(self, vaddr):
        return self.start <= vaddr < self.end

    def pages(self):
        return [self.start + i * PAGE_SIZE for i in range(self.npages)]

    def page(self, index):
        if not 0 <= index < self.npages:
            raise PolicyError(f"{self.name}: page {index} out of range")
        return self.start + index * PAGE_SIZE


@dataclass
class EnclaveLayout:
    """Address-space plan for :meth:`GrapheneRuntime.launch`.

    The runtime region (libOS code + self-paging metadata, stack) is
    always pinned enclave-managed, as the prototype does automatically
    (§7 "Setup": "program code, stack, and self-paging metadata ...
    pinned in EPC").
    """

    base: int = 0x10_0000_0000
    runtime_pages: int = 64
    code_pages: int = 256
    data_pages: int = 1024
    heap_pages: int = 65536
    #: Unassigned address space after the heap, claimable later via
    #: :meth:`GrapheneRuntime.grow_heap` (SGX2 dynamic allocation).
    reserve_pages: int = 0


class GrapheneRuntime:
    """The trusted runtime of one enclave."""

    def __init__(self, kernel, enclave, tcs, policy, layout,
                 sgx_version=SgxVersion.SGX1,
                 enclave_managed_budget=None,
                 eviction_order=EvictionOrder.FIFO,
                 exitless=True,
                 code_cluster_granularity=CodeClusterGranularity.LIBRARY,
                 legacy=False):
        self.kernel = kernel
        self.enclave = enclave
        self.tcs = tcs
        self.policy = policy
        self.layout = layout
        #: Legacy mode: a vanilla SGX enclave — all regions OS-managed,
        #: faults resolved silently by the OS, no defense.  Used as the
        #: insecure baseline throughout the evaluation.
        self.legacy = legacy
        self.channel = HostCallChannel(kernel, exitless=exitless)
        self.clusters = ClusterManager()
        self.paging_ops = make_paging_ops(
            sgx_version, enclave, self.channel, kernel.instr,
            kernel.clock, kernel.cost,
        )
        budget = (
            enclave_managed_budget
            if enclave_managed_budget is not None
            else kernel.driver.state(enclave).quota_pages
        )
        self.pager = SelfPager(
            enclave, self.channel, self.paging_ops, budget,
            order=eviction_order,
        )
        if policy is not None:
            policy.attach(self.pager)
        elif not legacy:
            raise PolicyError("a self-paging runtime requires a policy")

        self.regions = {}
        self._build_regions(layout)
        self.loader = Loader(
            self.clusters,
            code_start=self.regions["code"].start,
            code_pages=self.regions["code"].npages,
            data_start=self.regions["data"].start,
            data_pages=self.regions["data"].npages,
            granularity=code_cluster_granularity,
        )
        self.allocator = None  # created by configure_heap()
        #: Cached (start, npages) -> PageRun plans for touch_run on the
        #: columnar tier; plans are stamp-guarded, so staleness is
        #: impossible by construction (see repro.sgx.columnar).
        self._touch_plans = {}

        #: True while a legitimate app entry is in flight, so spurious
        #: EENTERs (handler re-entrancy, §5.3) can be told apart.
        self._entry_expected = False
        self._entry_fn = None
        self._entry_result = None
        self.handled_faults = 0
        # Memory-ballooning upcalls (§5.2.1 extension): the OS writes
        # the request to "shared memory" before EENTER; the dispatcher
        # answers through the balloon handler.
        from repro.runtime.balloon import BalloonHandler
        self.balloon = None if legacy else BalloonHandler(self.pager)
        self._balloon_request = None
        self._balloon_response = 0
        #: Optional repro.recovery.RecoveryManager: when attached, every
        #: input to the paging state machine (faults, progress, balloon
        #: upcalls, claim/release) is journaled so a crashed enclave can
        #: be replayed to this exact state.
        self.recovery = None
        enclave.runtime = self

    # -- construction ----------------------------------------------------

    @classmethod
    def launch(cls, kernel, policy, layout=None, quota_pages=None,
               attributes=None, legacy=False, **kwargs):
        """Create the enclave, declare its regions with the driver, add
        a TCS, EINIT, and attach a runtime — one call from boot to ready."""
        from repro.sgx.enclave import EnclaveAttributes
        layout = layout or EnclaveLayout()
        total_pages = (
            1 + layout.runtime_pages + layout.code_pages
            + layout.data_pages + layout.heap_pages
            + layout.reserve_pages
        )
        if attributes is None:
            attributes = EnclaveAttributes(self_paging=not legacy)
        enclave = kernel.driver.create_enclave(
            layout.base, total_pages,
            attributes=attributes,
            quota_pages=quota_pages,
        )
        tcs = kernel.instr.eadd_tcs(enclave, layout.base)
        kernel.instr.einit(enclave)
        runtime = cls(kernel, enclave, tcs, policy, layout,
                      legacy=legacy, **kwargs)
        return runtime

    def _build_regions(self, layout):
        cursor = layout.base + PAGE_SIZE  # page 0 holds the TCS
        mgmt = Management.OS if self.legacy else Management.ENCLAVE
        plan = [
            ("runtime", layout.runtime_pages, mgmt, not self.legacy,
             True, True),
            ("code", layout.code_pages, mgmt, False,
             False, True),
            ("data", layout.data_pages, mgmt, False,
             True, False),
            ("heap", layout.heap_pages, mgmt, False,
             True, False),
        ]
        for name, npages, mgmt, pinned, writable, executable in plan:
            if npages == 0:
                continue
            region = RuntimeRegion(
                name=name,
                start=cursor,
                npages=npages,
                management=mgmt,
                pinned=pinned,
                writable=writable,
                executable=executable,
            )
            self.regions[name] = region
            self.kernel.driver.declare_region(
                self.enclave, region.start, npages,
                writable=writable, executable=executable,
            )
            cursor = region.end
        if self.legacy:
            return
        # Claim every enclave-managed region in one IOCTL each.
        for region in self.regions.values():
            if region.management is Management.ENCLAVE:
                self.pager.claim_pages(region.pages(), pin=region.pinned)
        # The runtime's own pages must be resident before any fault can
        # be handled (pinning the handler, §5.3).
        self.pager.fetch_unit(self.regions["runtime"].pages(), pin=True)

    def grow_heap(self, npages):
        """Extend the heap into the reserved address space (SGX2
        dynamic memory allocation, §2.1: "an enclave's virtual memory
        can be modified dynamically").

        The new range is declared with the driver, claimed
        enclave-managed under the current policy, and — when a
        clustering allocator exists — added to its arena.  Returns the
        first new page's address."""
        if npages < 1:
            raise PolicyError("grow_heap needs a positive page count")
        heap = self.regions["heap"]
        new_end = heap.end + npages * PAGE_SIZE
        if new_end > self.enclave.limit:
            raise PolicyError(
                f"enclave address space exhausted: reserve_pages in "
                f"EnclaveLayout was too small for +{npages} pages"
            )
        for region in self.regions.values():
            if region is not heap and region.start >= heap.end:
                raise PolicyError(
                    f"region {region.name!r} sits above the heap; "
                    "cannot grow in place"
                )
        first_new = heap.end
        self.kernel.driver.declare_region(
            self.enclave, first_new, npages,
            writable=heap.writable, executable=heap.executable,
        )
        heap.npages += npages
        if not self.legacy and heap.management is Management.ENCLAVE:
            self.pager.claim_pages(
                [first_new + i * PAGE_SIZE for i in range(npages)],
                pin=heap.pinned,
            )
        if self.allocator is not None:
            self.allocator.heap_pages += npages
        return first_new

    def configure_heap(self, cluster_pages=None):
        """Create the clustering allocator over the heap region."""
        heap = self.regions["heap"]
        self.allocator = ClusteringAllocator(
            self.clusters, heap.start, heap.npages,
            cluster_pages=cluster_pages,
        )
        return self.allocator

    def set_region_management(self, name, management):
        """Flip a region between OS- and enclave-managed (§5.2.1: the
        sensitivity of a page may change over the enclave's lifetime)."""
        region = self.regions[name]
        if region.management is management:
            return
        if management is Management.OS:
            self.pager.release_pages(region.pages())
        else:
            self.pager.claim_pages(region.pages(), pin=region.pinned)
        region.management = management

    # -- execution API (what "application code" calls) ---------------------

    def access(self, vaddr, access=AccessType.READ):
        """One enclave memory access through the full hardware path."""
        return self.kernel.cpu.access(self.enclave, self.tcs, vaddr, access)

    def access_pages(self, vaddrs, access=AccessType.READ):
        """Batched accesses: one call into the CPU's run engine instead
        of N full call chains.  Same faults, same counters, same cycle
        charges as the equivalent :meth:`access` loop.  ``vaddrs`` may
        be a planned :class:`~repro.sgx.columnar.PageRun`, which the
        run engine executes columnar-first on that tier."""
        return self.kernel.cpu.access_run(
            self.enclave, self.tcs, vaddrs, access
        )

    def touch_run(self, start, npages, access=AccessType.READ,
                  compute_cycles=0):
        """Touch ``npages`` consecutive pages from ``start``, optionally
        charging ``compute_cycles`` of application work per page (one
        bulk charge of ``npages * compute_cycles``).

        Repeating touches plan once: on the columnar tier the
        ``(start, npages)`` run is packed into a cached
        :class:`~repro.sgx.columnar.PageRun`, so a steady-state re-touch
        executes as one bulk step instead of ``npages`` probes."""
        if self.kernel.cpu.columnar is not None:
            run = self._touch_plans.get((start, npages))
            if run is None:
                run = PageRun(
                    [start + i * PAGE_SIZE for i in range(npages)]
                )
                self._touch_plans[(start, npages)] = run
        else:
            run = [start + i * PAGE_SIZE for i in range(npages)]
        self.kernel.cpu.access_run(self.enclave, self.tcs, run, access)
        if compute_cycles:
            self.kernel.clock.charge(
                npages * compute_cycles, Category.COMPUTE
            )

    def compute(self, cycles):
        """Application work between memory accesses."""
        self.kernel.clock.charge(cycles, Category.COMPUTE)

    def progress(self, kind):
        """Forward-progress event observed by the libOS (I/O, alloc, …)."""
        if self.policy is not None:
            self.policy.on_progress(kind)
        if self.recovery is not None:
            self.recovery.note_progress(kind)

    def call(self, fn, *args, **kwargs):
        """Model an ECALL: EENTER, run ``fn`` inside, EEXIT."""
        self._entry_expected = True
        self._entry_fn = (fn, args, kwargs)
        try:
            self.kernel.cpu.eenter(self.enclave, self.tcs)
        finally:
            self._entry_expected = False
        self.kernel.cpu.eexit_cost()
        return self._entry_result

    # -- the trusted entry point and fault handler -------------------------

    def on_enter(self, tcs):
        """Dispatcher at the enclave's attested entry point."""
        frame = tcs.ssa.peek()
        if frame is not None and frame.exitinfo is not None:
            self.handle_fault(tcs)
            return
        if self._balloon_request is not None:
            request, self._balloon_request = self._balloon_request, None
            self.kernel.clock.charge(
                self.kernel.cost.autarky_handler, Category.AUTARKY_HANDLER
            )
            self._balloon_response = self.balloon.handle_request(request)
            if self.recovery is not None:
                self.recovery.note_balloon(request, self._balloon_response)
            return
        if self._entry_expected:
            fn, args, kwargs = self._entry_fn
            self._entry_result = fn(*args, **kwargs)
            return
        raise AttackDetected("unexpected enclave entry (no pending fault)")

    def handle_fault(self, tcs):
        """The Autarky page-fault handler (Figure 2, right half).

        Reads the true fault information from the SSA, verifies it is
        not malicious, applies the secure paging policy, and resumes —
        in-enclave when the hardware optimization is present."""
        self.kernel.clock.charge(
            self.kernel.cost.autarky_handler, Category.AUTARKY_HANDLER
        )
        frame = tcs.ssa.peek()
        if frame is None or frame.exitinfo is None:
            raise AttackDetected("fault handler invoked without a fault")
        info = frame.exitinfo
        self.handled_faults += 1

        try:
            if self.pager.is_managed(info.vaddr):
                # Sensitive page under enclave management: the policy
                # decides (and detects attacks).  Page-level claims
                # override region defaults, so check the pager first.
                if self.policy is None:
                    raise AttackDetected(
                        "fault on managed page with no policy configured"
                    )
                before = getattr(self.policy, "pages_fetched", 0)
                self.policy.on_fault(info.vaddr, info.access)
                if self.recovery is not None:
                    self.recovery.note_fault(
                        info.vaddr, info.access, managed=True,
                        fetched=getattr(self.policy, "pages_fetched", 0)
                        - before,
                    )
            elif self.region_of(info.vaddr) is not None:
                # Insensitive OS-managed page: hand the fault to the OS,
                # which could not see the address on its own (the
                # libjpeg pipeline pattern of §7.3).
                self.channel.call("os_resolve", self.enclave, info.vaddr)
                if self.recovery is not None:
                    self.recovery.note_fault(
                        info.vaddr, info.access, managed=False, fetched=0
                    )
            else:
                raise AttackDetected(
                    f"fault outside any region at {info.vaddr:#x}"
                )
        except IntegrityAbort:
            raise
        except IntegrityError as exc:
            # A tampered or replayed blob surfaced while servicing the
            # fault.  Converting it into a structured termination here
            # guarantees fail-stop: the handler never resumes the
            # application on state the crypto layer rejected.
            raise IntegrityAbort(
                f"integrity failure while paging {info.vaddr:#x}: {exc}"
            ) from exc

        if self.kernel.cpu.arch_opts.in_enclave_resume and tcs.ssa.depth:
            # In-enclave ERESUME variant: pop the frame and continue
            # without the EEXIT/ERESUME round trip (§5.1.3).
            tcs.ssa.pop()

    def region_of(self, vaddr):
        for region in self.regions.values():
            if region.contains(vaddr):
                return region
        return None

    # -- page-management helpers (what "enlightened" apps call) -----------

    def claim(self, vaddrs, pin=False):
        """Mark specific pages enclave-managed (the libjpeg pattern of
        claiming sensitive buffers after malloc, §7.3)."""
        vaddrs = list(vaddrs)
        result = self.pager.claim_pages(vaddrs, pin=pin)
        if self.recovery is not None:
            self.recovery.note_claim(vaddrs, pin)
        return result

    def release(self, vaddrs):
        """Yield pages back to OS management."""
        vaddrs = list(vaddrs)
        self.pager.release_pages(vaddrs)
        if self.recovery is not None:
            self.recovery.note_release(vaddrs)

    # -- setup helpers ---------------------------------------------------

    def preload(self, vaddrs, pin=False):
        """Warm enclave-managed pages before measurement starts."""
        self.pager.fetch_unit(list(vaddrs), pin=pin)

    def preload_os(self, vaddrs):
        """Warm OS-managed pages (host-side, no enclave involvement)."""
        for vaddr in vaddrs:
            if not self.kernel.driver.resident(self.enclave, vaddr):
                self.kernel.driver.page_in(self.enclave, vaddr)
