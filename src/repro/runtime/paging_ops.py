"""The two secure paging mechanisms of §6.

``Sgx1PagingOps``
    The privileged EWB/ELDU instructions run in the driver; the enclave
    just issues batched ``ay_fetch_pages`` / ``ay_evict_pages`` host
    calls.  Hardware crypto, one host call per batch.

``Sgx2PagingOps``
    SGX2 dynamic memory management: the enclave seals/unseals page
    contents itself (AES-NI in the prototype), pairing EAUG with
    EACCEPTCOPY on fetch, and EMODPR/EACCEPT + EMODT/EACCEPT/EREMOVE on
    evict.  More flexible — custom encryption, skipping writeback of
    clean pages, alternative backing stores — but one extra enclave
    crossing per operation, which is why §7.1 finds SGX1 faster and the
    evaluation defaults to it.
"""

from __future__ import annotations

from repro.clock import Category
from repro.errors import AttackDetected, IntegrityError, SgxError
from repro.runtime.backoff import RetryPolicy, call_with_retry
from repro.sgx.crypto import PagingCrypto
from repro.sgx.epcm import Permissions
from repro.sgx.params import SgxVersion, page_base


class PagingOps:
    """Interface: batched fetch/evict of enclave-managed pages.

    Every host call goes through :meth:`_host_call`, which absorbs
    transient :class:`~repro.errors.HostCallDenied` failures with
    bounded, cycle-charged backoff and converts persistent refusal into
    fail-stop (:class:`~repro.errors.ChaosAbort`) — the hardened
    contract the chaos harness exercises.
    """

    def __init__(self, enclave, channel, retry=None):
        self.enclave = enclave
        self.channel = channel
        self.retry = retry or RetryPolicy()
        #: Transient host failures absorbed by backoff (observability).
        self.retried_calls = 0

    def _host_call(self, name, *args):
        attempts = 0

        def attempt():
            nonlocal attempts
            attempts += 1
            return self.channel.call(name, self.enclave, *args)

        result = call_with_retry(
            self.channel.kernel.clock, attempt, self.retry,
            describe=f"paging service {name!r}",
        )
        self.retried_calls += attempts - 1
        return result

    def fetch_batch(self, vaddrs):
        raise NotImplementedError

    def evict_batch(self, vaddrs):
        raise NotImplementedError

    def adopt(self, vaddrs):
        """Take ownership of pages that were already resident when the
        runtime claimed them (no fetch happened through this object)."""


class Sgx1PagingOps(PagingOps):
    """Driver-executed EWB/ELDU paging."""

    def fetch_batch(self, vaddrs):
        if not vaddrs:
            return []
        return self._host_call("ay_fetch_pages",
                               [page_base(v) for v in vaddrs])

    def evict_batch(self, vaddrs):
        if not vaddrs:
            return
        self._host_call("ay_evict_pages",
                        [page_base(v) for v in vaddrs])


class Sgx2PagingOps(PagingOps):
    """In-enclave paging over SGX2 dynamic memory management.

    The sealed blobs live in untrusted memory owned by the runtime
    (``self._sealed``); integrity and freshness come from the enclave's
    own sealing crypto, so a hostile OS gains nothing by touching them.
    """

    def __init__(self, enclave, channel, instructions, clock, cost,
                 retry=None):
        super().__init__(enclave, channel, retry=retry)
        self.instr = instructions
        self.clock = clock
        self.cost = cost
        self.crypto = PagingCrypto()
        self._sealed = {}
        #: Contents cache keyed by vaddr while a page is resident, so
        #: evict can re-seal what fetch unsealed (the EPC frame holds
        #: the authoritative copy; this mirrors it for the model).
        self._resident_contents = {}

    def adopt(self, vaddrs):
        for vaddr in vaddrs:
            self._resident_contents.setdefault(page_base(vaddr), None)

    def fetch_batch(self, vaddrs):
        if not vaddrs:
            return []
        bases = [page_base(v) for v in vaddrs]
        # Privileged half, batched: EAUG + PTE map.  The prototype
        # overlaps EAUG with decryption via a temporary buffer (§6), so
        # we do not serialize an extra round trip per page.
        self._host_call("sgx2_augment_batch", bases)
        for base in bases:
            sealed = self._sealed.pop(base, None)
            try:
                if sealed is None:
                    # First touch: plain EACCEPT of the zeroed page.
                    self.instr.eaccept(self.enclave, base)
                    contents = None
                else:
                    self.clock.charge(self.cost.decrypt_page,
                                      Category.SGX_PAGING)
                    contents = self.crypto.unseal(
                        self.enclave.enclave_id, base, sealed
                    )
                    self.instr.eacceptcopy(self.enclave, base, contents)
            except IntegrityError:
                # Tampered or replayed sealed blob.  IntegrityError is
                # a subclass of SgxError, so without this re-raise the
                # clause below would misclassify crypto rejection as a
                # skipped EAUG; the libos converts it into fail-stop
                # with the ``integrity`` abort reason.
                raise
            except SgxError as exc:
                # EACCEPT[COPY] found no pending page: the host claimed
                # the augment succeeded but never performed it.  The
                # enclave-side instruction is the detector (§6) — a
                # lying paging service is an active attack.
                if sealed is not None:
                    self._sealed[base] = sealed
                raise AttackDetected(
                    f"host skipped EAUG for {base:#x}: {exc}"
                ) from exc
            self._resident_contents[base] = contents
        return bases

    def evict_batch(self, vaddrs):
        if not vaddrs:
            return
        bases = [page_base(v) for v in vaddrs]
        for base in bases:
            if base not in self._resident_contents:
                raise SgxError(
                    f"SGX2 evict of a page not fetched through this "
                    f"runtime: {base:#x}"
                )
        # Phase 1: freeze the pages read-only so concurrent writers
        # fault (thread safety, §6), then seal contents in-enclave.
        # Each privileged half is retried independently: the phases are
        # not idempotent as a whole, so a transient denial mid-sequence
        # must resume exactly where it stopped, never re-run phase 1.
        self._host_call("sgx2_modpr_batch", bases, Permissions.R)
        for base in bases:
            self.instr.eaccept(self.enclave, base)
            contents = self._resident_contents.pop(base)
            self.clock.charge(self.cost.encrypt_page, Category.SGX_PAGING)
            self._sealed[base] = self.crypto.seal(
                self.enclave.enclave_id, base, contents
            )
        # Phase 2: trim, accept, and release the frames.
        self._host_call("sgx2_trim_batch", bases)
        for base in bases:
            self.instr.eaccept(self.enclave, base)
        self._host_call("sgx2_remove_batch", bases)


def make_paging_ops(version, enclave, channel, instructions, clock, cost):
    """Factory keyed on :class:`~repro.sgx.params.SgxVersion`."""
    if version is SgxVersion.SGX1:
        return Sgx1PagingOps(enclave, channel)
    if version is SgxVersion.SGX2:
        return Sgx2PagingOps(enclave, channel, instructions, clock, cost)
    raise ValueError(f"unknown SGX version {version!r}")
