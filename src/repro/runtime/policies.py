"""Secure self-paging policies (§5.2.2–§5.2.4).

A policy decides what happens when the trusted fault handler sees a
page fault on an *enclave-managed* page:

* a fault on a page the runtime believes is resident can only be
  OS-induced — it is an attack, and the enclave terminates;
* a fault on a non-resident page is legitimate demand paging, and the
  policy controls what gets fetched (and therefore what the OS can
  infer from the fetch).

The ORAM policy lives in :mod:`repro.oram.policy`: it is not
fault-driven (accesses are instrumented), but it plugs into the same
interface so every experiment can swap policies freely.
"""

from __future__ import annotations

from repro.errors import AttackDetected, PolicyError


class SecurePagingPolicy:
    """Interface implemented by all paging policies."""

    name = "abstract"

    def __init__(self):
        self.pager = None
        #: Experiment counters.
        self.legit_faults = 0
        self.pages_fetched = 0
        #: OS-induced faults this policy refused to service.
        self.attacks_detected = 0

    def attach(self, pager):
        self.pager = pager

    def on_fault(self, vaddr, access):
        """Resolve a fault on an enclave-managed page or raise."""
        raise NotImplementedError

    def on_progress(self, kind):
        """Forward-progress notification from the libOS (rate limiting)."""

    def _check_not_resident(self, vaddr):
        """The universal attack check: a fault on a page we believe is
        mapped means the OS tampered with the mapping (§5.2.1)."""
        if self.pager.is_resident(vaddr):
            self.attacks_detected += 1
            raise AttackDetected(
                f"fault on purportedly-resident page {vaddr:#x}"
            )


class PinAllPolicy(SecurePagingPolicy):
    """Keep the whole enclave resident; any post-warm-up fault is an
    attack (§5.2's baseline software design, sufficient for workloads
    whose resident set fits EPC: Hunspell, FreeType, small libjpeg)."""

    name = "pin_all"

    def __init__(self):
        super().__init__()
        self.sealed = False

    def seal(self):
        """End of warm-up: from now on, every fault terminates."""
        self.sealed = True

    def on_fault(self, vaddr, access):
        self._check_not_resident(vaddr)
        if self.sealed:
            self.attacks_detected += 1
            raise AttackDetected(
                f"fault after seal on pinned memory at {vaddr:#x}"
            )
        self.legit_faults += 1
        fetched = self.pager.fetch_unit([vaddr], pin=True)
        self.pages_fetched += len(fetched)


class ClusterPolicy(SecurePagingPolicy):
    """Fetch the faulting page's transitive cluster closure (§5.2.3).

    ``unclustered`` controls pages no cluster covers yet:

    * ``"reject"`` (default) — treat as a configuration error; the
      automatic-clustering deployments guarantee full coverage.
    * ``"demand"`` — plain single-page demand paging, for the
      enlightened-application pattern where clusters are assigned only
      after a structure is initialized (Hunspell's dictionaries, §7.3);
      those pages leak like the rate-limited policy's data pages until
      they are clustered.
    """

    name = "clusters"

    def __init__(self, manager, unclustered="reject"):
        super().__init__()
        if unclustered not in ("reject", "demand"):
            raise PolicyError(f"bad unclustered mode {unclustered!r}")
        self.manager = manager
        self.unclustered = unclustered
        self.unclustered_faults = 0

    def on_fault(self, vaddr, access):
        self._check_not_resident(vaddr)
        if not self.manager.clustered(vaddr):
            if self.unclustered == "reject":
                raise PolicyError(
                    f"enclave-managed page {vaddr:#x} is in no cluster; "
                    "the cluster policy requires full coverage"
                )
            self.unclustered_faults += 1
            self.legit_faults += 1
            self.pager.note_fault(vaddr)
            fetched = self.pager.fetch_unit([vaddr])
            self.pages_fetched += len(fetched)
            return
        self.legit_faults += 1
        self.pager.note_fault(vaddr)
        closure = self.manager.fetch_closure(vaddr)
        fetched = self.pager.fetch_unit(sorted(closure))
        self.pages_fetched += len(fetched)


class RateLimitPolicy(SecurePagingPolicy):
    """Traditional demand paging under a fault-rate bound (§5.2.4).

    Code pages are still clustered automatically (per library, by the
    loader) so control flow does not leak; data pages are fetched one
    at a time — the accepted, bounded leak.
    """

    name = "rate_limit"

    def __init__(self, limiter, manager=None):
        super().__init__()
        self.limiter = limiter
        #: Optional cluster manager holding the automatic code clusters.
        self.manager = manager

    def on_fault(self, vaddr, access):
        self._check_not_resident(vaddr)
        self.limiter.note_fault()
        self.legit_faults += 1
        self.pager.note_fault(vaddr)
        if self.manager is not None and self.manager.clustered(vaddr):
            pages = sorted(self.manager.fetch_closure(vaddr))
        else:
            pages = [vaddr]
        fetched = self.pager.fetch_unit(pages)
        self.pages_fetched += len(fetched)

    def on_progress(self, kind):
        self.limiter.note_progress(kind)
