"""The self-paging engine: residence tracking and eviction (§5.2).

The trusted runtime tracks the residence status of every
enclave-managed page and is the *only* agent that moves them between
EPC and the backing store.  Eviction happens in *units* — the set of
pages fetched together (one page for plain demand paging, a cluster
closure for the cluster policy) — because evicting part of a cluster
would break the §5.2.3 invariant.

Two eviction orders are provided:

* ``FIFO`` — what the prototype uses (PTE accessed bits are unusable
  under Autarky, §7 "Setup").
* ``FAULT_FREQUENCY`` — the coarser frequency-based alternative §5.1.4
  sketches ("counts the frequency of page faults for each page, and
  eventually learns to keep hot pages paged in"); evaluated as
  ablation A1.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from collections import defaultdict, deque
from dataclasses import dataclass, field

from repro.errors import (
    ChaosAbort,
    EpcExhausted,
    LivelockGuard,
    PinnedExhaustion,
    PolicyError,
)
from repro.sgx.params import EVICTION_BATCH, page_base, vpn_of


class EvictionOrder(enum.Enum):
    FIFO = "fifo"
    FAULT_FREQUENCY = "fault_frequency"


@dataclass
class EvictionUnit:
    """Pages that were fetched together and must be evicted together."""

    pages: tuple          # vpns
    alive: bool = True
    fault_count: int = 0
    seq: int = field(default=0)


class SelfPager:
    """Manages the enclave-managed portion of EPC from inside the enclave."""

    def __init__(self, enclave, channel, ops, budget_pages,
                 order=EvictionOrder.FIFO, min_evict_batch=EVICTION_BATCH,
                 max_degradations=8):
        self.enclave = enclave
        self.channel = channel
        self.ops = ops
        self.budget_pages = budget_pages
        self.order = order
        self.min_evict_batch = min_evict_batch
        #: How many times one fetch may shrink the resident set when the
        #: host squeezes the EPC quota, before the enclave fails stop.
        self.max_degradations = max_degradations

        self._resident = set()           # vpns
        self._pinned = set()             # vpns never evicted
        self._claimed = set()            # vpns under enclave management
        self._unit_of = {}               # vpn -> EvictionUnit
        self._fifo = deque()             # EvictionUnits, oldest first
        self._freq_heap = []             # (fault_count, seq, unit)
        self._seq = itertools.count()
        #: Lifetime fault count per page — survives unit churn so the
        #: frequency evictor can learn which pages stay hot.
        self._page_faults = defaultdict(int)

        #: Optional repro.recovery.RecoveryManager: late regrouping is a
        #: paging-state input with no libOS wrapper, so the pager itself
        #: journals it when recovery is attached.
        self.recovery_observer = None

        #: Experiment counters.
        self.fetches = 0
        self.evictions = 0
        #: Times a fetch survived host EPC pressure by surrendering
        #: resident pages (graceful degradation, bounded above).
        self.degradations = 0

    # -- queries -----------------------------------------------------------

    def is_resident(self, vaddr):
        return vpn_of(vaddr) in self._resident

    def resident_count(self):
        return len(self._resident)

    def resident_pages(self):
        """Page base addresses of every resident enclave-managed page."""
        return sorted(vpn << 12 for vpn in self._resident)

    def is_managed(self, vaddr):
        """Whether the page is currently under enclave management."""
        return vpn_of(vaddr) in self._claimed

    # -- claiming ----------------------------------------------------------

    def claim_pages(self, vaddrs, pin=False):
        """ay_set_enclave_managed: move pages under enclave control.

        Pages that are already resident are adopted in place; ``pin``
        exempts them from eviction (handler code/data, ORAM metadata,
        self-paging bookkeeping — everything whose fault would itself
        leak)."""
        bases = [page_base(v) for v in vaddrs]
        residency = self.channel.call(
            "ay_set_enclave_managed", self.enclave, bases
        )
        adopted = [b for b, res in residency.items() if res]
        self.ops.adopt(adopted)
        for base in adopted:
            self._resident.add(vpn_of(base))
        for base in bases:
            self._claimed.add(vpn_of(base))
        if pin:
            self._pinned.update(vpn_of(b) for b in bases)
        else:
            if adopted:
                self._push_unit(tuple(vpn_of(b) for b in adopted))
        return residency

    def release_pages(self, vaddrs):
        """ay_set_os_managed: hand pages back to the OS."""
        bases = [page_base(v) for v in vaddrs]
        self.channel.call("ay_set_os_managed", self.enclave, bases)
        for base in bases:
            vpn = vpn_of(base)
            self._claimed.discard(vpn)
            self._pinned.discard(vpn)
            self._resident.discard(vpn)
            unit = self._unit_of.pop(vpn, None)
            if unit is not None:
                unit.alive = False

    # -- paging ------------------------------------------------------------

    def fetch_unit(self, vaddrs, pin=False):
        """Fetch all non-resident pages of a unit atomically.

        Returns the list of page bases actually fetched.  The unit is
        recorded so its pages are evicted together later."""
        missing = [page_base(v) for v in vaddrs
                   if vpn_of(v) not in self._resident]
        if not missing:
            return []
        self.make_room(len(missing))
        self._fetch_degrading(missing)
        vpns = tuple(vpn_of(b) for b in missing)
        self._resident.update(vpns)
        self._claimed.update(vpns)
        if pin:
            self._pinned.update(vpns)
        else:
            self._push_unit(vpns)
        self.fetches += len(missing)
        return missing

    def _fetch_degrading(self, missing):
        """Issue the batched fetch, absorbing host-side EPC exhaustion.

        A Byzantine (or merely overloaded) host may shrink the quota
        under us even though ``make_room`` already made the resident set
        fit the *declared* budget.  The safe response is graceful
        degradation: surrender our own coldest units and retry, at most
        ``max_degradations`` times, then fail stop — never spin."""
        last = None
        for _ in range(self.max_degradations + 1):
            try:
                self.ops.fetch_batch(missing)
                return
            except EpcExhausted as exc:
                last = exc
                unit = self._pop_victim()
                if unit is None:
                    raise ChaosAbort(
                        f"EPC exhausted fetching {len(missing)} pages "
                        f"with nothing left to surrender "
                        f"(resident={len(self._resident)}, "
                        f"pinned={len(self._pinned)}): {exc}"
                    ) from exc
                self.evict_unit(unit)
                self.degradations += 1
        raise ChaosAbort(
            f"EPC exhaustion persisted past the degradation budget "
            f"({self.max_degradations} evictions): {last}"
        ) from last

    def _detach_unit(self, unit):
        """Retire a unit; returns the page addresses it still held."""
        unit.alive = False
        pages = [vpn << 12 for vpn in unit.pages
                 if vpn in self._resident and vpn not in self._pinned]
        for vpn in unit.pages:
            if self._unit_of.get(vpn) is unit:
                del self._unit_of[vpn]
        return pages

    def _evict_pages(self, pages):
        if not pages:
            return 0
        self.ops.evict_batch(pages)
        for vaddr in pages:
            self._resident.discard(vpn_of(vaddr))
        self.evictions += len(pages)
        return len(pages)

    def evict_unit(self, unit):
        """Evict every still-resident page of a unit."""
        return self._evict_pages(self._detach_unit(unit))

    def make_room(self, need):
        """Evict whole units (oldest / coldest first) until ``need``
        pages fit in the budget.  Victim units are combined into one
        batched eviction call so the per-page cost stays amortized
        (batch ≥ 16 as in the Intel driver)."""
        if need > self.budget_pages:
            raise PolicyError(
                f"unit of {need} pages exceeds the whole budget "
                f"({self.budget_pages})"
            )
        overshoot = len(self._resident) + need - self.budget_pages
        if overshoot <= 0:
            return
        target = max(overshoot, min(self.min_evict_batch,
                                    len(self._resident)))
        victims = []
        # Each queue entry is consumed exactly once, so the selection
        # loop is structurally finite — the guard turns any future
        # bookkeeping bug into a diagnosable abort instead of a hang.
        rounds = 0
        max_rounds = len(self._fifo) + len(self._freq_heap) + 1
        while len(victims) < target:
            rounds += 1
            if rounds > max_rounds:
                raise LivelockGuard(
                    f"victim selection looped {rounds} times over "
                    f"{max_rounds - 1} queued units without freeing "
                    f"{target} pages (resident={len(self._resident)}, "
                    f"pinned={len(self._pinned)})"
                )
            unit = self._pop_victim()
            if unit is None:
                if len(victims) >= overshoot:
                    break
                raise PinnedExhaustion(
                    f"budget exceeded but every resident page is pinned "
                    f"(need={need}, budget={self.budget_pages}, "
                    f"resident={len(self._resident)}, "
                    f"pinned={len(self._pinned)}, "
                    f"freed={len(victims)})"
                )
            victims.extend(self._detach_unit(unit))
        self._evict_pages(victims)

    def regroup(self, vaddrs):
        """Re-form the resident pages of ``vaddrs`` into one eviction
        unit.  Used when pages acquire cluster membership after they
        were fetched individually (late clustering): from then on they
        evict together, preserving the cluster invariant."""
        vaddrs = list(vaddrs)
        vpns = tuple(
            vpn_of(v) for v in vaddrs if vpn_of(v) in self._resident
        )
        if vpns:
            self._push_unit(vpns)
        if self.recovery_observer is not None:
            self.recovery_observer.note_regroup(vaddrs)

    def note_fault(self, vaddr):
        """Record a fault against the page (frequency eviction input)."""
        vpn = vpn_of(vaddr)
        self._page_faults[vpn] += 1
        unit = self._unit_of.get(vpn)
        if unit is not None:
            unit.fault_count += 1

    def evict_all(self):
        """Evict every non-pinned resident page (tests and benchmark
        setup: reach the everything-swapped-out state in one call)."""
        evicted = 0
        while True:
            unit = self._pop_victim()
            if unit is None:
                return evicted
            evicted += self.evict_unit(unit)

    def pin(self, vaddrs):
        for vaddr in vaddrs:
            self._pinned.add(vpn_of(vaddr))

    # -- canonical-state accessors (repro.recovery fingerprints) -----------

    def snapshot_queue(self):
        """Deterministic image of the eviction queue.

        FIFO: the live units' page tuples in queue order (order *is*
        state — it decides future victims).  Frequency: the live units
        as sorted ``(fault_count, pages)`` pairs — heap-internal seq
        numbers are an allocator detail, not observable state."""
        if self.order is EvictionOrder.FIFO:
            return tuple(
                unit.pages for unit in self._fifo if unit.alive
            )
        return tuple(sorted(
            (unit.fault_count, unit.pages)
            for _count, _seq, unit in self._freq_heap if unit.alive
        ))

    def snapshot_hotness(self):
        """Sorted nonzero per-page lifetime fault counts."""
        return tuple(sorted(
            (vpn, count) for vpn, count in self._page_faults.items()
            if count
        ))

    def snapshot_counters(self):
        """Residency sets and lifetime counters as one canonical tuple."""
        return (
            tuple(sorted(self._resident)),
            tuple(sorted(self._pinned)),
            tuple(sorted(self._claimed)),
            self.fetches,
            self.evictions,
            self.degradations,
        )

    # -- internals -----------------------------------------------------------

    def _push_unit(self, vpns):
        unit = EvictionUnit(
            pages=vpns,
            seq=next(self._seq),
            fault_count=sum(self._page_faults[v] for v in vpns),
        )
        for vpn in vpns:
            old = self._unit_of.get(vpn)
            if old is not None:
                old.alive = False
            self._unit_of[vpn] = unit
        if self.order is EvictionOrder.FIFO:
            self._fifo.append(unit)
        else:
            heapq.heappush(
                self._freq_heap, (unit.fault_count, unit.seq, unit)
            )
        return unit

    def _pop_victim(self):
        if self.order is EvictionOrder.FIFO:
            while self._fifo:
                unit = self._fifo.popleft()
                if unit.alive:
                    return unit
            return None
        while self._freq_heap:
            count, seq, unit = heapq.heappop(self._freq_heap)
            if not unit.alive:
                continue
            if count != unit.fault_count:
                # Stale heap entry: re-queue with the current count.
                heapq.heappush(
                    self._freq_heap, (unit.fault_count, seq, unit)
                )
                continue
            return unit
        return None
