"""Bounded retry-with-backoff for untrusted host services.

The paging runtime depends on host calls (`ay_fetch_pages`,
`ay_evict_pages`, the SGX2 IOCTLs) that a Byzantine host may refuse or
fail transiently.  The Autarky contract gives the enclave exactly two
safe responses: absorb the failure within a *bounded* budget, or fail
stop.  Unbounded retry loops reopen a livelock channel (the host can
stall the enclave forever while watching its retry pattern), so every
budget here is finite and every wait is charged to the simulated clock
— backoff costs cycles, exactly like the real runtime spinning on a
monotonic counter would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import Category
from repro.errors import ChaosAbort, HostCallDenied


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a denied host call, and at what cost.

    ``max_attempts`` counts the *total* tries (first call included);
    the wait before retry ``i`` is ``base_cycles * multiplier**(i-1)``,
    charged to :data:`~repro.clock.Category.BACKOFF`.
    """

    max_attempts: int = 4
    base_cycles: int = 2_000
    multiplier: int = 4

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("retry budget must allow at least one attempt")
        if self.base_cycles < 0 or self.multiplier < 1:
            raise ValueError("backoff must advance simulated time forward")

    def wait_cycles(self, attempt):
        """Backoff before retry number ``attempt`` (1-based)."""
        return self.base_cycles * self.multiplier ** (attempt - 1)


def call_with_retry(clock, fn, policy=None, describe="host call"):
    """Run ``fn()`` retrying transient :class:`HostCallDenied` failures.

    Waits (in simulated cycles) between attempts; once the budget is
    exhausted, converts the persistent failure into a fail-stop
    :class:`~repro.errors.ChaosAbort` so callers never spin forever.
    """
    policy = policy or RetryPolicy()
    last = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except HostCallDenied as exc:
            last = exc
            if attempt < policy.max_attempts:
                clock.charge(policy.wait_cycles(attempt), Category.BACKOFF)
    raise ChaosAbort(
        f"{describe} still failing after {policy.max_attempts} attempts "
        f"with backoff: {last}"
    ) from last
