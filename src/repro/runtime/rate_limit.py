"""Bounded-leakage fault-rate limiting (§5.2.4).

The enclave cannot trust any clock (the cycle counter is host
controlled; SGX platform-service time is too slow to query from a fault
handler), so the limit is expressed per unit of *application progress*
the libOS can observe: I/O completions, memory allocations, system
calls.  A server limits faults per socket receive; an ML task per
allocation.

Exceeding the limit terminates the enclave — the "similar guarantees to
Varys" defense with none of its recompilation requirements.
"""

from __future__ import annotations

import enum

from repro.errors import RateLimitExceeded


class ProgressKind(enum.Enum):
    """libOS-observable forward-progress events."""

    IO = "io"
    ALLOCATION = "allocation"
    SYSCALL = "syscall"


class RateLimiter:
    """Counts faults between progress events and enforces a ceiling.

    ``max_faults_per_progress`` is the user-supplied, workload-specific
    bound; ``grace_faults`` absorbs the cold-start burst before the
    first progress event (working-set warm-up), which is how we
    "fine-tune the limit accordingly to prevent false positives" (§7.2).
    """

    def __init__(self, max_faults_per_progress, grace_faults=None,
                 kinds=None):
        if max_faults_per_progress <= 0:
            raise ValueError("fault budget must be positive")
        self.max_faults_per_progress = max_faults_per_progress
        self.grace_faults = (
            grace_faults if grace_faults is not None
            else 4 * max_faults_per_progress
        )
        #: Which progress kinds reset the window (None = all).
        self.kinds = set(kinds) if kinds else None

        self.window_faults = 0
        self.total_faults = 0
        self.progress_events = 0
        self.tripped = False

    def note_progress(self, kind=ProgressKind.SYSCALL):
        """A forward-progress event: opens a fresh fault window."""
        if self.kinds is not None and kind not in self.kinds:
            return
        self.progress_events += 1
        self.window_faults = 0

    def note_fault(self):
        """Record one legitimate page fault; terminate on excess.

        Raises :class:`~repro.errors.RateLimitExceeded` when the bound
        is crossed — the runtime treats that as an active attack.
        """
        self.window_faults += 1
        self.total_faults += 1
        budget = (
            self.grace_faults if self.progress_events == 0
            else self.max_faults_per_progress
        )
        if self.window_faults > budget:
            self.tripped = True
            raise RateLimitExceeded(
                f"{self.window_faults} faults since last progress event "
                f"(budget {budget})"
            )

    def headroom(self):
        """Faults remaining in the current window."""
        budget = (
            self.grace_faults if self.progress_events == 0
            else self.max_faults_per_progress
        )
        return max(0, budget - self.window_faults)
