"""The small-model world: tiny systems, host actions, outcome classes.

One :class:`World` is a fully booted Autarky stack — kernel, enclave,
runtime, policy, recovery manager — over a deliberately tiny EPC, with
the lifecycle oracle attached, plus the bookkeeping the invariant layer
needs (outcome class, violations, pending quota restores).  The model
checker explores the tree of *host action* interleavings over such
worlds; every action drives the same runtime code paths the chaos
campaign and the experiments use — the model is the implementation.

Actions mirror :mod:`repro.chaos.campaign`'s fault applications but are
fully deterministic (targets are chosen by lowest address, never by
RNG) so that a state is a pure function of its action trace.  The four
safe outcome classes are the campaign's: ``completed`` (still running,
nothing absorbed), ``degraded`` (hardening absorbed faults within
budget), ``aborted`` (structured fail-stop), ``recovered`` (verified
crash restore).  Anything else is an invariant violation.
"""

from __future__ import annotations

import copy
import hashlib

from repro.analysis.passes.lifecycle.oracle import LifecycleOracle
from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FaultEvent, FaultKind, FaultPlan
from repro.core.config import SystemConfig
from repro.core.system import AutarkySystem
from repro.errors import (
    AbortReason,
    EnclaveCrashed,
    EnclaveTerminated,
    IntegrityError,
    PolicyError,
    SgxError,
)
from repro.recovery.manager import RecoveryManager
from repro.recovery.program import EnclaveProgram
from repro.recovery.state import canonical_state
from repro.recovery.state import fingerprint as state_fingerprint
from repro.runtime.rate_limit import ProgressKind
from repro.sgx.params import PAGE_SIZE, SgxVersion

#: Policies ``--policy all`` sweeps: the paper's four designs plus the
#: SGX2 variant of rate limiting, whose eviction path exercises the
#: EMODPR/EACCEPT protocol half.  ``broken`` (the seeded-bug toy from
#: :mod:`repro.modelcheck.toys`) is opt-in only.
POLICIES = ("pin_all", "clusters", "rate_limit", "rate_limit_sgx2",
            "oram")

#: Workload pages the actions churn over (three is enough to force
#: eviction under the tiny quota while keeping the branching factor
#: exhaustive-explorable).
N_POOL = 3

#: Quota pages one squeeze action takes away (restored by unsqueeze).
SQUEEZE_CUT = 2

#: Quota floor for the tiny config: below this the enclave could not
#: hold its pinned runtime — a config error, not a survivable fault.
QUOTA_FLOOR = 12

OUTCOME_RUNNING = "running"
OUTCOME_ABORTED = "aborted"


def tiny_config(policy_name):
    """A validated tiny system: boots in ~1 ms, pages under pressure.

    ``enclave_managed_budget`` must stay >= ``runtime_pages`` plus the
    driver's eviction batch, and the quota floor must cover the pinned
    bootstrap set; these are the smallest values that boot every
    policy.
    """
    common = dict(
        epc_pages=64,
        quota_pages=18,
        runtime_pages=2,
        code_pages=2,
        data_pages=2,
        heap_pages=8,
    )
    if policy_name == "pin_all":
        return SystemConfig.for_policy(
            "pin_all", enclave_managed_budget=18, **common)
    if policy_name == "clusters":
        return SystemConfig.for_policy(
            "clusters", cluster_pages=2, enclave_managed_budget=18,
            **common)
    if policy_name in ("rate_limit", "broken"):
        return SystemConfig.for_policy(
            "rate_limit", max_faults_per_progress=8, grace_faults=16,
            enclave_managed_budget=18, **common)
    if policy_name == "rate_limit_sgx2":
        return SystemConfig.for_policy(
            "rate_limit", max_faults_per_progress=8, grace_faults=16,
            enclave_managed_budget=18, sgx_version=SgxVersion.SGX2,
            **common)
    if policy_name == "oram":
        return SystemConfig.for_policy(
            "oram", oram_tree_pages=8, oram_cache_pages=4,
            enclave_managed_budget=18, **common)
    raise PolicyError(f"model checker does not cover {policy_name!r}")


def _bootstrap(runtime, policy_name):
    """The deterministic pre-``begin`` warm-up, shared verbatim between
    first boot and post-crash relaunch (the sealed base checkpoint's
    fingerprint depends on the two being bit-identical)."""
    heap = runtime.regions["heap"]
    if policy_name == "pin_all":
        for i in range(N_POOL):
            runtime.access(heap.start + i * PAGE_SIZE)
        runtime.policy.seal()
    elif policy_name == "clusters":
        runtime.allocator.alloc_pages(N_POOL)


class World:
    """One explored state: a live tiny system plus model bookkeeping."""

    def __init__(self, policy_name):
        self.policy_name = policy_name
        config = tiny_config(policy_name)
        self.system = AutarkySystem(config)
        self.kernel = self.system.kernel
        self.runtime = self.system.runtime
        self.enclave = self.system.enclave
        self.program = EnclaveProgram(
            config=config,
            warmup=_Warmup(policy_name),
            name=f"modelcheck-{policy_name}",
        )
        _bootstrap(self.runtime, policy_name)
        if policy_name == "broken":
            from repro.modelcheck.toys import break_policy
            break_policy(self.runtime)
        if policy_name == "clusters":
            heap = self.runtime.regions["heap"]
            # alloc_pages returned the same deterministic addresses the
            # relaunch warm-up will produce.
            self.pool = [heap.start + i * PAGE_SIZE
                         for i in range(N_POOL)]
        else:
            heap = self.runtime.regions["heap"]
            self.pool = [heap.start + i * PAGE_SIZE
                         for i in range(N_POOL)]
        #: One page outside the pool for claim/release round trips.
        self.spare = heap.start + (config.heap_pages - 1) * PAGE_SIZE
        self.engine = self.system.engine()
        self.oracle = LifecycleOracle().install(self.kernel)
        self.manager = RecoveryManager(self.runtime, keep_trace=True)
        self.oracle.watch_manager(self.manager)
        self.manager.begin()
        #: Outcome class: "running" until a structured abort ends the
        #: world (terminal states are never expanded).
        self.outcome = OUTCOME_RUNNING
        self.reason = ""
        self.recoveries = 0
        self.violations = []
        #: Quota pages taken by squeeze actions, owed back by unsqueeze.
        self.squeezed = 0
        #: Whole-enclave suspension (§5.2.1): while True the enclave
        #: cannot run and the host's only moves are resume, forging
        #: the suspend-set blobs, or killing it.
        self.suspended = False
        #: A suspend-set blob was forged while suspended; the next
        #: resume must reject it (ELDU integrity) or the world is
        #: unsafe.
        self.suspend_tampered = False
        #: Fault kinds fired through the per-action injector, and pages
        #: whose tainted blobs were consumed without an abort.
        self.silent_consumption = []

    # -- derived state ------------------------------------------------------

    @property
    def terminal(self):
        return self.outcome is not OUTCOME_RUNNING or bool(self.violations)

    def driver_state(self):
        return self.kernel.driver.state(self.enclave)

    def resident_pool(self):
        return [v for v in self.pool
                if self.kernel.driver.resident(self.enclave, v)]

    def swapped_pool(self):
        sealed = getattr(self.runtime.paging_ops, "_sealed", None)
        if sealed is not None:
            # SGX2: sealed blobs live in runtime-owned untrusted memory,
            # not the kernel backing store.
            swapped = set(sealed)
        else:
            swapped = set(self.kernel.backing.swapped_pages(
                self.enclave.enclave_id))
        return [v for v in self.pool
                if v in swapped
                and not self.kernel.driver.resident(self.enclave, v)]

    def state_key(self):
        """Canonical identity of this state, for dedup and the
        jobs-determinism digest.  Extends the recovery layer's
        canonical runtime state with everything else the model lets
        the host vary: quota, EPC occupancy, journal length, outcome
        class, and oracle verdicts."""
        runtime_state = (canonical_state(self.runtime)
                         if not self.enclave.dead else ("dead",))
        try:
            quota = self.driver_state().quota_pages
        except KeyError:
            # Aborted mid-recovery: the dead incarnation was reclaimed
            # and no successor was adopted.
            quota = None
        raw = repr((
            self.policy_name,
            runtime_state,
            quota,
            self.kernel.epc.free_pages,
            self.manager.records_written,
            len(self.manager.checkpoints),
            self.outcome,
            self.reason,
            self.recoveries,
            self.squeezed,
            self.suspended,
            self.suspend_tampered,
            tuple(self.violations),
            tuple(self.oracle.violations),
        )).encode()
        return hashlib.sha256(raw).hexdigest()


class _Warmup:
    """Picklable relaunch warm-up closure for :class:`EnclaveProgram`."""

    def __init__(self, policy_name):
        self.policy_name = policy_name

    def __call__(self, runtime):
        _bootstrap(runtime, self.policy_name)


# -- the action alphabet ----------------------------------------------------

#: Canonical action order: exploration, dedup-truncation, and digests
#: all follow it, which is what makes ``--jobs N`` bit-identical.
def enabled_actions(world):
    """Host actions applicable in ``world``, in canonical order."""
    if world.terminal:
        return []
    policy = world.policy_name
    if world.suspended:
        # §5.2.1: a suspended enclave cannot run.  The host's only
        # moves are resuming it, forging its suspend-set blobs, or
        # killing it outright.
        actions = ["resume"]
        if policy not in ("pin_all", "oram") and \
                not world.suspend_tampered:
            actions.append("tamper")
        actions.append("crash")
        return actions
    actions = [f"touch:{i}" for i in range(len(world.pool))]
    actions.append("progress")
    pager = world.runtime.pager
    if not pager.is_managed(world.spare):
        actions.append("claim")
    else:
        actions.append("release")
    # Late clustering (regroup) is an enclave-side idiom of the paging
    # policies; regrouping pin_all's sealed set would self-sabotage.
    if policy not in ("pin_all", "oram") and \
            len(world.resident_pool()) >= 2:
        actions.append("regroup")
    actions.append("balloon")
    quota = world.driver_state().quota_pages
    if quota - SQUEEZE_CUT >= QUOTA_FLOOR:
        actions.append("squeeze")
    if world.squeezed:
        actions.append("unsqueeze")
    if policy != "oram" and world.resident_pool():
        actions.append("unmap")
    if policy not in ("pin_all", "oram") and world.swapped_pool():
        actions.append("tamper")
    if policy not in ("pin_all", "oram") and world.swapped_pool():
        actions.append("deny:2")
        actions.append("deny:6")
    # Whole-enclave suspension is the OS's §5.2.1 big hammer; it is
    # never used on a sealed (pin_all) working set, and the ORAM
    # policy's tree pages are not suspend-restorable in the model.
    if policy not in ("pin_all", "oram"):
        actions.append("suspend")
    actions.append("crash")
    actions.append("rollback")
    return actions


def apply_action(world, action):
    """Apply one host action, classifying the outcome the way the
    chaos campaign does: structured aborts are safe terminals, any
    other escape is an invariant violation."""
    try:
        _dispatch(world, action)
    except EnclaveTerminated as exc:
        world.outcome = OUTCOME_ABORTED
        world.reason = exc.reason.value if exc.reason else "unclassified"
    except IntegrityError:
        # Host-side rejection (ELDU refused a forged blob): the enclave
        # never ran on the bad state.
        world.outcome = OUTCOME_ABORTED
        world.reason = AbortReason.INTEGRITY.value
    except EnclaveCrashed:
        world.violations.append(
            f"{action}: crash escaped the supervisor restore path")
    except (SgxError, PolicyError) as exc:
        world.outcome = OUTCOME_ABORTED
        world.reason = f"unclassified({type(exc).__name__})"
    _post_checks(world, action)
    return world


def _dispatch(world, action):
    if action.startswith("touch:"):
        index = int(action.split(":", 1)[1])
        world.engine.data_access(world.pool[index],
                                 write=(index % 2 == 1))
        return
    if action == "progress":
        world.engine.progress(ProgressKind.SYSCALL)
        return
    if action == "claim":
        world.runtime.claim([world.spare])
        return
    if action == "release":
        world.runtime.release([world.spare])
        return
    if action == "regroup":
        world.runtime.pager.regroup(world.resident_pool()[:2])
        return
    if action == "balloon":
        world.kernel.request_memory_reduction(world.enclave, 2)
        return
    if action == "squeeze":
        world.driver_state().quota_pages -= SQUEEZE_CUT
        world.squeezed += SQUEEZE_CUT
        return
    if action == "unsqueeze":
        world.driver_state().quota_pages += world.squeezed
        world.squeezed = 0
        return
    if action == "unmap":
        _unmap_resident(world)
        return
    if action == "tamper":
        if world.suspended:
            _tamper_suspend_set(world)
        else:
            _tamper_backing(world)
        return
    if action == "suspend":
        world.kernel.driver.suspend_enclave(world.enclave)
        world.suspended = True
        return
    if action == "resume":
        _resume_suspended(world)
        return
    if action.startswith("deny:"):
        _deny_fetch(world, int(action.split(":", 1)[1]))
        return
    if action == "crash":
        _crash_and_recover(world)
        return
    if action == "rollback":
        _rollback_attack(world)
        return
    raise PolicyError(f"unknown model action {action!r}")


def _unmap_resident(world):
    """The controlled-channel probe: clobber the PTE of a page the
    enclave believes resident, then touch it.  The fault must be
    diagnosed as an attack — servicing it is the leak."""
    target = min(world.resident_pool())
    world.kernel.page_table.drop(target)
    world.engine.data_access(target)
    world.violations.append(
        f"OS-induced fault on resident page {target:#x} was serviced "
        "instead of detected")


def _tamper_backing(world):
    """Forge the sealed blob of a swapped-out page, then touch it; the
    reload must fail integrity verification.  On SGX1 the blob sits in
    the kernel's backing store; on SGX2 it sits in untrusted memory the
    runtime owns (``paging_ops._sealed``) — a Byzantine host can scribble
    on either."""
    import dataclasses

    target = min(world.swapped_pool())
    sealed = getattr(world.runtime.paging_ops, "_sealed", None)
    if sealed is not None:
        sealed[target] = dataclasses.replace(
            sealed[target], mac="forged-by-model")
    else:
        backing = world.kernel.backing
        eid = world.enclave.enclave_id
        blob = backing.get(eid, target)
        backing.substitute(
            eid, target,
            dataclasses.replace(blob, mac="forged-by-model"))
    world.engine.data_access(target)
    world.violations.append(
        f"enclave resumed on tampered page {target:#x} without aborting")


def _tamper_suspend_set(world):
    """Forge one sealed blob of a *suspended* enclave.  Suspension
    (§5.2.1) evicts the whole working set into the kernel backing
    store — under either SGX version, since the driver's big hammer
    bypasses enclave-managed paging — so the consumption point is the
    resume's ELDU train, not a page fault.  The forgery itself is
    silent; ``resume`` must reject it."""
    import dataclasses

    state = world.driver_state()
    in_pool = [base for base in state.suspend_set if base in world.pool]
    target = min(in_pool) if in_pool else min(state.suspend_set)
    backing = world.kernel.backing
    eid = world.enclave.enclave_id
    blob = backing.get(eid, target)
    backing.substitute(
        eid, target,
        dataclasses.replace(blob, mac="forged-by-model"))
    world.suspend_tampered = True


def _resume_suspended(world):
    """Resume a suspended enclave: every suspend-set blob is ELDU-
    restored, and a blob forged while suspended must fail integrity
    verification there — resuming onto forged state is the leak."""
    tampered = world.suspend_tampered
    world.kernel.driver.resume_enclave(world.enclave)
    world.suspended = False
    world.suspend_tampered = False
    if tampered:
        world.violations.append(
            "resume restored a forged suspend-set blob without "
            "aborting")


#: Single-event plans for the deny actions, one per SGX version: the
#: same scripted refusal the chaos campaign arms, straddling the paging
#: retry budget (param 2 is absorbed, param 6 exhausts it).
def _deny_fetch(world, count):
    kind = (FaultKind.DENY_SGX2
            if world.policy_name == "rate_limit_sgx2"
            else FaultKind.DENY_FETCH)
    plan = FaultPlan(seed=0, events=(
        FaultEvent(kind=kind, at_op=0, param=count),))
    injector = FaultInjector(plan, world.kernel, world.enclave).install()
    target = min(p for p in world.pool
                 if not world.kernel.driver.resident(world.enclave, p))
    try:
        injector.advance_to_op(0)
        world.engine.data_access(target)
    finally:
        world.silent_consumption.extend(injector.silent_consumption)
        injector.uninstall()


def _crash_and_recover(world):
    """The host kills the enclave; the supervisor path reclaims the
    corpse, relaunches, replays the journal, and verifies the restored
    state against the uncrashed witness trace."""
    manager = world.manager
    try:
        manager.crash()
    except EnclaveCrashed:
        pass  # the model *is* the host script that killed it
    world.kernel.driver.reclaim_enclave(world.enclave)
    runtime = world.program.launch(world.kernel)
    applied = manager.restore(runtime)
    if state_fingerprint(runtime) != manager.trace[applied]:
        world.violations.append(
            f"recovered state diverged from the uncrashed witness at "
            f"journal position {applied}")
    _adopt(world, runtime)
    world.recoveries += 1


def _rollback_attack(world):
    """Seal a fresh checkpoint, have the host drop it, then crash: the
    restore must detect the rollback via the monotonic counter and
    fail stop with an integrity abort."""
    manager = world.manager
    manager.seal_checkpoint()
    manager.checkpoints.blobs.pop()
    try:
        manager.crash()
    except EnclaveCrashed:
        pass
    world.kernel.driver.reclaim_enclave(world.enclave)
    runtime = world.program.launch(world.kernel)
    manager.restore(runtime)  # must raise IntegrityAbort
    _adopt(world, runtime)
    world.violations.append(
        "restore accepted a rolled-back checkpoint set")


def _adopt(world, runtime):
    """Point every handle at the restored incarnation (the model's
    version of the campaign's ``_adopt``)."""
    world.runtime = runtime
    world.enclave = runtime.enclave
    world.system.runtime = runtime
    world.system.policy = runtime.policy
    if world.policy_name == "broken":
        from repro.modelcheck.toys import break_policy
        break_policy(runtime)
    world.engine = world.program.engine(runtime)
    # Pending quota restores belonged to the dead incarnation, and the
    # relaunched incarnation boots unsuspended (any forged suspend-set
    # blob died with the old enclave id).
    world.squeezed = 0
    world.suspended = False
    world.suspend_tampered = False


def _post_checks(world, action):
    """Per-action safety checks that cannot wait for the global
    invariant pass (they need the action's context)."""
    if world.silent_consumption:
        pages = [hex(v) for v in world.silent_consumption]
        world.violations.append(
            f"tainted blobs consumed without abort: {pages}")
        world.silent_consumption = []


# -- replay -----------------------------------------------------------------

def boot(policy_name):
    """A fresh world for ``policy_name`` (trace position zero)."""
    return World(policy_name)


def replay(policy_name, trace):
    """Deterministically rebuild the world at the end of ``trace``."""
    world = boot(policy_name)
    for action in trace:
        if world.terminal:
            break
        apply_action(world, action)
    return world


def successor(world, action):
    """The world after ``action``, leaving ``world`` untouched."""
    child = copy.deepcopy(world)
    return apply_action(child, action)
