"""Shortest-trace counterexample minimization.

BFS already yields a shortest witness *among explored traces*, but a
violation surfaced from a deep or truncated sweep can carry irrelevant
prefix actions.  :func:`minimize` shrinks a violating trace by greedy
one-at-a-time deletion — drop an action, replay, keep the shorter trace
whenever the violation survives — restarting after every success until
a fixed point.  Deterministic (deletion attempts run left to right) and
sound: the result is validated by replay, never by assumption.

A candidate is *replay-valid* only if every remaining action is enabled
at its step; dropping an enabling action (the ``touch`` before an
``unmap``, say) invalidates the candidate rather than exploring
undefined behaviour.
"""

from __future__ import annotations

from repro.modelcheck.explorer import domain_for
from repro.modelcheck.model import apply_action


def violation_messages(policy_name, trace):
    """Replay ``trace`` and return its violation messages (empty when
    the trace is replay-invalid or safe)."""
    boot_, _, enabled_, _, check_ = domain_for(policy_name)
    world = boot_(policy_name)
    for action in trace:
        if world.terminal or action not in enabled_(world):
            return ()
        _apply(world, action)
    return tuple(world.violations) + tuple(check_(world))


def _apply(world, action):
    from repro.modelcheck import poolworld

    if world.policy_name in poolworld.WORLDS:
        poolworld.apply_action(world, action)
    else:
        apply_action(world, action)


def minimize(policy_name, trace):
    """The shortest sub-trace of ``trace`` still violating an invariant.

    Returns ``(minimized_trace, messages)``.  Raises ``ValueError``
    when the input trace does not reproduce a violation — a minimizer
    that silently accepts a non-witness would hide replay drift.
    """
    trace = tuple(trace)
    messages = violation_messages(policy_name, trace)
    if not messages:
        raise ValueError(
            f"trace does not violate any invariant under "
            f"{policy_name!r}: {trace!r}")
    shrunk = True
    while shrunk:
        shrunk = False
        for index in range(len(trace)):
            candidate = trace[:index] + trace[index + 1:]
            candidate_messages = violation_messages(
                policy_name, candidate)
            if candidate_messages:
                trace = candidate
                messages = candidate_messages
                shrunk = True
                break
    return trace, messages
