"""Deliberately broken runtimes: seeded bugs the checker must catch.

The model checker's value is falsifiable only if it *finds* unsafe
states when they exist.  ``--policy broken`` boots the rate-limited
runtime and then knocks out the universal resident-fault attack check —
precisely the controlled-channel leak of §2.2 that Autarky's §5.2.1
check closes.  The checker must report an invariant violation with a
short counterexample trace (touch a page, clobber its PTE, touch it
again), and the minimizer must shrink any longer witness back to that
core.
"""

from __future__ import annotations

from repro.runtime.policies import RateLimitPolicy


class LeakyRateLimitPolicy(RateLimitPolicy):
    """Rate limiting minus the §5.2.1 resident-fault check.

    An OS-induced fault on a resident page is handed back to the OS
    for service (``os_resolve`` remaps it and thereby observes the
    address) instead of being diagnosed as an attack — the exact
    pre-Autarky behaviour the model checker's ``unmap`` action probes
    for.
    """

    def on_fault(self, vaddr, access):
        if self.pager.is_resident(vaddr):
            # Deliberate bug: the naive handler services the fault and
            # reopens the controlled channel.
            self.pager.channel.call(
                "os_resolve", self.pager.enclave, vaddr)
            self.legit_faults += 1
            return
        super().on_fault(vaddr, access)


def break_policy(runtime):
    """Swap the live policy's behaviour for the leaky variant in place.

    Reclassing (rather than rebuilding) keeps every counter, limiter,
    and pager attachment of the healthy policy, so the broken world is
    bit-identical to ``rate_limit`` until the missing check matters.
    """
    runtime.policy.__class__ = LeakyRateLimitPolicy
    return runtime
