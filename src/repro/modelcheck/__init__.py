"""Bounded exhaustive model checking of host-action interleavings.

The chaos campaign samples the space of hostile host behaviours; this
package *enumerates* it, bounded by depth and state count, over tiny
but fully real systems — every transition drives the same runtime code
the experiments use, and every reached state is checked against the
full invariant set.  See ``docs/model-checking.md``.
"""

from repro.modelcheck.explorer import Exploration, explore
from repro.modelcheck.minimize import minimize, violation_messages
from repro.modelcheck.model import POLICIES

__all__ = [
    "Exploration",
    "explore",
    "minimize",
    "violation_messages",
    "POLICIES",
]
