"""``python -m repro modelcheck`` — bounded exhaustive state search.

Explores every host-action interleaving up to ``--depth`` over each
requested policy's tiny system, checking the full invariant set at
every state.  Exit status 0 only when *no* explored state violates an
invariant (``--policy broken`` is therefore expected to exit 1 — it
exists to prove the checker finds seeded bugs).

Violating traces are minimized before reporting; ``--export DIR``
writes each terminal-class witness (and each minimized violation) as a
replayable ``repro chaos --plan`` envelope.
"""

from __future__ import annotations

import argparse
import json
import os

from repro.modelcheck.explorer import explore
from repro.modelcheck.export import export_witnesses, witness_payload
from repro.modelcheck.minimize import minimize
from repro.modelcheck.model import POLICIES


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro modelcheck",
        description="bounded exhaustive exploration of host-action "
                    "interleavings over tiny real systems",
    )
    parser.add_argument(
        "--policy", default="all",
        help="world to explore: one of "
             f"{', '.join(POLICIES)}, 'pool' (two-tenant pool-"
             "failover world), 'broken' (seeded-bug toy, expected to "
             "fail), or 'all' (the paging policies; default)",
    )
    parser.add_argument(
        "--depth", type=int, default=3, metavar="N",
        help="maximum trace length to explore (default: 3)",
    )
    parser.add_argument(
        "--max-states", type=int, default=400, metavar="N",
        help="distinct-state budget per policy; the cut is "
             "deterministic (default: 400)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for frontier expansion; results are "
             "bit-identical to --jobs 1 (default: 1)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--export", metavar="DIR",
        help="write every witness trace and minimized violation as a "
             "replayable 'repro chaos --plan' JSON file under DIR",
    )
    return parser


def run(argv=None):
    args = build_parser().parse_args(argv)
    if args.policy == "all":
        policies = POLICIES
    else:
        policies = tuple(
            p.strip() for p in args.policy.split(",") if p.strip())
    results = []
    for policy in policies:
        result = explore(policy, depth=args.depth,
                         max_states=args.max_states, jobs=args.jobs)
        minimized = [
            minimize(policy, trace) for trace, _ in result.violations
        ]
        results.append((result, minimized))
        if args.export:
            _export(args.export, result, minimized)
    ok = all(result.ok for result, _ in results)
    if args.format == "json":
        print(json.dumps(_as_json(results, args, ok), indent=2,
                         sort_keys=True))
    else:
        _print_text(results, args, ok)
    return 0 if ok else 1


def _export(directory, result, minimized):
    os.makedirs(directory, exist_ok=True)
    payloads = dict(export_witnesses(result))
    for index, (trace, _messages) in enumerate(minimized):
        payload = witness_payload(result.policy, trace, None)
        if payload is not None:
            payloads[f"violation-{index}"] = payload
    for label, payload in payloads.items():
        name = f"{result.policy}-{label.replace('/', '-')}.json"
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)


def _print_text(results, args, ok):
    for result, minimized in results:
        status = "OK" if result.ok else "UNSAFE"
        truncated = " (truncated)" if result.truncated else ""
        print(f"{result.policy:15s} {status:6s} "
              f"states={result.states} "
              f"transitions={result.transitions} "
              f"depth={result.depth_reached}/{result.depth}"
              f"{truncated} digest={result.digest[:16]}")
        for label, count in sorted(result.terminals.items()):
            print(f"  terminal {label}: {count}")
        for (trace, messages), (short, short_messages) in zip(
                result.violations, minimized):
            print(f"  VIOLATION via {list(trace)}")
            print(f"    minimized: {list(short)}")
            for message in short_messages:
                print(f"    {message}")
    print("verdict:", "OK" if ok else "FAIL")


def _as_json(results, args, ok):
    return {
        "ok": ok,
        "depth": args.depth,
        "max_states": args.max_states,
        "policies": [
            {
                **result.as_json(),
                "minimized_violations": [
                    {"trace": list(short), "messages": list(messages)}
                    for short, messages in minimized
                ],
            }
            for result, minimized in results
        ],
    }
