"""Machine-checked invariants, evaluated at every explored state.

Each invariant is a function ``(world) -> list of violation strings``;
:func:`check_world` runs them all.  They are the model-checking
counterpart of the chaos campaign's ``_check_invariants`` — the same
safety story, but asserted on *every* reachable state instead of once
per run:

* **three-way safety** — the world is running cleanly, degraded within
  its declared budget, or ended in a structured abort; a dead enclave
  in a non-aborted world is the classic unsafe state;
* **no silent tainted consumption** — a forged or replayed blob that
  reached enclave memory without an abort (tracked per action);
* **masked faults only** — every fault the OS observed carries the
  enclave base address and no access-type bits (§5.1.2);
* **EPC page parity** — free frames plus every enclave's backed pages
  equal the configured EPC size (no lost or double-owned frames);
* **lifecycle protocol** — the runtime oracle's automata (the same
  spec the static analyzer runs) observed no out-of-order ISA,
  eviction, resume, or recovery step.
"""

from __future__ import annotations

from repro.modelcheck.model import OUTCOME_ABORTED


def degradation_budget(world):
    pager = world.runtime.pager
    if pager.degradations > pager.max_degradations:
        return [
            f"degradations ({pager.degradations}) exceeded the declared "
            f"budget ({pager.max_degradations})"
        ]
    return []


def dead_enclave(world):
    if world.enclave.dead and world.outcome != OUTCOME_ABORTED:
        return ["enclave is dead but the world did not abort"]
    return []


def masked_faults(world):
    base = world.enclave.base
    out = []
    for fault in world.kernel.fault_log:
        if (fault.vaddr != base or fault.write or fault.exec_
                or fault.present):
            out.append(
                f"unmasked fault leaked to the OS: {fault.vaddr:#x} "
                f"(write={fault.write}, present={fault.present})")
            break
    return out


def epc_parity(world):
    epc = world.kernel.epc
    backed = sum(
        len(enclave.backed)
        for enclave in world.kernel.instr.enclaves.values())
    if epc.free_pages + backed != epc.total_pages:
        return [
            f"EPC parity broken: {epc.free_pages} free + {backed} "
            f"backed != {epc.total_pages} total"
        ]
    return []


def lifecycle_protocol(world):
    return [
        f"lifecycle oracle: [{rule}] {message}"
        for rule, _seq, message in world.oracle.violations
    ]


INVARIANTS = (
    degradation_budget,
    dead_enclave,
    masked_faults,
    epc_parity,
    lifecycle_protocol,
)


def check_world(world):
    """All invariant violations of one world (empty when safe)."""
    out = []
    for invariant in INVARIANTS:
        out.extend(invariant(world))
    return out
