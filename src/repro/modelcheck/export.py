"""Export model-checker witnesses as replayable chaos fault plans.

A terminal trace found by the explorer is only worth trusting if the
*full-scale* runtime — the 240-op chaos campaign workload, not the tiny
model — reaches the same outcome class under the same hostile acts.
This module maps a model trace's host actions onto
:class:`repro.chaos.plan.FaultPlan` events and wraps them in the JSON
envelope ``python -m repro chaos --plan`` replays and verifies.

Workload actions (``touch``/``progress``/``claim``/…) have no plan
counterpart — the campaign drives its own workload — so only the
hostile actions are mapped.  Events are spaced 20 ops apart starting at
op 60, past the campaign's warm-up prologue, preserving the trace's
action order.
"""

from __future__ import annotations

from repro.chaos.plan import FaultEvent, FaultKind, FaultPlan
from repro.modelcheck.model import SQUEEZE_CUT

#: First mapped event's campaign op index, and the spacing between
#: events: late enough to clear warm-up, sparse enough that each act's
#: consequences settle before the next.
FIRST_OP = 60
OP_SPACING = 20

#: Model actions with a campaign fault-kind counterpart.  ``deny`` maps
#: per SGX version; parameterless entries use the model's magnitudes.
_ACTION_KINDS = {
    "tamper": (FaultKind.TAMPER_BACKING, 1),
    "unmap": (FaultKind.UNMAP_RESIDENT, 1),
    "crash": (FaultKind.CRASH_ENCLAVE, 1),
    "balloon": (FaultKind.BALLOON_REQUEST, 2),
    "squeeze": (FaultKind.QUOTA_SQUEEZE, SQUEEZE_CUT),
}

#: Policies the chaos campaign can run (the model's ``oram`` and the
#: seeded-bug ``broken`` world have no campaign counterpart).
REPLAYABLE_POLICIES = ("pin_all", "clusters", "rate_limit",
                       "rate_limit_sgx2")


def plan_for_trace(policy_name, trace):
    """The :class:`FaultPlan` equivalent of a model trace's hostile
    actions, or ``None`` when nothing maps (pure-workload trace)."""
    events = []
    for action in trace:
        mapped = _map_action(policy_name, action)
        if mapped is None:
            continue
        kind, param = mapped
        events.append(FaultEvent(
            kind=kind,
            at_op=FIRST_OP + OP_SPACING * len(events),
            param=param,
        ))
    if not events:
        return None
    return FaultPlan(seed=0, events=tuple(events))


def _map_action(policy_name, action):
    if action in _ACTION_KINDS:
        return _ACTION_KINDS[action]
    if action.startswith("deny:"):
        kind = (FaultKind.DENY_SGX2
                if policy_name == "rate_limit_sgx2"
                else FaultKind.DENY_FETCH)
        return kind, int(action.split(":", 1)[1])
    return None


def witness_payload(policy_name, trace, expected_outcome):
    """The ``--plan`` envelope for one witness trace, or ``None`` when
    the trace has no mappable hostile action or the policy has no
    campaign counterpart."""
    if policy_name not in REPLAYABLE_POLICIES:
        return None
    plan = plan_for_trace(policy_name, trace)
    if plan is None:
        return None
    return {
        "plan": plan.to_json(),
        "policy": policy_name,
        "expected_outcome": expected_outcome,
        "source_trace": list(trace),
    }


def export_witnesses(exploration):
    """``label -> payload`` for every exportable witness trace of one
    :class:`repro.modelcheck.explorer.Exploration`."""
    out = {}
    for label, trace in sorted(exploration.witnesses.items()):
        outcome = label.split("/", 1)[0]
        payload = witness_payload(exploration.policy, trace, outcome)
        if payload is not None:
            out[label] = payload
    return out
