"""Bounded exhaustive exploration of host-action interleavings.

A breadth-first sweep over the tree of :mod:`repro.modelcheck.model`
worlds: start from a freshly booted tiny system, apply every enabled
host action to every frontier state, and check every successor against
the full invariant set.  States are deduplicated by canonical
fingerprint (:meth:`World.state_key`), which is also the cycle
detector — a trace that loops back to a known state is simply not
expanded again.

Determinism is load-bearing.  Exploration order is (frontier order ×
canonical action order); workers only *expand* (replay a trace, apply
each enabled action, report the successors) while the merge — dedup,
budgets, violation recording — runs sequentially in that canonical
order.  ``--jobs N`` therefore produces the bit-identical digest of
``--jobs 1``, the same contract the chaos campaign and the experiment
sweeps keep via :func:`repro.parallel.runner.run_indexed`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.modelcheck import model, poolworld
from repro.modelcheck.invariants import check_world
from repro.parallel.runner import run_indexed

#: Domain dispatch: which module implements a policy name's world.
#: The single-enclave model covers the paging policies; ``pool`` is
#: the two-tenant pool-failover world.  Each domain provides
#: ``(boot, replay, enabled_actions, successor, check_world)``.
_DOMAINS = {
    name: (poolworld.boot, poolworld.replay,
           poolworld.enabled_actions, poolworld.successor,
           poolworld.check_world)
    for name in poolworld.WORLDS
}
_MODEL_DOMAIN = (model.boot, model.replay, model.enabled_actions,
                 model.successor, check_world)


def domain_for(policy_name):
    """The ``(boot, replay, enabled_actions, successor, check_world)``
    quintuple implementing ``policy_name``'s world."""
    return _DOMAINS.get(policy_name, _MODEL_DOMAIN)


@dataclass
class Exploration:
    """What one bounded sweep over a policy's action tree found."""

    policy: str
    depth: int
    max_states: int
    states: int = 0
    transitions: int = 0
    depth_reached: int = 0
    truncated: bool = False
    #: ``(trace, messages)`` per distinct violating state, in discovery
    #: order (the canonical order, so independent of ``jobs``).
    violations: list = field(default_factory=list)
    #: ``outcome_label -> count`` over distinct terminal states, where
    #: the label is ``outcome/reason`` (e.g. ``aborted/attack-detected``).
    terminals: dict = field(default_factory=dict)
    #: ``outcome_label -> shortest trace`` reaching that terminal class
    #: first (BFS order makes the first witness a shortest one).
    witnesses: dict = field(default_factory=dict)
    #: sha256 over the sorted canonical state keys — the jobs-invariant
    #: identity of the explored state space.
    digest: str = ""

    @property
    def ok(self):
        return not self.violations

    def as_json(self):
        return {
            "policy": self.policy,
            "depth": self.depth,
            "depth_reached": self.depth_reached,
            "max_states": self.max_states,
            "states": self.states,
            "transitions": self.transitions,
            "truncated": self.truncated,
            "ok": self.ok,
            "violations": [
                {"trace": list(trace), "messages": list(messages)}
                for trace, messages in self.violations
            ],
            "terminals": dict(sorted(self.terminals.items())),
            "witnesses": {
                label: list(trace)
                for label, trace in sorted(self.witnesses.items())
            },
            "digest": self.digest,
        }


def _expand_task(item):
    """Worker: replay one frontier trace and expand every enabled
    action.  Returns plain picklable tuples; all bookkeeping happens in
    the sequential merge."""
    policy_name, trace = item
    _, replay_, enabled_, successor_, check_ = domain_for(policy_name)
    world = replay_(policy_name, list(trace))
    children = []
    for action in enabled_(world):
        child = successor_(world, action)
        messages = tuple(child.violations) + tuple(check_(child))
        children.append((
            action,
            child.state_key(),
            child.outcome,
            child.reason,
            messages,
            child.terminal or bool(messages),
        ))
    return tuple(children)


def _terminal_label(outcome, reason):
    return f"{outcome}/{reason}" if reason else outcome


def explore(policy_name, depth=3, max_states=400, jobs=1):
    """Exhaustively explore ``policy_name``'s action tree to ``depth``.

    ``max_states`` bounds the number of *distinct* states admitted;
    once it is hit further new states are dropped (deterministically —
    the cut falls at the same point in canonical order for any
    ``jobs``) and the result is marked ``truncated``.
    """
    result = Exploration(policy=policy_name, depth=depth,
                         max_states=max_states)
    boot_, _, _, _, check_ = domain_for(policy_name)
    root = boot_(policy_name)
    seen = {root.state_key()}
    result.states = 1
    root_messages = tuple(root.violations) + tuple(check_(root))
    frontier = []
    if root_messages:
        result.violations.append(((), root_messages))
    elif not root.terminal:
        frontier.append(())

    level = 0
    while frontier and level < depth:
        level += 1
        expansions = run_indexed(
            _expand_task,
            [(policy_name, trace) for trace in frontier],
            jobs,
        )
        next_frontier = []
        for trace, children in zip(frontier, expansions):
            for action, key, outcome, reason, messages, terminal \
                    in children:
                result.transitions += 1
                if key in seen:
                    continue
                if result.states >= result.max_states:
                    result.truncated = True
                    continue
                seen.add(key)
                result.states += 1
                child_trace = trace + (action,)
                if messages:
                    result.violations.append((child_trace, messages))
                if terminal:
                    label = _terminal_label(outcome, reason)
                    if messages:
                        label = "violation"
                    result.terminals[label] = \
                        result.terminals.get(label, 0) + 1
                    result.witnesses.setdefault(label, child_trace)
                else:
                    next_frontier.append(child_trace)
        result.depth_reached = level
        frontier = next_frontier

    result.digest = hashlib.sha256(
        repr(sorted(seen)).encode()).hexdigest()
    return result
