"""The pool world: two tenants, two replicas each, one shared EPC.

The single-enclave model (:mod:`repro.modelcheck.model`) checks the
paging protocol; this world checks the *service* layer above it — the
tenant-pool failover, live-churn, and suspend/resume machinery of
:mod:`repro.service` — on the smallest system where those behaviours
exist: two tenants of two replica enclaves each, supervised by the
real :class:`~repro.recovery.supervisor.RecoverySupervisor` on one
shared kernel.

Actions are the service's fault family shrunk to determinism: a
request against either tenant (served by the elected primary, failed
over to the sibling, or structurally shed when the whole pool is
down), an AEX storm against tenant 0's primary, suspending and
resuming the lowest eligible replica (§5.2.1 whole-enclave swap),
forging a suspended replica's suspend-set blob (resume must reject
it), and retiring / re-admitting tenant 1 (live churn with EPC-parity
teardown).  Invariants assert what the service promises: request
accounting balances, EPC frames are never lost or double-owned,
faults leak only masked addresses, and a pool with no healthy replica
sheds instead of crashing.

Exhaustive at depth 3 this covers every interleaving of failover
around suspension, churn, and integrity aborts — the schedules the
seeded chaos runs sample but cannot enumerate.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass

from repro.errors import (
    EnclaveCrashed,
    EnclaveTerminated,
    IntegrityAbort,
    IntegrityError,
    Quarantined,
    SgxError,
)
from repro.host.kernel import HostKernel
from repro.recovery.program import EnclaveProgram
from repro.recovery.state import canonical_state
from repro.recovery.supervisor import (
    RUNNING,
    RecoverySupervisor,
    RestartPolicy,
)
from repro.runtime.libos import EnclaveLayout
from repro.sgx.params import PAGE_SIZE

#: Policy names this module implements (the explorer's dispatch key).
WORLDS = ("pool",)

N_TENANTS = 2
N_REPLICAS = 2

#: Heap pages each request cycles over (two touches per request walk
#: the pool, so every page is exercised within two requests).
POOL_PAGES = 3

#: Shared EPC: four tiny enclaves fit with headroom — pool failover,
#: not paging pressure, is what this world explores (the single-
#: enclave model owns the pressure story).
EPC_PAGES = 96

#: Address-space stride between replica enclaves (the service's
#: multi-enclave grid, shrunk).
STRIDE = 0x10_0000_0000

#: Interrupt/resume rounds one ``storm`` action fires (§3.2).
STORM_ROUNDS = 2

#: Free frames required before ``arrive`` re-admits tenant 1 (a tiny
#: replica's eager footprint is ~8 frames; two replicas plus margin).
ARRIVE_HEADROOM = 24

#: One restart per replica before quarantine: the smallest budget
#: where depth-3 traces can reach both a recovery *and* a quarantine-
#: driven failover.
MAX_RESTARTS = 1


def _tiny_config():
    """The model's tiny rate_limit sizing over the shared EPC."""
    from repro.core.config import SystemConfig

    return SystemConfig.for_policy(
        "rate_limit", max_faults_per_progress=8, grace_faults=16,
        enclave_managed_budget=18,
        epc_pages=EPC_PAGES, quota_pages=18,
        runtime_pages=2, code_pages=2, data_pages=2, heap_pages=8,
    )


def _no_warmup(runtime):
    """rate_limit needs no pre-begin warm-up (picklable no-op)."""


@dataclass
class ReplicaSlot:
    """Model-side bookkeeping for one replica of one tenant."""

    tenant: int
    index: int
    name: str
    suspended: bool = False
    #: A suspend-set blob was forged while this replica was suspended;
    #: its resume must fail integrity verification.
    tampered: bool = False


class PoolWorld:
    """One explored state of the two-tenant pool service."""

    policy_name = "pool"

    def __init__(self):
        self.kernel = HostKernel(epc_pages=EPC_PAGES)
        self.recovery = RecoverySupervisor(
            self.kernel,
            restart_policy=RestartPolicy(max_restarts=MAX_RESTARTS),
        )
        self.engines = {}
        self.replicas = [
            ReplicaSlot(t, r, f"t{t}/r{r}")
            for t in range(N_TENANTS) for r in range(N_REPLICAS)
        ]
        #: Enclave base addresses ever booted — the masked-fault
        #: invariant accepts exactly these vaddrs in the fault log.
        self.bases = set()
        self.departed = [False] * N_TENANTS
        self.issued = [0] * N_TENANTS
        self.served = [0] * N_TENANTS
        self.shed = [0] * N_TENANTS
        self.aborts = [0] * N_TENANTS
        self.recoveries = [0] * N_TENANTS
        self.quarantines = [0] * N_TENANTS
        self.failovers = [0] * N_TENANTS
        self.last_primary = [0] * N_TENANTS
        self.ops = [0] * N_TENANTS
        self.aex = 0
        self.arrivals = 0
        self.departures = 0
        self.arrival_refusals = 0
        self.outcome = "running"
        self.reason = ""
        self.violations = []
        for slot in self.replicas:
            self._boot_replica(slot)

    # -- boot ----------------------------------------------------------------

    def _program(self, slot):
        grid = slot.tenant * N_REPLICAS + slot.index
        return EnclaveProgram(
            config=_tiny_config(),
            layout=EnclaveLayout(
                base=STRIDE * (grid + 1),
                runtime_pages=2, code_pages=2, data_pages=2,
                heap_pages=8,
            ),
            warmup=_no_warmup,
            name=slot.name,
        )

    def _boot_replica(self, slot):
        record = self.recovery.launch(slot.name, self._program(slot))
        self.engines[slot.name] = record.program.engine(record.runtime)
        self.bases.add(record.runtime.enclave.base)

    # -- derived state -------------------------------------------------------

    @property
    def terminal(self):
        return bool(self.violations)

    def _member(self, slot):
        """The supervisor record, or ``None`` after teardown."""
        try:
            return self.recovery.member(slot.name)
        except KeyError:
            return None

    def _live_runtime(self, slot):
        record = self._member(slot)
        if record is None or record.runtime is None:
            return None
        if record.runtime.enclave.dead:
            return None
        return record.runtime

    def _healthy(self, slot):
        if self.departed[slot.tenant] or slot.suspended:
            return False
        record = self._member(slot)
        return record is not None and record.state == RUNNING

    def _peek_primary(self, tenant):
        """The replica a request would run on — *pure* (no failover
        accounting), for action-enabling checks."""
        for slot in self.replicas:
            if slot.tenant == tenant and self._healthy(slot):
                return slot
        return None

    def _elect_primary(self, tenant):
        """Deterministic primary election with failover accounting
        (mirrors :meth:`repro.service.pool.TenantPool.elect_primary`,
        including the all-replicas-unhealthy ``None``)."""
        for slot in self.replicas:
            if slot.tenant != tenant:
                continue
            if self._healthy(slot):
                if slot.index != self.last_primary[tenant]:
                    self.failovers[tenant] += 1
                    self.last_primary[tenant] = slot.index
                return slot
        return None

    def _pool_addrs(self, runtime):
        heap = runtime.regions["heap"].start
        return [heap + i * PAGE_SIZE for i in range(POOL_PAGES)]

    def _tamper_target(self):
        """The lowest replica with a forgeable sealed pool blob: a
        suspended replica's suspend set, or a swapped-out pool page.
        Pure — used by both enabling and dispatch."""
        for slot in self.replicas:
            if self.departed[slot.tenant]:
                continue
            runtime = self._live_runtime(slot)
            if runtime is None:
                continue
            record = self._member(slot)
            if record.state != RUNNING:
                continue
            pool = set(self._pool_addrs(runtime))
            if slot.suspended:
                if slot.tampered:
                    continue
                state = self.kernel.driver.state(runtime.enclave)
                in_pool = sorted(pool & set(state.suspend_set))
                # Prefer a workload page; fall back to any suspend-set
                # blob (runtime/TCS) — resume must verify them all.
                if in_pool:
                    return slot, in_pool[0]
                if state.suspend_set:
                    return slot, min(state.suspend_set)
                continue
            eid = runtime.enclave.enclave_id
            swapped = set(self.kernel.backing.swapped_pages(eid))
            candidates = sorted(
                v for v in pool & swapped
                if not self.kernel.driver.resident(runtime.enclave, v)
            )
            if candidates:
                return slot, candidates[0]
        return None

    def state_key(self):
        """Canonical identity for dedup and the jobs digest."""
        tenants = tuple(
            (self.departed[t], self.issued[t], self.served[t],
             self.shed[t], self.aborts[t], self.recoveries[t],
             self.quarantines[t], self.failovers[t],
             self.last_primary[t], self.ops[t])
            for t in range(N_TENANTS)
        )
        replicas = []
        for slot in self.replicas:
            record = self._member(slot)
            if record is None:
                replicas.append((slot.name, "gone"))
                continue
            runtime = self._live_runtime(slot)
            body = (canonical_state(runtime)
                    if runtime is not None else ("dead",))
            replicas.append((
                slot.name, record.state, slot.suspended,
                slot.tampered, record.restarts, body,
            ))
        raw = repr((
            tenants,
            tuple(replicas),
            self.kernel.epc.free_pages,
            self.aex,
            self.arrivals,
            self.departures,
            self.arrival_refusals,
            tuple(self.violations),
        )).encode()
        return hashlib.sha256(raw).hexdigest()


# -- the action alphabet -----------------------------------------------------

def enabled_actions(world):
    """Host/service actions applicable in ``world``, canonical order.
    Pure: enabling checks never mutate the world."""
    if world.terminal:
        return []
    actions = []
    for t in range(N_TENANTS):
        # A request against a pool with no healthy replica is enabled
        # on purpose: the structured shed *is* the behaviour under
        # check (the unguarded-failover case).
        if not world.departed[t]:
            actions.append(f"req:{t}")
    if world._peek_primary(0) is not None:
        actions.append("storm")
    if any(world._healthy(slot) for slot in world.replicas):
        actions.append("suspend")
    if any(slot.suspended and world._live_runtime(slot) is not None
           for slot in world.replicas):
        actions.append("resume")
    if world._tamper_target() is not None:
        actions.append("tamper")
    if not world.departed[1]:
        actions.append("retire")
    elif world.kernel.epc.free_pages >= ARRIVE_HEADROOM:
        actions.append("arrive")
    return actions


def apply_action(world, action):
    """Apply one action.  The pool world handles structured aborts
    *inside* the actions (the service recovers and fails over rather
    than ending the run); an exception escaping to here is itself an
    invariant violation."""
    try:
        _dispatch(world, action)
    except (EnclaveTerminated, IntegrityError, EnclaveCrashed,
            SgxError) as exc:
        world.violations.append(
            f"{action}: {type(exc).__name__} escaped the pool's "
            f"failover path: {exc}")
    return world


def _dispatch(world, action):
    if action.startswith("req:"):
        _request(world, int(action.split(":", 1)[1]))
        return
    if action == "storm":
        _storm(world)
        return
    if action == "suspend":
        _suspend(world)
        return
    if action == "resume":
        _resume(world)
        return
    if action == "tamper":
        _tamper(world)
        return
    if action == "retire":
        _retire(world)
        return
    if action == "arrive":
        _arrive(world)
        return
    raise SgxError(f"unknown pool action {action!r}")


def _request(world, tenant):
    """One request: elect a primary, touch two pool pages, fail over
    on abort.  No healthy replica → structured shed, never a crash."""
    world.issued[tenant] += 1
    slot = world._elect_primary(tenant)
    if slot is None:
        world.shed[tenant] += 1
        return
    runtime = world._live_runtime(slot)
    pool = world._pool_addrs(runtime)
    k = world.ops[tenant]
    engine = world.engines[slot.name]
    try:
        engine.data_access(pool[k % POOL_PAGES])
        engine.data_access(pool[(k + 1) % POOL_PAGES], write=True)
    except (EnclaveTerminated, IntegrityError) as exc:
        world.aborts[tenant] += 1
        world.shed[tenant] += 1
        _recover_replica(world, slot, exc)
        return
    world.ops[tenant] += 2
    world.served[tenant] += 1


def _recover_replica(world, slot, cause):
    """The service's abort pipeline: mark down, bounded restart,
    quarantine on exhausted budget.  The pool carries the tenant
    either way — a quarantined replica just stays unhealthy."""
    tenant = slot.tenant
    world.recovery.mark_down(slot.name, cause)
    try:
        world.recovery.recover(slot.name)
    except (Quarantined, IntegrityAbort):
        world.quarantines[tenant] += 1
        return
    world.recoveries[tenant] += 1
    record = world.recovery.member(slot.name)
    world.engines[slot.name] = record.program.engine(record.runtime)
    slot.suspended = False
    slot.tampered = False


def _storm(world):
    """A train of asynchronous exits against tenant 0's primary — the
    §3.2 interrupt channel.  Costs cycles, never correctness."""
    slot = world._elect_primary(0)
    if slot is None:
        return
    runtime = world._live_runtime(slot)
    cpu, tcs = world.kernel.cpu, runtime.tcs
    for _ in range(STORM_ROUNDS):
        cpu.interrupt(runtime.enclave, tcs)
        cpu.resume_from_interrupt(runtime.enclave, tcs)
    world.aex += STORM_ROUNDS


def _suspend(world):
    """Suspend the lowest healthy replica (§5.2.1 whole-enclave swap):
    its pool must route around it until resume."""
    for slot in world.replicas:
        if world._healthy(slot):
            runtime = world._live_runtime(slot)
            world.kernel.driver.suspend_enclave(runtime.enclave)
            slot.suspended = True
            return


def _resume(world):
    """Resume the lowest suspended replica.  A blob forged while it
    was suspended must fail ELDU verification — that abort is
    structured (the replica recovers or is quarantined); resuming
    *onto* the forged state is the violation."""
    for slot in world.replicas:
        if not slot.suspended or world._live_runtime(slot) is None:
            continue
        runtime = world._live_runtime(slot)
        tampered = slot.tampered
        slot.tampered = False
        try:
            world.kernel.driver.resume_enclave(runtime.enclave)
        except (IntegrityError, EnclaveTerminated) as exc:
            slot.suspended = False
            world.aborts[slot.tenant] += 1
            _recover_replica(world, slot, exc)
            return
        slot.suspended = False
        if tampered:
            world.violations.append(
                "resume restored a forged suspend-set blob without "
                "aborting")
        return


def _tamper(world):
    """Forge the lowest forgeable sealed pool blob.  Against a running
    replica the next touch consumes it (immediate, like the model's
    ``tamper``); against a suspended replica the forgery is silent and
    ``resume`` is the consumption point."""
    import dataclasses

    found = world._tamper_target()
    if found is None:
        return
    slot, target = found
    runtime = world._live_runtime(slot)
    eid = runtime.enclave.enclave_id
    backing = world.kernel.backing
    blob = backing.get(eid, target)
    backing.substitute(
        eid, target, dataclasses.replace(blob, mac="forged-by-model"))
    if slot.suspended:
        slot.tampered = True
        return
    try:
        world.engines[slot.name].data_access(target)
    except (EnclaveTerminated, IntegrityError) as exc:
        world.aborts[slot.tenant] += 1
        _recover_replica(world, slot, exc)
        return
    world.violations.append(
        f"enclave resumed on tampered page {target:#x} without "
        "aborting")


def _retire(world):
    """Live churn, departure half: tear tenant 1's replicas down and
    assert EPC parity — every frame they held comes back, none of
    anyone else's do."""
    held = 0
    before = world.kernel.epc.free_pages
    for slot in world.replicas:
        if slot.tenant != 1:
            continue
        record = world._member(slot)
        if record is None:
            continue
        runtime = world._live_runtime(slot)
        if runtime is not None:
            held += len(runtime.enclave.backed)
        world.recovery.teardown(slot.name)
        world.engines.pop(slot.name, None)
        slot.suspended = False
        slot.tampered = False
    freed = world.kernel.epc.free_pages - before
    if freed != held:
        world.violations.append(
            f"EPC parity broken retiring tenant 1: freed {freed} "
            f"frames, replicas held {held}")
    world.departed[1] = True
    world.departures += 1


def _arrive(world):
    """Live churn, arrival half: re-admit tenant 1 with a fresh pool.
    A boot failure under EPC pressure is a structured refusal — the
    partial pool is reclaimed and the tenant stays departed."""
    booted = []
    try:
        for slot in world.replicas:
            if slot.tenant != 1:
                continue
            slot.suspended = False
            slot.tampered = False
            world._boot_replica(slot)
            booted.append(slot)
    except (SgxError, EnclaveTerminated, EnclaveCrashed):
        for slot in booted:
            world.recovery.teardown(slot.name)
            world.engines.pop(slot.name, None)
        world.arrival_refusals += 1
        return
    world.departed[1] = False
    world.last_primary[1] = 0
    world.arrivals += 1


# -- invariants --------------------------------------------------------------

def _accounting_balance(world):
    out = []
    for t in range(N_TENANTS):
        if world.served[t] + world.shed[t] != world.issued[t]:
            out.append(
                f"tenant {t} accounting broken: {world.served[t]} "
                f"served + {world.shed[t]} shed != "
                f"{world.issued[t]} issued")
    return out


def _epc_parity(world):
    epc = world.kernel.epc
    backed = sum(
        len(enclave.backed)
        for enclave in world.kernel.instr.enclaves.values())
    if epc.free_pages + backed != epc.total_pages:
        return [
            f"EPC parity broken: {epc.free_pages} free + {backed} "
            f"backed != {epc.total_pages} total"
        ]
    return []


def _masked_faults(world):
    for fault in world.kernel.fault_log:
        if (fault.vaddr not in world.bases or fault.write
                or fault.exec_ or fault.present):
            return [
                f"unmasked fault leaked to the OS: {fault.vaddr:#x} "
                f"(write={fault.write}, present={fault.present})"
            ]
    return []


def _suspension_consistency(world):
    out = []
    for slot in world.replicas:
        runtime = world._live_runtime(slot)
        if runtime is None:
            continue
        record = world._member(slot)
        if record.state != RUNNING:
            # A quarantined corpse may die mid-resume; it is out of
            # the election and its driver flag no longer matters.
            continue
        state = world.kernel.driver.state(runtime.enclave)
        if state.suspended != slot.suspended:
            out.append(
                f"replica {slot.name} suspension state diverged: "
                f"driver={state.suspended} pool={slot.suspended}")
    return out


INVARIANTS = (
    _accounting_balance,
    _epc_parity,
    _masked_faults,
    _suspension_consistency,
)


def check_world(world):
    """All invariant violations of one pool world (empty when safe)."""
    out = []
    for invariant in INVARIANTS:
        out.extend(invariant(world))
    return out


# -- explorer entry points ---------------------------------------------------

def boot(policy_name):
    if policy_name not in WORLDS:
        raise SgxError(
            f"poolworld does not implement {policy_name!r}")
    return PoolWorld()


def replay(policy_name, trace):
    world = boot(policy_name)
    for action in trace:
        if world.terminal:
            break
        apply_action(world, action)
    return world


def successor(world, action):
    child = copy.deepcopy(world)
    return apply_action(child, action)
