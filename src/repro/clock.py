"""Deterministic cycle accounting for the whole simulation.

Every component of the stack (SGX instructions, OS syscalls, the Autarky
runtime, ORAM, application compute) charges cycles to a single shared
:class:`Clock`.  Charges carry a *category* label so experiments can
reconstruct the stacked-bar breakdowns the paper reports (Figure 5).

Using a simulated clock instead of wall time makes every benchmark
deterministic and noise-free — the same property the paper exploits in
the controlled channel itself.
"""

from __future__ import annotations

from collections import defaultdict


class Category:
    """Canonical charge categories (string constants, not an enum, so
    components may add their own without central coordination)."""

    COMPUTE = "compute"                 # application work
    TLB_FILL = "tlb_fill"               # page walks + SGX checks
    AEX_ERESUME = "aex_eresume"         # enclave preemption pair
    EENTER_EEXIT = "eenter_eexit"       # fault-handler invocation pair
    AUTARKY_HANDLER = "autarky_handler"  # in-enclave paging logic
    SGX_PAGING = "sgx_paging"           # EWB/ELDU/EAUG/... incl. crypto
    OS = "os"                           # host kernel / driver work
    EXITLESS = "exitless"               # exitless host-call channel
    BACKOFF = "backoff"                 # retry waits on failed host calls
    RECOVERY = "recovery"               # checkpoint/journal/replay work
    ORAM = "oram"                       # PathORAM protocol work
    OBLIVIOUS_SCAN = "oblivious_scan"   # CMOV linear scans (uncached ORAM)


class Clock:
    """A monotonically increasing cycle counter with per-category totals.

    ``charge`` is the hottest call in the simulator (every walk, every
    instruction, every compute block), hence ``__slots__``.
    """

    __slots__ = ("frequency_hz", "cycles", "by_category")

    def __init__(self, frequency_hz=3.5e9):
        self.frequency_hz = frequency_hz
        self.cycles = 0
        self.by_category = defaultdict(int)

    def charge(self, cycles, category=Category.COMPUTE):
        """Advance simulated time by ``cycles``, booked under ``category``."""
        if cycles < 0:
            raise ValueError(f"negative charge: {cycles}")
        self.cycles += cycles
        self.by_category[category] += cycles

    def seconds(self):
        """Simulated elapsed time in seconds."""
        return self.cycles / self.frequency_hz

    def snapshot(self):
        """An immutable copy of the per-category totals (for deltas)."""
        return dict(self.by_category)

    def delta_since(self, snapshot):
        """Per-category cycles charged since ``snapshot`` was taken."""
        return {
            cat: total - snapshot.get(cat, 0)
            for cat, total in self.by_category.items()
            if total - snapshot.get(cat, 0)
        }

    def reset(self):
        self.cycles = 0
        self.by_category.clear()

    def __repr__(self):
        return f"Clock(cycles={self.cycles})"
