"""The multi-enclave recovery supervisor.

Drives a fleet of enclave programs on one kernel, restoring crashed or
aborted members instead of dying with them:

state machine per enclave (see docs/recovery.md)::

    RUNNING --crash/abort--> DOWN --restore ok--> RUNNING
                              |  (bounded restarts, exponential
                              |   backoff, re-attestation, verified
                              |   checkpoint+journal replay)
                              +--budget exhausted--> QUARANTINED

Quarantine is deliberate, not a failure mode: restart churn is itself
a signal (§5.3 — one bit of leakage per restart), so an enclave that
keeps dying is taken out of rotation with a structured
``AbortReason.QUARANTINED`` instead of being restarted forever.  The
restart loop is bounded and each wait is charged to the simulated
clock — the analyzer's ``robustness/unbounded-restart`` rule holds this
module to the same standard it imposes on everyone else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clock import Category
from repro.errors import (
    ChaosAbort,
    EnclaveCrashed,
    EnclaveTerminated,
    EpcExhausted,
    HostCallDenied,
    IntegrityAbort,
    Quarantined,
    SgxError,
)
from repro.recovery.manager import RecoveryManager
from repro.runtime.attestation import AttestationService
from repro.runtime.backoff import RetryPolicy

RUNNING = "running"
DOWN = "down"
QUARANTINED = "quarantined"


@dataclass
class RestartPolicy:
    """Bounded restarts with exponential, cycle-charged backoff."""

    max_restarts: int = 3
    backoff: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=4, base_cycles=50_000, multiplier=4
        )
    )


@dataclass
class SupervisedEnclave:
    """Supervisor bookkeeping for one fleet member."""

    name: str
    program: object
    runtime: object
    manager: RecoveryManager
    attestation: AttestationService
    policy: RestartPolicy
    state: str = RUNNING
    restarts: int = 0
    failures: list = field(default_factory=list)


class RecoverySupervisor:
    """Launch, supervise, restore, and quarantine enclaves on one kernel."""

    def __init__(self, kernel, restart_policy=None,
                 auto_checkpoint_every=64, keep_trace=False):
        self.kernel = kernel
        self.restart_policy = restart_policy or RestartPolicy()
        self.auto_checkpoint_every = auto_checkpoint_every
        self.keep_trace = keep_trace
        self._fleet = {}
        # Lifetime counters surfaced by :meth:`stats` (callers — the
        # service breaker, metrics endpoints — read these instead of
        # poking private fields or summing over a fleet that shrinks
        # as members are torn down).
        self._restarts_retired = 0
        self._backoff_cycles = 0
        self._recoveries = 0
        self._quarantines = 0

    # -- lifecycle ---------------------------------------------------------

    def launch(self, name, program, restart_policy=None):
        """Launch a program, attest it, seal its base checkpoint.

        A launch that dies mid-build (warm-up cannot pin its pages
        under EPC pressure, the program's own policy aborts it) leaves
        no handle behind — reclaim the partial enclave before
        re-raising, exactly like a failed restore, or its frames leak
        until kernel shutdown."""
        before = set(self.kernel.instr.enclaves)
        try:
            runtime = program.launch(self.kernel)
        except (EnclaveTerminated, EnclaveCrashed, HostCallDenied,
                SgxError):
            self._reclaim_new_incarnations(before)
            raise
        manager = RecoveryManager(
            runtime,
            auto_checkpoint_every=self.auto_checkpoint_every,
            keep_trace=self.keep_trace,
        )
        service = AttestationService(
            runtime.enclave.measurement.digest(), self.kernel.clock
        )
        service.attest(runtime.enclave)
        manager.begin()
        record = SupervisedEnclave(
            name=name,
            program=program,
            runtime=runtime,
            manager=manager,
            attestation=service,
            policy=restart_policy or self.restart_policy,
        )
        self._fleet[name] = record
        return record

    def member(self, name):
        return self._fleet[name]

    def fleet(self):
        return list(self._fleet.values())

    # -- recovery ----------------------------------------------------------

    def mark_down(self, name, cause):
        """Record that an enclave crashed or aborted."""
        record = self._fleet[name]
        if record.state != QUARANTINED:
            record.state = DOWN
        record.failures.append(str(cause))
        return record

    def recover(self, name):
        """Restore a DOWN enclave: bounded restart attempts, each with
        backoff, reclamation, relaunch, re-attestation, and verified
        replay.  Raises :class:`Quarantined` once the budget is gone,
        :class:`IntegrityAbort` immediately on tamper/rollback evidence
        (retrying cannot launder a rollback)."""
        record = self._fleet[name]
        if record.state == QUARANTINED:
            raise Quarantined(
                f"enclave {name!r} is quarantined after "
                f"{record.restarts} restarts"
            )
        policy = record.policy
        last = None
        for attempt in range(1, policy.max_restarts + 1):
            if record.restarts >= policy.max_restarts:
                break
            record.restarts += 1
            wait = policy.backoff.wait_cycles(attempt)
            self._backoff_cycles += wait
            self.kernel.clock.charge(wait, Category.BACKOFF)
            try:
                self._restore_once(record)
                record.state = RUNNING
                self._recoveries += 1
                return record.runtime
            except IntegrityAbort:
                raise
            except (EnclaveCrashed, EnclaveTerminated, ChaosAbort,
                    HostCallDenied, EpcExhausted) as exc:
                # EpcExhausted is the multi-tenant case: the corpse is
                # gone but the *other* enclaves hold every frame, so a
                # relaunch cannot even pin its runtime.  Transient —
                # retry under backoff like any other restart failure.
                last = exc
                record.failures.append(str(exc))
        record.state = QUARANTINED
        self._quarantines += 1
        raise Quarantined(
            f"enclave {name!r} exhausted its restart budget "
            f"({policy.max_restarts}); refusing further restarts "
            f"(restart churn is a termination-channel signal)"
        ) from last

    #: Free-EPC margin required beyond a relaunch's eager footprint
    #: (TCS page + pinned runtime region) before we attempt it.
    RELAUNCH_MARGIN_PAGES = 4

    def _restore_once(self, record):
        """One restart attempt: reclaim, relaunch, attest, restore."""
        corpse = record.runtime
        if corpse is not None:
            self.kernel.driver.reclaim_enclave(corpse.enclave)
            record.runtime = None
        # Pre-flight: a relaunch eagerly EADDs its TCS and pins its
        # runtime region.  Starting that with too few free frames would
        # die halfway and strand the partial enclave's pages (no handle
        # to reclaim them by) — check first, fail whole.
        build_layout = getattr(record.program, "build_layout", None)
        if build_layout is not None:
            layout = build_layout()
            needed = (
                1 + layout.runtime_pages + self.RELAUNCH_MARGIN_PAGES
            )
            if self.kernel.epc.free_pages < needed:
                raise EpcExhausted(
                    f"relaunch of {record.name!r} needs {needed} free "
                    f"EPC pages, only {self.kernel.epc.free_pages} "
                    f"available"
                )
        before = set(self.kernel.instr.enclaves)
        try:
            runtime = record.program.launch(self.kernel)
            record.attestation.attest(runtime.enclave)
            record.manager.restore(runtime)
        except (EnclaveTerminated, EnclaveCrashed, HostCallDenied,
                SgxError):
            # The attempt died mid-build or mid-replay (e.g. its
            # warm-up could not pin pages under EPC pressure, or the
            # replay itself aborted).  Reclaim the new incarnation
            # before re-raising, or its frames leak — ``record`` never
            # gets a handle to find them by later.
            self._reclaim_new_incarnations(before)
            raise
        record.runtime = runtime

    def _reclaim_new_incarnations(self, before):
        """Reclaim every enclave built since the ``before`` snapshot of
        the kernel's enclave table (failed launch/restore cleanup)."""
        for eid in set(self.kernel.instr.enclaves) - before:
            self.kernel.driver.reclaim_enclave(
                self.kernel.instr.enclaves[eid]
            )

    # -- observability -----------------------------------------------------

    def stats(self):
        """Lifetime counter snapshot (survives member teardown).

        Plain sorted-key dict so service breakers, health endpoints,
        and run digests can consume it without reaching into private
        supervisor state."""
        fleet = list(self._fleet.values())
        return {
            "backoff_cycles": self._backoff_cycles,
            "down": sum(1 for r in fleet if r.state == DOWN),
            "fleet": len(fleet),
            "quarantines": self._quarantines,
            "recoveries": self._recoveries,
            "restarts": (
                self._restarts_retired
                + sum(r.restarts for r in fleet)
            ),
            "running": sum(1 for r in fleet if r.state == RUNNING),
        }

    # -- teardown ----------------------------------------------------------

    def teardown(self, name):
        """Remove one enclave and reclaim every host resource it held
        (the dead-enclave bookkeeping leak fix: EPC frames, driver
        state, fifo slots all go).  Idempotent: tearing down a member
        that is already gone is a no-op, and the underlying reclaim
        never double-frees EPC."""
        record = self._fleet.pop(name, None)
        if record is None:
            return None
        self._restarts_retired += record.restarts
        if record.runtime is not None:
            self.kernel.driver.reclaim_enclave(record.runtime.enclave)
            record.runtime = None
        return record

    def shutdown(self):
        """Tear down the whole fleet."""
        for name in list(self._fleet):
            self.teardown(name)
