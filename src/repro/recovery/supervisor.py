"""The multi-enclave recovery supervisor.

Drives a fleet of enclave programs on one kernel, restoring crashed or
aborted members instead of dying with them:

state machine per enclave (see docs/recovery.md)::

    RUNNING --crash/abort--> DOWN --restore ok--> RUNNING
                              |  (bounded restarts, exponential
                              |   backoff, re-attestation, verified
                              |   checkpoint+journal replay)
                              +--budget exhausted--> QUARANTINED

Quarantine is deliberate, not a failure mode: restart churn is itself
a signal (§5.3 — one bit of leakage per restart), so an enclave that
keeps dying is taken out of rotation with a structured
``AbortReason.QUARANTINED`` instead of being restarted forever.  The
restart loop is bounded and each wait is charged to the simulated
clock — the analyzer's ``robustness/unbounded-restart`` rule holds this
module to the same standard it imposes on everyone else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clock import Category
from repro.errors import (
    ChaosAbort,
    EnclaveCrashed,
    EnclaveTerminated,
    HostCallDenied,
    IntegrityAbort,
    Quarantined,
)
from repro.recovery.manager import RecoveryManager
from repro.runtime.attestation import AttestationService
from repro.runtime.backoff import RetryPolicy

RUNNING = "running"
DOWN = "down"
QUARANTINED = "quarantined"


@dataclass
class RestartPolicy:
    """Bounded restarts with exponential, cycle-charged backoff."""

    max_restarts: int = 3
    backoff: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=4, base_cycles=50_000, multiplier=4
        )
    )


@dataclass
class SupervisedEnclave:
    """Supervisor bookkeeping for one fleet member."""

    name: str
    program: object
    runtime: object
    manager: RecoveryManager
    attestation: AttestationService
    policy: RestartPolicy
    state: str = RUNNING
    restarts: int = 0
    failures: list = field(default_factory=list)


class RecoverySupervisor:
    """Launch, supervise, restore, and quarantine enclaves on one kernel."""

    def __init__(self, kernel, restart_policy=None,
                 auto_checkpoint_every=64, keep_trace=False):
        self.kernel = kernel
        self.restart_policy = restart_policy or RestartPolicy()
        self.auto_checkpoint_every = auto_checkpoint_every
        self.keep_trace = keep_trace
        self._fleet = {}

    # -- lifecycle ---------------------------------------------------------

    def launch(self, name, program, restart_policy=None):
        """Launch a program, attest it, seal its base checkpoint."""
        runtime = program.launch(self.kernel)
        manager = RecoveryManager(
            runtime,
            auto_checkpoint_every=self.auto_checkpoint_every,
            keep_trace=self.keep_trace,
        )
        service = AttestationService(
            runtime.enclave.measurement.digest(), self.kernel.clock
        )
        service.attest(runtime.enclave)
        manager.begin()
        record = SupervisedEnclave(
            name=name,
            program=program,
            runtime=runtime,
            manager=manager,
            attestation=service,
            policy=restart_policy or self.restart_policy,
        )
        self._fleet[name] = record
        return record

    def member(self, name):
        return self._fleet[name]

    def fleet(self):
        return list(self._fleet.values())

    # -- recovery ----------------------------------------------------------

    def mark_down(self, name, cause):
        """Record that an enclave crashed or aborted."""
        record = self._fleet[name]
        if record.state != QUARANTINED:
            record.state = DOWN
        record.failures.append(str(cause))
        return record

    def recover(self, name):
        """Restore a DOWN enclave: bounded restart attempts, each with
        backoff, reclamation, relaunch, re-attestation, and verified
        replay.  Raises :class:`Quarantined` once the budget is gone,
        :class:`IntegrityAbort` immediately on tamper/rollback evidence
        (retrying cannot launder a rollback)."""
        record = self._fleet[name]
        if record.state == QUARANTINED:
            raise Quarantined(
                f"enclave {name!r} is quarantined after "
                f"{record.restarts} restarts"
            )
        policy = record.policy
        last = None
        for attempt in range(1, policy.max_restarts + 1):
            if record.restarts >= policy.max_restarts:
                break
            record.restarts += 1
            self.kernel.clock.charge(
                policy.backoff.wait_cycles(attempt), Category.BACKOFF
            )
            try:
                self._restore_once(record)
                record.state = RUNNING
                return record.runtime
            except IntegrityAbort:
                raise
            except (EnclaveCrashed, EnclaveTerminated, ChaosAbort,
                    HostCallDenied) as exc:
                last = exc
                record.failures.append(str(exc))
        record.state = QUARANTINED
        raise Quarantined(
            f"enclave {name!r} exhausted its restart budget "
            f"({policy.max_restarts}); refusing further restarts "
            f"(restart churn is a termination-channel signal)"
        ) from last

    def _restore_once(self, record):
        """One restart attempt: reclaim, relaunch, attest, restore."""
        corpse = record.runtime
        if corpse is not None:
            self.kernel.driver.reclaim_enclave(corpse.enclave)
        runtime = record.program.launch(self.kernel)
        record.attestation.attest(runtime.enclave)
        record.manager.restore(runtime)
        record.runtime = runtime

    # -- teardown ----------------------------------------------------------

    def teardown(self, name):
        """Remove one enclave and reclaim every host resource it held
        (the dead-enclave bookkeeping leak fix: EPC frames, driver
        state, fifo slots all go)."""
        record = self._fleet.pop(name)
        if record.runtime is not None:
            self.kernel.driver.reclaim_enclave(record.runtime.enclave)
        return record

    def shutdown(self):
        """Tear down the whole fleet."""
        for name in list(self._fleet):
            self.teardown(name)
