"""``python -m repro recover`` — the crash/recovery demonstration.

Walks every self-paging policy through the full recovery story on a
small enclave:

1. **crash + verified restore** — the host kills the enclave mid-run;
   the supervisor reclaims the corpse, relaunches, re-attests, and
   replays the sealed journal; the restored state's fingerprint must be
   bit-identical to the witness fingerprint an uncrashed reference
   recorded at the same journal position;
2. **torn tail** — the crash interrupts the final journal append; the
   one mangled tail record is forgiven and the enclave restores to the
   last *completed* operation;
3. **rollback rejection** — the host re-presents a stale checkpoint
   set; the monotonic-counter freshness check refuses with
   ``IntegrityAbort`` instead of silently resurrecting old state;
4. **quarantine** — a host that keeps killing the relaunch exhausts
   the bounded restart budget and the enclave is taken out of rotation
   (``Quarantined``), because restart churn is itself a §5.3 signal.

All numbers are simulated cycles; the demo is deterministic.
"""

from __future__ import annotations

import argparse
import json

from repro.clock import Category
from repro.core.config import SystemConfig
from repro.errors import EnclaveCrashed, IntegrityAbort, Quarantined
from repro.host.kernel import HostKernel
from repro.recovery.program import EnclaveProgram
from repro.recovery.state import fingerprint
from repro.recovery.supervisor import RecoverySupervisor
from repro.runtime.rate_limit import ProgressKind

POLICIES = ("pin_all", "clusters", "rate_limit", "oram")

EPC_PAGES = 1_024


def make_program(policy):
    """A small, fully deterministic enclave program for ``policy``."""
    common = dict(
        epc_pages=EPC_PAGES,
        runtime_pages=8,
        code_pages=8,
        data_pages=8,
        heap_pages=96,
    )
    if policy == "pin_all":
        cfg = SystemConfig.for_policy(policy, quota_pages=256, **common)
    elif policy == "clusters":
        cfg = SystemConfig.for_policy(
            policy, quota_pages=96, enclave_managed_budget=48,
            cluster_pages=8, **common,
        )
    elif policy == "rate_limit":
        cfg = SystemConfig.for_policy(
            policy, quota_pages=96, enclave_managed_budget=48,
            cluster_pages=8, **common,
        )
    elif policy == "oram":
        cfg = SystemConfig.for_policy(
            policy, quota_pages=512, oram_tree_pages=256,
            oram_cache_pages=32, **common,
        )
    else:
        raise SystemExit(f"unknown policy {policy!r}")
    return EnclaveProgram(config=cfg, warmup=_warmup, name=policy)


def _warmup(runtime):
    # Clustered policies require full heap coverage: allocate the whole
    # heap up front so every page joins an automatic data cluster.
    if runtime.allocator is not None and runtime.allocator.cluster_pages:
        runtime.allocator.alloc_pages(runtime.allocator.heap_pages)
    heap = runtime.regions["heap"]
    runtime.preload([heap.page(i) for i in range(8)])


def _drive(runtime, engine, ops, start=0):
    """The deterministic workload: strided data accesses with periodic
    progress beacons and host balloon requests."""
    heap = runtime.regions["heap"]
    for i in range(start, start + ops):
        engine.data_access(heap.page((i * 7) % heap.npages),
                           write=bool(i % 3))
        if i % 11 == 5:
            runtime.progress(ProgressKind.IO)
        if i % 23 == 17:
            runtime.kernel.request_memory_reduction(runtime.enclave, 4)


def _witness_trace(program, ops):
    """Uncrashed reference run; ``trace[j]`` = fingerprint after ``j``
    journal records."""
    supervisor = RecoverySupervisor(HostKernel(epc_pages=EPC_PAGES),
                                    keep_trace=True)
    record = supervisor.launch("ref", program)
    _drive(record.runtime, program.engine(record.runtime), ops)
    supervisor.shutdown()
    return record.manager.trace


def demo_policy(policy, ops):
    program = make_program(policy)
    trace = _witness_trace(program, ops)
    total_records = len(trace) - 1
    crash_at = max(1, total_records // 2)

    # Crash mid-run, recover, verify against the witness.
    kernel = HostKernel(epc_pages=EPC_PAGES)
    supervisor = RecoverySupervisor(kernel)
    record = supervisor.launch(policy, program)
    record.manager.crash_after = crash_at
    try:
        _drive(record.runtime, program.engine(record.runtime), ops)
        raise AssertionError("crash injection did not fire")
    except EnclaveCrashed as exc:
        supervisor.mark_down(policy, exc)
    cycles_before = kernel.clock.by_category.get(Category.RECOVERY, 0)
    runtime = supervisor.recover(policy)
    recovery_cycles = (
        kernel.clock.by_category.get(Category.RECOVERY, 0) - cycles_before
    )
    verified = fingerprint(runtime) == trace[crash_at]

    # The survivor keeps serving: drive a fresh batch post-restore.
    _drive(runtime, program.engine(runtime), ops // 4, start=ops)

    # Torn tail: the final append is mangled by the crash; replay
    # forgives exactly that record and lands on the last completed op.
    kernel2 = HostKernel(epc_pages=EPC_PAGES)
    supervisor2 = RecoverySupervisor(kernel2)
    record2 = supervisor2.launch(policy, program)
    record2.manager.crash_after = crash_at
    try:
        _drive(record2.runtime, program.engine(record2.runtime), ops)
    except EnclaveCrashed as exc:
        supervisor2.mark_down(policy, exc)
    record2.manager.journal.corrupt_tail()
    torn_ok = (fingerprint(supervisor2.recover(policy))
               == trace[crash_at - 1])
    supervisor.shutdown()
    supervisor2.shutdown()

    return {
        "policy": policy,
        "journal_records": total_records,
        "crash_at": crash_at,
        "restored_verified": verified,
        "torn_tail_forgiven": torn_ok,
        "restarts": record.restarts,
        "recovery_cycles": recovery_cycles,
    }


def demo_rollback(ops):
    """A host re-presenting stale checkpoints must be caught."""
    program = make_program("rate_limit")
    supervisor = RecoverySupervisor(HostKernel(epc_pages=EPC_PAGES),
                                    auto_checkpoint_every=8)
    record = supervisor.launch("victim", program)
    record.manager.crash_after = 24
    try:
        _drive(record.runtime, program.engine(record.runtime), ops)
    except EnclaveCrashed as exc:
        supervisor.mark_down("victim", exc)
    record.manager.checkpoints.rollback_to(0)
    try:
        supervisor.recover("victim")
    except IntegrityAbort as exc:
        return {"rollback_rejected": True, "reason": str(exc)}
    return {"rollback_rejected": False, "reason": "NOT DETECTED"}


class _HostileHost:
    """A launch recipe the host keeps killing (for the quarantine demo)."""

    def __init__(self, program):
        self._program = program

    def launch(self, kernel):
        raise EnclaveCrashed("host killed the enclave during relaunch")


def demo_quarantine(ops):
    program = make_program("rate_limit")
    supervisor = RecoverySupervisor(HostKernel(epc_pages=EPC_PAGES))
    record = supervisor.launch("victim", program)
    record.manager.crash_after = 10
    try:
        _drive(record.runtime, program.engine(record.runtime), ops)
    except EnclaveCrashed as exc:
        supervisor.mark_down("victim", exc)
    record.program = _HostileHost(program)
    try:
        supervisor.recover("victim")
    except Quarantined as exc:
        return {
            "quarantined": True,
            "restarts_spent": record.restarts,
            "reason": str(exc),
        }
    return {"quarantined": False, "restarts_spent": record.restarts,
            "reason": "NOT QUARANTINED"}


def run(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro recover",
        description="crash-consistent checkpoint/restore demonstration",
    )
    parser.add_argument("--ops", type=int, default=60, metavar="N",
                        help="workload operations per enclave "
                             "(default: 60)")
    parser.add_argument("--policies", nargs="+", default=list(POLICIES),
                        choices=POLICIES, metavar="P",
                        help=f"policies to demo (default: all of "
                             f"{', '.join(POLICIES)})")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    args = parser.parse_args(argv)

    rows = [demo_policy(p, args.ops) for p in args.policies]
    rollback = demo_rollback(args.ops)
    quarantine = demo_quarantine(args.ops)

    ok = (all(r["restored_verified"] and r["torn_tail_forgiven"]
              for r in rows)
          and rollback["rollback_rejected"] and quarantine["quarantined"])

    if args.format == "json":
        print(json.dumps({"policies": rows, "rollback": rollback,
                          "quarantine": quarantine, "ok": ok}, indent=2))
        return 0 if ok else 1

    print("crash/recovery demonstration "
          "(sealed journal + checkpoints, supervised restore)\n")
    header = (f"  {'policy':<12} {'records':>7} {'crash@':>6} "
              f"{'restored':>9} {'torn tail':>9} {'cycles':>10}")
    print(header)
    print("  " + "-" * (len(header) - 2))
    for r in rows:
        print(f"  {r['policy']:<12} {r['journal_records']:>7} "
              f"{r['crash_at']:>6} "
              f"{'bit-identical' if r['restored_verified'] else 'MISMATCH':>9} "
              f"{'forgiven' if r['torn_tail_forgiven'] else 'BROKEN':>9} "
              f"{r['recovery_cycles']:>10,}")
    print()
    print(f"  rollback attack : "
          f"{'rejected (IntegrityAbort)' if rollback['rollback_rejected'] else 'MISSED'}")
    print(f"  hostile relaunch: "
          f"{'quarantined after ' + str(quarantine['restarts_spent']) + ' bounded restarts' if quarantine['quarantined'] else 'NOT QUARANTINED'}")
    print()
    print("  all recovery invariants hold" if ok
          else "  RECOVERY INVARIANT VIOLATION")
    return 0 if ok else 1


if __name__ == "__main__":
    import sys
    sys.exit(run())
