"""Crash-consistent checkpoint/restore and supervised recovery.

Autarky's fail-safe design answers a misbehaving host with fail-stop
(PR 3's abort taxonomy); this package answers fail-stop with recovery:

* :mod:`repro.recovery.state` — the canonical paging state and its
  fingerprint (the bit-identical-restore criterion);
* :mod:`repro.recovery.journal` — the sealed, hash-chained write-ahead
  journal of paging-state inputs;
* :mod:`repro.recovery.checkpoint` — sealed verification anchors with
  monotonic-counter freshness (rollback rejection);
* :mod:`repro.recovery.manager` — recording, crash injection hooks,
  and verified restore/replay;
* :mod:`repro.recovery.program` — reproducible enclave launch recipes;
* :mod:`repro.recovery.supervisor` — the multi-enclave restart /
  re-attest / restore / quarantine layer.

See docs/recovery.md for formats and the supervisor state machine.
"""

from repro.recovery.checkpoint import CheckpointStore, MonotonicCounter
from repro.recovery.journal import Journal, validated_records
from repro.recovery.manager import RecoveryManager
from repro.recovery.program import EnclaveProgram
from repro.recovery.state import canonical_state, fingerprint
from repro.recovery.supervisor import (
    RecoverySupervisor,
    RestartPolicy,
    SupervisedEnclave,
)

__all__ = [
    "CheckpointStore",
    "MonotonicCounter",
    "Journal",
    "validated_records",
    "RecoveryManager",
    "EnclaveProgram",
    "canonical_state",
    "fingerprint",
    "RecoverySupervisor",
    "RestartPolicy",
    "SupervisedEnclave",
]
