"""Sealed checkpoints and rollback (freshness) protection.

A checkpoint is a sealed *verification anchor*: the monotonic-counter
value at seal time, the journal position it covers, and the canonical
state fingerprint at that position.  Restore verifies the relaunched
enclave's state against these anchors as replay crosses them — the
page *contents* need no separate snapshot, because the backing store
already holds every evicted page sealed with per-page anti-replay
versions, and replay regenerates resident state through the real code
paths.

Freshness follows SGX's monotonic-counter recipe (the same machinery
Aurora-style persistent enclaves rely on): every seal bumps a hardware
counter whose value is sealed into the checkpoint.  A host presenting
an old-but-validly-sealed checkpoint set ("rollback to yesterday")
cannot also roll back the hardware counter, so the newest surviving
checkpoint's counter no longer matches and restore fail-stops with
``IntegrityAbort`` — exactly like PR 3's tamper witness for a replayed
page, one level up.
"""

from __future__ import annotations


class MonotonicCounter:
    """The platform's monotonic counter (SGX PSE model): bump-only,
    survives enclave crashes, cannot be rolled back by the host."""

    def __init__(self):
        self._value = 0

    def bump(self):
        self._value += 1
        return self._value

    def read(self):
        return self._value


class CheckpointStore:
    """Untrusted storage of sealed checkpoint blobs.

    Each blob's payload is ``(counter, journal_len, fingerprint)``;
    sealing and verification live in the recovery manager.  Like the
    backing store, this exposes the attacker primitive chaos and the
    rollback tests use.
    """

    def __init__(self):
        self.blobs = []

    def append(self, blob):
        self.blobs.append(blob)

    def latest(self):
        return self.blobs[-1] if self.blobs else None

    def __len__(self):
        return len(self.blobs)

    # -- attacker primitives ----------------------------------------------

    def rollback_to(self, index):
        """Discard every checkpoint after ``index`` (present a stale
        snapshot set at restore time — the rollback attack)."""
        del self.blobs[index + 1:]
