"""Canonical paging state and its fingerprint.

Recovery's correctness criterion is *bit-identical state*: after a
crash, restore + journal replay must land the enclave in exactly the
simulated paging state an uncrashed run would have at the same point.
This module defines what "state" means — a deterministic tuple tree
over everything the self-paging machine owns — and a sha256 fingerprint
over it (checkpoints anchor fingerprints, never raw state).

What is included:

* the pager's residency/pinned/claimed sets, eviction-queue order,
  per-page hotness, and lifetime counters;
* the crypto layer's outstanding seal versions for this enclave (both
  the CPU's EWB/ELDU engine and, on SGX2, the runtime's own sealing
  context) — the anti-replay state;
* balloon counters, policy state (including full ORAM client state and
  the exact position of its private random stream), and the runtime's
  handled-fault count.

What is deliberately excluded:

* the enclave id — a process-local launch counter that differs between
  a crashed enclave and its restarted successor (and between a run and
  its determinism-check rerun) without any observable difference;
* clock cycles — recovery itself costs cycles, so time can never match;
* the crypto layer's ``_next_version`` allocator and unit sequence
  numbers — private allocators, not observable state.
"""

from __future__ import annotations

import hashlib

from repro.oram.policy import OramPolicy
from repro.runtime.policies import (
    ClusterPolicy,
    PinAllPolicy,
    RateLimitPolicy,
)


def policy_state(policy):
    """Canonical tuple of one paging policy's mutable state."""
    if policy is None:
        return ()
    base = (
        policy.name,
        policy.legit_faults,
        policy.pages_fetched,
        policy.attacks_detected,
    )
    if isinstance(policy, PinAllPolicy):
        return base + (policy.sealed,)
    if isinstance(policy, ClusterPolicy):
        return base + (policy.unclustered_faults,)
    if isinstance(policy, OramPolicy):
        return base + (
            policy.instrumented_accesses,
            policy.oram.snapshot_state(),
            policy.cache.snapshot_state() if policy.cache else (),
        )
    if isinstance(policy, RateLimitPolicy):
        limiter = policy.limiter
        return base + (
            limiter.window_faults,
            limiter.total_faults,
            limiter.progress_events,
            limiter.tripped,
        )
    return base


def canonical_state(runtime):
    """The full canonical paging state of one runtime, as a tuple tree."""
    pager = runtime.pager
    eid = runtime.enclave.enclave_id
    crypto_tables = [
        runtime.kernel.instr.hw_crypto.outstanding_table(eid)
    ]
    ops_crypto = getattr(runtime.paging_ops, "crypto", None)
    if ops_crypto is not None:
        crypto_tables.append(ops_crypto.outstanding_table(eid))
    return (
        ("pager",
         pager.snapshot_counters(),
         pager.snapshot_queue(),
         pager.snapshot_hotness()),
        ("crypto", tuple(crypto_tables)),
        ("balloon",
         runtime.balloon.snapshot_counters() if runtime.balloon else ()),
        ("policy", policy_state(runtime.policy)),
        ("handled_faults", runtime.handled_faults),
    )


def fingerprint(runtime):
    """sha256 fingerprint of :func:`canonical_state` (hex)."""
    encoded = repr(canonical_state(runtime)).encode()
    return hashlib.sha256(encoded).hexdigest()
