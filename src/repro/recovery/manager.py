"""The per-enclave recovery manager: checkpoint, journal, replay.

One :class:`RecoveryManager` owns the durable recovery state of one
*program* (journal, checkpoint store, monotonic counter, sealing
context) across any number of enclave incarnations.  Attached to a
running enclave it records every paging-state input; after a crash it
is re-bound to the relaunched enclave and replays the journal through
the real code paths, verifying effect summaries and checkpoint anchors
as it goes.

The restore contract (all failures are fail-stop):

1.  the relaunched enclave's deterministic bootstrap must reproduce the
    sealed *base* checkpoint's fingerprint bit-for-bit;
2.  the checkpoint set must be MAC-valid, strictly counter-ascending,
    and its newest counter must equal the hardware monotonic counter —
    otherwise the host rolled state back (``IntegrityAbort``);
3.  the journal chain must validate; one torn tail record is forgiven,
    deeper corruption is tampering (``IntegrityAbort``);
4.  every replayed record's effects must match its journaled summary,
    and the state fingerprint must match every checkpoint anchor the
    replay crosses (``IntegrityAbort`` on divergence).
"""

from __future__ import annotations

from repro.clock import Category
from repro.errors import EnclaveCrashed, IntegrityAbort, IntegrityError
from repro.recovery.checkpoint import CheckpointStore, MonotonicCounter
from repro.recovery.journal import Journal, validated_records
from repro.recovery.state import fingerprint
from repro.runtime.rate_limit import ProgressKind
from repro.sgx.crypto import StateSealer
from repro.sgx.params import AccessType


class RecoveryManager:
    """Crash-consistent recovery state for one enclave program."""

    def __init__(self, runtime, counter=None, auto_checkpoint_every=None,
                 keep_trace=False):
        self.runtime = runtime
        self.sealer = StateSealer(runtime.enclave.measurement.digest())
        self.counter = counter if counter is not None else MonotonicCounter()
        self.journal = Journal()
        self.checkpoints = CheckpointStore()
        #: Seal a fresh checkpoint every N journal records (None = only
        #: explicit seal_checkpoint calls).
        self.auto_checkpoint_every = auto_checkpoint_every
        #: Witness fingerprint trace: ``trace[j]`` is the canonical
        #: fingerprint after ``j`` journal records.  Expensive — only
        #: kept when a verifier (chaos campaign, tests) asks for it.
        self.keep_trace = keep_trace
        self.trace = []
        self.recording = False
        self.replaying = False
        #: Chaos hook: kill the enclave right after appending journal
        #: record number N (1-based journal length).  One-shot.
        self.crash_after = None
        #: Optional lifecycle witness, called ``lifecycle_observer(
        #: name)`` on every recovery-protocol step (``begin``,
        #: ``seal_checkpoint``, ``note_*`` appends, ``crash``,
        #: ``restore``) — the model checker's runtime oracle feeds
        #: these into the shared crash/restore automaton.
        self.lifecycle_observer = None
        #: Lifetime counters (observability).
        self.records_written = 0
        self.records_replayed = 0
        self.restores = 0
        self._bind(runtime)

    # -- wiring ------------------------------------------------------------

    def _bind(self, runtime):
        self.runtime = runtime
        runtime.recovery = self
        runtime.pager.recovery_observer = self
        if hasattr(runtime.policy, "observer"):
            runtime.policy.observer = self

    def _witness(self, name):
        if self.lifecycle_observer is not None:
            self.lifecycle_observer(name)

    def begin(self):
        """Seal the base checkpoint (bootstrap anchor) and start
        recording.  Call once the deterministic warm-up is done."""
        self.recording = True
        self._witness("begin")
        if self.keep_trace:
            self.trace = [fingerprint(self.runtime)]
        self.seal_checkpoint()

    # -- checkpointing -----------------------------------------------------

    def seal_checkpoint(self):
        """Seal the current state fingerprint as a freshness-rooted
        verification anchor at the current journal position."""
        clock = self.runtime.kernel.clock
        clock.charge(self.runtime.kernel.cost.checkpoint_seal,
                     Category.RECOVERY)
        payload = (
            self.counter.bump(),
            len(self.journal),
            fingerprint(self.runtime),
        )
        blob = self.sealer.seal("checkpoint", len(self.checkpoints),
                                payload)
        self.checkpoints.append(blob)
        self._witness("seal_checkpoint")
        return blob

    # -- recording ---------------------------------------------------------

    def note_fault(self, vaddr, access, managed, fetched):
        self._record("fault", (vaddr, access.value, managed, fetched))

    def note_progress(self, kind):
        self._record("progress", (getattr(kind, "value", kind),))

    def note_balloon(self, requested, freed):
        self._record("balloon", (requested, freed))

    def note_claim(self, vaddrs, pin):
        self._record("claim", (tuple(vaddrs), bool(pin)))

    def note_release(self, vaddrs):
        self._record("release", (tuple(vaddrs),))

    def note_regroup(self, vaddrs):
        self._record("regroup", (tuple(vaddrs),))

    def note_oram(self, vaddr, write):
        self._record("oram", (vaddr, bool(write)))

    def _record(self, kind, payload):
        if not self.recording or self.replaying:
            return
        kernel = self.runtime.kernel
        kernel.clock.charge(kernel.cost.journal_append, Category.RECOVERY)
        blob = self.sealer.seal(
            kind, len(self.journal), payload,
            prev_mac=self.journal.tail_mac(),
        )
        self.journal.append(blob)
        self.records_written += 1
        self._witness(f"note_{kind}")
        if self.keep_trace:
            self.trace.append(fingerprint(self.runtime))
        if (self.crash_after is not None
                and len(self.journal) >= self.crash_after):
            self.crash_after = None
            self.crash()
        if (self.auto_checkpoint_every
                and len(self.journal) % self.auto_checkpoint_every == 0):
            self.seal_checkpoint()

    def crash(self):
        """Model the host killing the enclave at this very point."""
        self.recording = False
        self.runtime.enclave.dead = True
        self._witness("crash")
        raise EnclaveCrashed(
            f"enclave {self.runtime.enclave.enclave_id} killed by the "
            f"host at journal position {len(self.journal)}"
        )

    # -- restore -----------------------------------------------------------

    def verify_freshness(self):
        """Validate the checkpoint set and its freshness root; returns
        the checkpoint payloads oldest-first."""
        blobs = self.checkpoints.blobs
        if not blobs:
            raise IntegrityAbort("restore with no checkpoint to anchor on")
        clock = self.runtime.kernel.clock
        payloads = []
        for i, blob in enumerate(blobs):
            clock.charge(self.runtime.kernel.cost.checkpoint_seal,
                         Category.RECOVERY)
            try:
                payload = self.sealer.verify(blob)
            except IntegrityError as exc:
                raise IntegrityAbort(
                    f"checkpoint {i} failed verification: {exc}"
                ) from exc
            if blob.seq != i:
                raise IntegrityAbort(
                    f"checkpoint {i} carries seq {blob.seq} (spliced)"
                )
            payloads.append(payload)
        counters = [p[0] for p in payloads]
        if any(b <= a for a, b in zip(counters, counters[1:])):
            raise IntegrityAbort(
                f"checkpoint counters not strictly ascending: {counters}"
            )
        if counters[-1] != self.counter.read():
            raise IntegrityAbort(
                f"stale checkpoint set: newest counter {counters[-1]} != "
                f"hardware monotonic counter {self.counter.read()} "
                "(rollback attack)"
            )
        return payloads

    def restore(self, runtime):
        """Re-bind to a relaunched (bootstrapped, attested) runtime and
        replay the journal onto it with full verification.  Returns the
        number of records replayed."""
        self.recording = False
        self._bind(runtime)
        self._witness("restore")
        anchors = self.verify_freshness()
        base_counter, base_len, base_fp = anchors[0]
        if base_len != 0:
            raise IntegrityAbort(
                f"base checkpoint anchors journal position {base_len}, "
                "not the bootstrap state"
            )
        if fingerprint(runtime) != base_fp:
            raise IntegrityAbort(
                "relaunched bootstrap state does not reproduce the "
                "sealed base checkpoint (non-deterministic bootstrap "
                "or substituted program)"
            )
        try:
            records = validated_records(self.journal, self.sealer)
        except IntegrityError as exc:
            raise IntegrityAbort(
                f"journal chain corrupted beyond the tail: {exc}"
            ) from exc
        if len(records) < len(self.journal.records):
            # Torn tail: the crash interrupted the final append.  The
            # operation's effects died with the enclave, so dropping the
            # record is the crash-consistent choice.
            self.journal.records = list(records)
        anchor_fp = {journal_len: fp for _c, journal_len, fp in anchors}
        deepest = max(journal_len for _c, journal_len, _fp in anchors)
        if deepest > len(records):
            raise IntegrityAbort(
                f"checkpoint anchors journal position {deepest} but only "
                f"{len(records)} records survived (journal truncated "
                "under a sealed checkpoint)"
            )
        clock = runtime.kernel.clock
        applied = 0
        self.replaying = True
        try:
            for blob in records:
                clock.charge(runtime.kernel.cost.journal_replay,
                             Category.RECOVERY)
                try:
                    self._apply(blob)
                except IntegrityAbort:
                    raise
                except IntegrityError as exc:
                    raise IntegrityAbort(
                        f"journal replay diverged at record {applied}: "
                        f"{exc}"
                    ) from exc
                applied += 1
                self.records_replayed += 1
                expected = anchor_fp.get(applied)
                if expected is not None and fingerprint(runtime) != expected:
                    raise IntegrityAbort(
                        f"replayed state does not match the sealed "
                        f"checkpoint anchored at record {applied}"
                    )
        finally:
            self.replaying = False
        if self.keep_trace:
            self.trace = self.trace[:len(records) + 1]
        self.restores += 1
        self.recording = True
        return applied

    def _apply(self, blob):
        """Re-execute one journal record through the real code paths."""
        runtime = self.runtime
        payload = blob.payload
        if blob.kind == "fault":
            vaddr, access_value, managed, fetched = payload
            access = AccessType(access_value)
            if managed:
                before = getattr(runtime.policy, "pages_fetched", 0)
                runtime.policy.on_fault(vaddr, access)
                after = getattr(runtime.policy, "pages_fetched", 0)
                if after - before != fetched:
                    raise IntegrityError(
                        f"fault at {vaddr:#x} fetched {after - before} "
                        f"pages on replay, journal recorded {fetched}"
                    )
            else:
                runtime.channel.call("os_resolve", runtime.enclave, vaddr)
            runtime.handled_faults += 1
        elif blob.kind == "progress":
            value = payload[0]
            try:
                value = ProgressKind(value)
            except ValueError:
                pass
            runtime.progress(value)
        elif blob.kind == "balloon":
            requested, freed = payload
            got = runtime.balloon.handle_request(requested)
            if got != freed:
                raise IntegrityError(
                    f"balloon upcall freed {got} pages on replay, "
                    f"journal recorded {freed}"
                )
        elif blob.kind == "claim":
            vaddrs, pin = payload
            runtime.claim(list(vaddrs), pin=pin)
        elif blob.kind == "release":
            runtime.release(list(payload[0]))
        elif blob.kind == "regroup":
            runtime.pager.regroup(list(payload[0]))
        elif blob.kind == "oram":
            vaddr, write = payload
            runtime.policy.access(vaddr, write=write)
        else:
            raise IntegrityError(
                f"unknown journal record kind {blob.kind!r}"
            )
