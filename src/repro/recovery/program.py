"""Relaunchable enclave programs.

Recovery restores *state*, but something must first rebuild the
*enclave* — same kernel, same layout, same policy, same deterministic
warm-up — so that the relaunched incarnation's measurement (and hence
sealing key) and bootstrap fingerprint match what the crashed one
sealed.  :class:`EnclaveProgram` packages exactly that: the launch
recipe, reproducible on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.config import SystemConfig
from repro.core.system import DirectEngine, OramEngine, build_policy
from repro.oram.policy import OramPolicy
from repro.runtime.libos import EnclaveLayout, GrapheneRuntime


@dataclass
class EnclaveProgram:
    """One enclave's reproducible launch recipe.

    ``warmup`` is the deterministic bootstrap run before the base
    checkpoint is sealed (preloads, seals, cluster assignment); it must
    depend only on the runtime handed to it — any ambient input would
    make the relaunch fingerprint diverge and restore fail-stop.
    """

    config: SystemConfig = field(default_factory=SystemConfig)
    #: Explicit layout (multi-enclave programs need distinct bases);
    #: None derives one from the config like AutarkySystem does.
    layout: Optional[EnclaveLayout] = None
    warmup: Optional[Callable] = None
    name: str = "enclave"

    def build_layout(self):
        cfg = self.config
        if self.layout is not None:
            return self.layout
        return EnclaveLayout(
            runtime_pages=cfg.runtime_pages,
            code_pages=cfg.code_pages,
            data_pages=cfg.data_pages,
            heap_pages=cfg.heap_pages,
            reserve_pages=cfg.reserve_pages,
        )

    def launch(self, kernel):
        """Launch (or relaunch) the enclave on ``kernel`` and run its
        warm-up; returns the ready runtime.  Two calls on equivalent
        kernels produce bit-identical canonical state and identical
        measurements (the relaunch contract restore depends on)."""
        cfg = self.config
        layout = self.build_layout()
        policy = build_policy(cfg, layout, kernel.clock)
        legacy = cfg.policy.name == "baseline"
        runtime = GrapheneRuntime.launch(
            kernel,
            policy,
            layout=layout,
            quota_pages=cfg.quota_pages,
            legacy=legacy,
            sgx_version=cfg.sgx_version,
            enclave_managed_budget=cfg.enclave_managed_budget,
            eviction_order=cfg.eviction_order,
            exitless=cfg.exitless,
        )
        if getattr(policy, "manager", False) is None:
            policy.manager = runtime.clusters
        if cfg.policy.name in ("clusters", "rate_limit"):
            runtime.configure_heap(cfg.policy.cluster_pages)
        else:
            runtime.configure_heap(None)
        if self.warmup is not None:
            self.warmup(runtime)
        return runtime

    def engine(self, runtime):
        """The access engine applications drive (rebuilt per launch)."""
        if isinstance(runtime.policy, OramPolicy):
            return OramEngine(runtime, runtime.policy)
        return DirectEngine(runtime)
