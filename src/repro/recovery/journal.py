"""The write-ahead journal of paging-state inputs.

The paging machine is deterministic: given the bootstrap state and the
sequence of *inputs* it handled (faults, progress events, balloon
upcalls, claim/release/regroup calls, ORAM accesses), every byte of its
state follows.  So the journal records inputs, not state — each record
is appended right after its operation completes (redo convention) and
carries a small *effect summary* (pages fetched, pages freed) that
replay verifies, so a replay whose environment diverged from the
original run (e.g. a host quota squeeze that is gone after restart)
is detected instead of silently producing different state.

Records are sealed by :class:`~repro.sgx.crypto.StateSealer` with
hash-chained MACs: record *n* covers record *n−1*'s MAC, so the host
can tear off or corrupt only the very tail — which recovery tolerates
as a torn write (the op's effects are lost with the crash anyway).
Anything deeper is tampering and fail-stops the restore.

The journal object itself is *untrusted storage*: dumb appends plus
the attacker primitives chaos uses (:meth:`Journal.truncate_tail`,
:meth:`Journal.corrupt_tail`).  All trusted logic — sealing, chain
validation — lives in the manager and in :func:`validated_records`.
"""

from __future__ import annotations

import dataclasses

from repro.errors import IntegrityError
from repro.sgx.crypto import StateSealer

#: The record kinds replay understands (see RecoveryManager._apply).
RECORD_KINDS = (
    "fault", "progress", "balloon", "claim", "release", "regroup", "oram",
)


class Journal:
    """Untrusted append-only storage of sealed journal records."""

    def __init__(self):
        self.records = []

    def append(self, blob):
        self.records.append(blob)

    def tail_mac(self):
        """The chain head for the next append."""
        return self.records[-1].mac if self.records else StateSealer.GENESIS

    def __len__(self):
        return len(self.records)

    # -- attacker primitives (crash/torn-write injection) ------------------

    def truncate_tail(self, n=1):
        """Drop the last ``n`` records (a torn write at crash time)."""
        if n > 0:
            del self.records[len(self.records) - n:]

    def corrupt_tail(self):
        """Scribble over the last record's payload, keeping its MAC
        (a partially persisted write).  Returns True if there was one."""
        if not self.records:
            return False
        tail = self.records[-1]
        self.records[-1] = dataclasses.replace(
            tail, payload=("torn-write-garbage",)
        )
        return True


def validated_records(journal, sealer):
    """Walk the MAC chain; returns the validated prefix of records.

    Exactly one invalid *tail* record is forgiven (a torn write: the
    crash interrupted the append, and the operation's effects died with
    the enclave).  An invalid record anywhere earlier breaks the chain
    the tail MACs depend on — that is tampering, and raises
    :class:`~repro.errors.IntegrityError`.
    """
    valid = []
    prev = StateSealer.GENESIS
    records = journal.records
    for i, blob in enumerate(records):
        try:
            sealer.verify(blob, expected_prev=prev)
            if blob.seq != i:
                raise IntegrityError(
                    f"journal record {i} carries seq {blob.seq} "
                    "(reordered or spliced)"
                )
        except IntegrityError:
            if i == len(records) - 1:
                return valid
            raise
        valid.append(blob)
        prev = blob.mac
    return valid
