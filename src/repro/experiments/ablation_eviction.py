"""A1 — ablation: FIFO vs fault-frequency eviction for self-paging.

§5.1.4 notes that losing A/D bits forces the self-paging runtime away
from clock-style eviction; the prototype uses FIFO, and the paper
sketches a coarse fault-frequency alternative that "eventually learns
to keep hot pages paged in".

This ablation quantifies the choice where it matters: a Memcached store
under hotspot traffic with an EPC budget barely larger than the hot
set.  FIFO cycles the hot pages out once per budget rotation; the
frequency evictor learns their fault counts and pins them in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.memcached import Memcached
from repro.core.config import SystemConfig
from repro.core.system import AutarkySystem
from repro.experiments.formatting import render_table
from repro.runtime.self_paging import EvictionOrder
from repro.workloads.ycsb import HotspotGenerator


@dataclass
class AblationRow:
    order: str
    distribution: str
    throughput: float
    faults: int
    pages_fetched: int


def run_config(order, hot_opn_fraction, data_bytes=50 * 1024 * 1024,
               budget_pages=640, requests=2_000, seed=47):
    system = AutarkySystem(SystemConfig.for_policy(
        "rate_limit",
        max_faults_per_progress=10_000,
        epc_pages=budget_pages + 8_192,
        quota_pages=budget_pages + 512,
        enclave_managed_budget=budget_pages,
        heap_pages=32_768,
        code_pages=16,
        data_pages=16,
        runtime_pages=8,
        eviction_order=order,
    ))
    engine = system.engine()
    server = Memcached(engine, system.heap_start(), data_bytes)

    # Warm with the same distribution so the frequency evictor has
    # counts to learn from before the measured phase.
    gen = HotspotGenerator(server.n_keys,
                           hot_opn_fraction=hot_opn_fraction, seed=seed)
    server.serve(gen.keys(2_000))

    keys = gen.keys(requests)
    with system.measure() as m:
        server.serve(keys)
    metrics = m.metrics(ops=requests)
    return AblationRow(
        order=order.value,
        distribution=f"hotspot({hot_opn_fraction})",
        throughput=metrics.throughput,
        faults=metrics.faults,
        pages_fetched=metrics.pages_fetched,
    )


def run(requests=2_000):
    rows = []
    for order in (EvictionOrder.FIFO, EvictionOrder.FAULT_FREQUENCY):
        for hot in (0.5, 0.9, 0.99):
            rows.append(run_config(order, hot, requests=requests))
    return rows


def format_table(rows):
    return render_table(
        ["eviction order", "distribution", "req/s", "faults",
         "pages fetched"],
        [
            (r.order, r.distribution, f"{r.throughput:,.0f}", r.faults,
             r.pages_fetched)
            for r in rows
        ],
        title="A1: FIFO vs fault-frequency eviction "
              "(Memcached, tight budget)",
    )


def main():
    rows = run()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
