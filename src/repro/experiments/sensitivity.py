"""E11 (extension) — cost-model sensitivity analysis.

A simulation-based reproduction owes the reader an answer to: *would
the conclusions change if the calibration constants are off?*  This
experiment perturbs the most influential cost constants across a wide
range and re-checks each headline, qualitative conclusion:

* C1 (Figure 5): SGX1 paging is cheaper than SGX2.
* C2 (Figure 5/A2): eliding the AEX makes protected paging cheaper
  than unprotected paging.
* C3 (A2): exitless host calls beat exit-based OCALLs.
* C4 (E1): the A/D fill check costs well under 1%.
* C5 (Figure 7 mechanism): Autarky's per-fault premium stays within
  ~2.5x of an unprotected fault (the bound that keeps rate-limited
  paging's slowdown moderate).

A conclusion is *robust* if it holds at every perturbation point.  C2
is expected to flip at extremes (it hinges on transition costs
dominating — exactly what the paper says), which the table makes
visible instead of hiding.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.core.system import AutarkySystem
from repro.experiments.formatting import render_table
from repro.sgx.params import (
    PAGE_SIZE,
    AccessType,
    ArchOptimizations,
    CostModel,
    SgxVersion,
)

#: Multipliers applied to each perturbed constant.
FACTORS = (0.5, 0.75, 1.0, 1.5, 2.0)

#: Constants most likely to be miscalibrated, per conclusion.
PERTURBED_FIELDS = (
    "aex", "eresume", "eenter", "eexit",
    "ewb", "eldu", "eacceptcopy", "exitless_call",
)


@dataclass
class SensitivityRow:
    field: str
    factor: float
    c1_sgx1_cheaper: bool
    c2_elide_beats_unprotected: bool
    c3_exitless_cheaper: bool
    c4_ad_check_small: bool
    c5_premium_bounded: bool

    @property
    def all_hold(self):
        return all((
            self.c1_sgx1_cheaper, self.c2_elide_beats_unprotected,
            self.c3_exitless_cheaper, self.c4_ad_check_small,
            self.c5_premium_bounded,
        ))


def _fault_cost(cost, policy="rate_limit", faults=200, **overrides):
    kwargs = dict(
        epc_pages=2 * faults + 2_048,
        quota_pages=2 * faults + 256,
        enclave_managed_budget=faults + 64,
        heap_pages=4 * faults + 512,
        code_pages=8, data_pages=8, runtime_pages=4,
        cost=cost,
    )
    if policy != "baseline":
        kwargs["max_faults_per_progress"] = 100 * faults
    kwargs.update(overrides)
    system = AutarkySystem(SystemConfig.for_policy(policy, **kwargs))
    heap = system.runtime.regions["heap"]
    pages = [heap.start + i * PAGE_SIZE for i in range(faults)]
    for page in pages:
        system.runtime.access(page, AccessType.WRITE)
    if policy == "baseline":
        for page in pages:
            system.kernel.driver.evict_page(system.enclave, page)
    else:
        system.runtime.pager.evict_all()
    before = system.clock.cycles
    for page in pages:
        system.runtime.access(page, AccessType.READ)
    return (system.clock.cycles - before) / faults


def evaluate(cost, faults=200):
    """Check every conclusion under one cost model."""
    sgx1 = _fault_cost(cost, faults=faults)
    sgx2 = _fault_cost(cost, faults=faults,
                       sgx_version=SgxVersion.SGX2)
    unprotected = _fault_cost(cost, policy="baseline", faults=faults)
    elided = _fault_cost(
        cost, faults=faults,
        arch_opts=ArchOptimizations(in_enclave_resume=True,
                                    elide_aex=True),
    )
    exit_based = _fault_cost(cost, faults=faults, exitless=False)

    ad_fraction = cost.autarky_ad_check / max(
        cost.autarky_ad_check + 2_000, 1
    )  # per-fill check vs a conservative 2k-cycle inter-fill gap

    return dict(
        c1_sgx1_cheaper=sgx1 < sgx2,
        c2_elide_beats_unprotected=elided < unprotected,
        c3_exitless_cheaper=sgx1 < exit_based,
        c4_ad_check_small=ad_fraction < 0.01,
        c5_premium_bounded=sgx1 / unprotected < 2.5,
    )


def _grid_point(task):
    """Picklable worker: one (field, factor) perturbation."""
    field, factor, faults = task
    base = CostModel()
    cost = dataclasses.replace(
        base, **{field: int(getattr(base, field) * factor)}
    )
    return SensitivityRow(
        field=field, factor=factor, **evaluate(cost, faults),
    )


def run(fields=PERTURBED_FIELDS, factors=FACTORS, faults=150, jobs=1):
    from repro.parallel import run_indexed
    tasks = [
        (field, factor, faults)
        for field in fields for factor in factors
    ]
    return run_indexed(_grid_point, tasks, jobs=jobs)


def robustness_summary(rows):
    """conclusion -> fraction of perturbation points where it holds."""
    keys = ("c1_sgx1_cheaper", "c2_elide_beats_unprotected",
            "c3_exitless_cheaper", "c4_ad_check_small",
            "c5_premium_bounded")
    return {
        key: sum(1 for r in rows if getattr(r, key)) / len(rows)
        for key in keys
    }


def format_table(rows):
    def mark(flag):
        return "ok" if flag else "FLIP"

    table = render_table(
        ["perturbed constant", "x", "C1 sgx1<sgx2", "C2 elide<base",
         "C3 exitless", "C4 A/D small", "C5 premium<2.5x"],
        [
            (r.field, r.factor, mark(r.c1_sgx1_cheaper),
             mark(r.c2_elide_beats_unprotected),
             mark(r.c3_exitless_cheaper), mark(r.c4_ad_check_small),
             mark(r.c5_premium_bounded))
            for r in rows
        ],
        title="E11 (extension): cost-model sensitivity — do the "
              "paper's qualitative conclusions survive miscalibration?",
    )
    summary = robustness_summary(rows)
    footer = "\nrobustness: " + ", ".join(
        f"{key}={value:.0%}" for key, value in summary.items()
    )
    return table + footer


def main(jobs=1):
    rows = run(jobs=jobs)
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
