"""E2 — Figure 5: paging latency breakdown, SGX1 vs SGX2.

Measures per-page latency of a page *fault* (fetch) and a page
*eviction*, normalized to a single page at the driver's batch size of
16, broken into the figure's four stacked components:

* Enclave preempt. (AEX+ERESUME)
* PF handler invoc. (EENTER+EEXIT)
* Autarky PF handler overhead (handler logic + exitless host calls)
* SGX paging (instructions incl. encrypt/decrypt, driver work)

Method: a demand-paging enclave sweeps pages cyclically.

* Phase 1 (budget not yet full, pages pre-seeded in the backing store)
  measures the pure fetch path: every access is one fault, no evictions.
* Phase 2 (steady state) adds exactly one amortized page-eviction per
  fault; the eviction breakdown is the component-wise difference.

The paper's conclusion this reproduces: transitions are 40-50% of
fault latency; eliding AEX (§5.1.3) would make Autarky paging faster
than today's unprotected paging; SGX1 paging instructions are cheaper
than the SGX2 path, so the evaluation defaults to SGX1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import Category
from repro.core.config import SystemConfig
from repro.core.system import AutarkySystem
from repro.experiments.formatting import render_table
from repro.sgx.params import PAGE_SIZE, AccessType, SgxVersion

#: Figure component -> clock categories it aggregates.
COMPONENTS = {
    "preempt (AEX+ERESUME)": (Category.AEX_ERESUME,),
    "handler invoc. (EENTER+EEXIT)": (Category.EENTER_EEXIT,),
    "Autarky handler overhead": (
        Category.AUTARKY_HANDLER, Category.EXITLESS,
    ),
    "SGX paging (incl. crypto)": (
        Category.SGX_PAGING, Category.OS, Category.TLB_FILL,
    ),
}


@dataclass
class Fig5Row:
    operation: str      # "fault" or "evict"
    version: str        # "SGX1" or "SGX2"
    component: str
    cycles_per_page: float

    @property
    def key(self):
        return (self.operation, self.version, self.component)


def _measure_phase(system, first_page, npages):
    """Touch ``npages`` fresh pages; returns per-category per-page cycles."""
    heap = system.runtime.regions["heap"]
    snap = system.clock.snapshot()
    for i in range(first_page, first_page + npages):
        system.runtime.access(
            heap.start + i * PAGE_SIZE, AccessType.READ
        )
    delta = system.clock.delta_since(snap)
    return {cat: cycles / npages for cat, cycles in delta.items()}


def _aggregate(per_category):
    out = {}
    for component, cats in COMPONENTS.items():
        out[component] = sum(per_category.get(c, 0.0) for c in cats)
    return out


def run_version(version, iterations=1_000, elide_aex=False):
    """Measure fault and evict breakdowns for one SGX version."""
    from repro.sgx.params import ArchOptimizations
    budget = iterations + 64
    system = AutarkySystem(SystemConfig.for_policy(
        "rate_limit",
        max_faults_per_progress=10 * iterations,
        epc_pages=budget + 4_096,
        quota_pages=budget + 512,
        enclave_managed_budget=budget,
        heap_pages=4 * iterations + 1_024,
        code_pages=16,
        data_pages=16,
        runtime_pages=8,
        sgx_version=version,
        arch_opts=ArchOptimizations(elide_aex=elide_aex),
    ))
    heap = system.runtime.regions["heap"]

    # Seed the backing store so measured faults reload (ELDU /
    # EACCEPTCOPY) rather than zero-fill: touch then evict.
    warm = [heap.start + i * PAGE_SIZE for i in range(2 * iterations)]
    for page in warm:
        system.runtime.access(page, AccessType.WRITE)
    system.runtime.pager.evict_all()

    # Phase 1: pure faults (budget has room for `iterations` pages).
    fault_breakdown = _aggregate(
        _measure_phase(system, 0, iterations)
    )

    # Phase 2: steady state — every fault amortizes one eviction.
    steady = _aggregate(_measure_phase(system, iterations, iterations))
    evict_breakdown = {
        comp: max(0.0, steady[comp] - fault_breakdown[comp])
        for comp in COMPONENTS
    }
    return fault_breakdown, evict_breakdown


def run(iterations=1_000):
    """Full Figure 5: rows for both operations and versions."""
    rows = []
    for version, label in ((SgxVersion.SGX1, "SGX1"),
                           (SgxVersion.SGX2, "SGX2")):
        fault, evict = run_version(version, iterations=iterations)
        for comp, cycles in fault.items():
            rows.append(Fig5Row("fault", label, comp, cycles))
        for comp, cycles in evict.items():
            rows.append(Fig5Row("evict", label, comp, cycles))
    return rows


def totals(rows):
    """(operation, version) -> total cycles per page."""
    out = {}
    for row in rows:
        key = (row.operation, row.version)
        out[key] = out.get(key, 0.0) + row.cycles_per_page
    return out


def format_table(rows):
    table_rows = []
    for op in ("fault", "evict"):
        for version in ("SGX1", "SGX2"):
            for comp in COMPONENTS:
                match = [r for r in rows if r.key == (op, version, comp)]
                if match:
                    table_rows.append(
                        (op, version, comp,
                         f"{match[0].cycles_per_page:,.0f}")
                    )
            total = sum(
                r.cycles_per_page for r in rows
                if (r.operation, r.version) == (op, version)
            )
            table_rows.append((op, version, "TOTAL", f"{total:,.0f}"))
    return render_table(
        ["operation", "version", "component", "cycles/page"],
        table_rows,
        title="E2 / Figure 5: paging latency breakdown "
              "(per page, batch 16)",
    )


def format_figure(rows):
    """Figure 5 as terminal stacked bars."""
    from repro.experiments.ascii_plot import stacked_bars
    bar_rows = []
    for op in ("fault", "evict"):
        for version in ("SGX1", "SGX2"):
            parts = {
                r.component: r.cycles_per_page for r in rows
                if (r.operation, r.version) == (op, version)
            }
            bar_rows.append((f"{op} {version}", parts))
    return stacked_bars(
        bar_rows, list(COMPONENTS),
        title="Figure 5: cycles per page (stacked components)",
    )


def main():
    rows = run()
    print(format_table(rows))
    print()
    print(format_figure(rows))
    return rows


if __name__ == "__main__":
    main()
