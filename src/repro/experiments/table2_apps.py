"""E5 — Table 2: end-to-end application performance under page clusters.

Three applications shown vulnerable to controlled channels [76], each
measured unprotected (legacy SGX) and under Autarky in three hardware
configurations:

* *as measured* — the prototype on today's hardware,
* *no upcall*  — in-enclave ERESUME variant (§5.1.3),
* *no upcall/AEX* — additionally eliding the AEX.

Paper's results (throughput deltas vs unprotected):

=========  ==========  ==========  =============
workload   Autarky     no upcall   no upcall/AEX
=========  ==========  ==========  =============
libjpeg    −18%        −6%         +3%
Hunspell   −25%        −16%        −9%
FreeType   1×          1×          1×
=========  ==========  ==========  =============

libjpeg: the decoded output buffer exceeds EPC but its access pattern
is insensitive, so it stays OS-managed — Autarky's handler merely
forwards those faults to the OS.  With AEX elision the forwarding path
is *cheaper* than a native fault, hence the +3%.

Hunspell: 15 dictionaries exceed EPC; each dictionary's pages form one
manual cluster.  Load-time faults dominate; the spell check itself hits
one cluster fetch and then runs at baseline speed.

FreeType: everything fits EPC and gets pinned — no faults, no overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.freetype import FreeType
from repro.apps.hunspell import Dictionary, Hunspell
from repro.apps.jpeg import JpegCodec, make_block_image
from repro.core.config import SystemConfig
from repro.core.system import AutarkySystem
from repro.experiments.formatting import render_table
from repro.runtime.loader import LibraryImage
from repro.sgx.params import PAGE_SIZE, ArchOptimizations

CONFIGS = {
    "unprotected": None,
    "autarky": ArchOptimizations(),
    "no_upcall": ArchOptimizations(in_enclave_resume=True),
    "no_upcall_aex": ArchOptimizations(in_enclave_resume=True,
                                       elide_aex=True),
}


@dataclass
class Table2Row:
    workload: str
    config: str
    throughput: float       # workload-specific unit
    unit: str
    faults: int
    enclave_managed_pages: int

    def relative_to(self, baseline):
        return self.throughput / baseline.throughput


# -- libjpeg -----------------------------------------------------------------


def _jpeg_system(config_name, quota_pages, heap_pages):
    policy = "baseline" if config_name == "unprotected" else "pin_all"
    return AutarkySystem(SystemConfig.for_policy(
        policy,
        epc_pages=quota_pages + 4_096,
        quota_pages=quota_pages,
        enclave_managed_budget=max(256, quota_pages // 4),
        heap_pages=heap_pages,
        code_pages=32,
        data_pages=64,
        runtime_pages=8,
        arch_opts=CONFIGS[config_name] or ArchOptimizations(),
    ))


def run_jpeg(config_name, image_blocks=(192, 192), quota_pages=1_200):
    """Decode + invert + encode a large image (decoded > EPC quota)."""
    image = make_block_image(*image_blocks, pattern="disc")
    out_pages = -(-image.n_blocks // (PAGE_SIZE // JpegCodec.BYTES_PER_BLOCK))
    in_pages = -(-out_pages // JpegCodec.COMPRESSION_RATIO) + 1
    temp_pages = 16
    heap_pages = in_pages + temp_pages + out_pages + 64

    system = _jpeg_system(config_name, quota_pages, heap_pages)
    engine = system.engine()
    heap = system.runtime.regions["heap"]
    input_start = heap.start
    temp_start = input_start + in_pages * PAGE_SIZE
    output_start = temp_start + temp_pages * PAGE_SIZE

    lib = system.runtime.loader.load(
        LibraryImage("libjpeg", code_pages=8)
    )
    codec = JpegCodec(engine, lib, input_start, temp_start, output_start,
                      temp_pages=temp_pages)

    if config_name != "unprotected":
        # libjpeg's sensitive state: code and the temp buffer are
        # claimed (the ay_add_page-after-malloc pattern); the huge
        # decoded buffer and compressed input stay OS-managed.
        sensitive = (
            [lib.code_page(i) for i in range(lib.image.code_pages)]
            + [temp_start + i * PAGE_SIZE for i in range(temp_pages)]
        )
        system.runtime.preload(sensitive, pin=True)
        for name in ("heap",):
            pass  # heap pages were claimed at launch; release the
                  # insensitive ranges below.
        insensitive = (
            [input_start + i * PAGE_SIZE for i in range(in_pages)]
            + [output_start + i * PAGE_SIZE for i in range(out_pages)]
        )
        system.runtime.release(insensitive)
        system.policy.seal()

    with system.measure() as m:
        decoded = codec.decode(image)
        codec.invert(image)
        codec.encode(image)
    metrics = m.metrics(ops=1)
    mb_per_s = decoded / 1e6 / metrics.seconds
    managed = system.runtime.pager.resident_count()
    return Table2Row("libjpeg", config_name, mb_per_s, "MB/s",
                     metrics.faults, managed)


# -- Hunspell ----------------------------------------------------------------


def run_hunspell(config_name, n_dicts=15, words_per_dict=4_000,
                 checks=6_000, quota_pages=900):
    """15-dictionary spelling server; one manual cluster per dictionary."""
    policy = "baseline" if config_name == "unprotected" else "clusters"
    probe = Dictionary("probe", 0, words_per_dict)
    dict_pages = probe.total_pages
    heap_pages = n_dicts * dict_pages + 256

    system = AutarkySystem(SystemConfig.for_policy(
        policy,
        cluster_pages=None,
        cluster_unclustered="demand",
        epc_pages=quota_pages + 4_096,
        quota_pages=quota_pages,
        enclave_managed_budget=quota_pages - 128,
        heap_pages=heap_pages,
        code_pages=32,
        data_pages=32,
        runtime_pages=8,
        arch_opts=CONFIGS[config_name] or ArchOptimizations(),
        max_faults_per_progress=10_000,
    ))
    engine = system.engine()
    heap = system.runtime.regions["heap"]
    dictionaries = [
        Dictionary(f"lang{d}" if d else "en_US",
                   heap.start + d * dict_pages * PAGE_SIZE,
                   words_per_dict)
        for d in range(n_dicts)
    ]
    hunspell = Hunspell(engine, dictionaries)

    def enlighten(dictionary):
        """The 30-LOC modification: once a dictionary is initialized,
        assign its pages to a distinct cluster (and regroup them into
        one eviction unit so they page as a whole from now on)."""
        manager = system.runtime.clusters
        cluster = manager.new_cluster()
        for page in dictionary.pages():
            manager.ay_add_page(cluster, page)
        system.runtime.pager.regroup(dictionary.pages())

    # Load English first so it is evicted by the time of the check
    # (the paper's pessimistic measurement includes the loads).
    words = [f"word{i}" for i in range(words_per_dict)]
    text = [words[i % 3_000] for i in range(checks)]
    with system.measure() as m:
        for d in dictionaries:
            hunspell.load(d.name)
            if config_name != "unprotected":
                enlighten(d)
        hunspell.check_text(text, "en_US")
    metrics = m.metrics(ops=checks)
    kwd_per_s = checks / 1e3 / metrics.seconds
    managed = system.runtime.pager.resident_count()
    return Table2Row("Hunspell", config_name, kwd_per_s, "kwd/s",
                     metrics.faults, managed)


# -- FreeType ----------------------------------------------------------------


def run_freetype(config_name, renders=20_000, quota_pages=2_000):
    """Glyph rendering; everything fits EPC and is pinned."""
    policy = "baseline" if config_name == "unprotected" else "pin_all"
    system = AutarkySystem(SystemConfig.for_policy(
        policy,
        epc_pages=quota_pages + 4_096,
        quota_pages=quota_pages,
        enclave_managed_budget=quota_pages - 256,
        heap_pages=512,
        code_pages=64,
        data_pages=32,
        runtime_pages=8,
        arch_opts=CONFIGS[config_name] or ArchOptimizations(),
    ))
    engine = system.engine()
    heap = system.runtime.regions["heap"]
    lib = system.runtime.loader.load(
        LibraryImage("freetype", code_pages=48)
    )
    ft = FreeType(engine, lib, bitmap_start=heap.start)

    warm = [lib.code_page(i) for i in range(48)] \
        + [heap.start + i * PAGE_SIZE for i in range(8)]
    if config_name != "unprotected":
        system.runtime.preload(warm, pin=True)
        system.policy.seal()
    else:
        system.runtime.preload_os(warm)

    text = "".join(ft.glyphs[(i * 7) % len(ft.glyphs)]
                   for i in range(renders))
    with system.measure() as m:
        ft.render_text(text)
    metrics = m.metrics(ops=renders)
    kop_per_s = renders / 1e3 / metrics.seconds
    managed = system.runtime.pager.resident_count()
    return Table2Row("FreeType", config_name, kop_per_s, "kop/s",
                     metrics.faults, managed)


# -- harness -----------------------------------------------------------------

RUNNERS = {
    "libjpeg": run_jpeg,
    "Hunspell": run_hunspell,
    "FreeType": run_freetype,
}


def run(workloads=None):
    rows = []
    for name, runner in RUNNERS.items():
        if workloads and name not in workloads:
            continue
        for config in CONFIGS:
            rows.append(runner(config))
    return rows


def format_table(rows):
    by_workload = {}
    for row in rows:
        by_workload.setdefault(row.workload, {})[row.config] = row
    table_rows = []
    for workload, configs in by_workload.items():
        base = configs["unprotected"]
        for config, row in configs.items():
            rel = row.relative_to(base)
            delta = "baseline" if config == "unprotected" else \
                f"{(rel - 1):+.0%}"
            table_rows.append((
                workload, config,
                f"{row.throughput:,.1f} {row.unit}",
                delta, row.faults, row.enclave_managed_pages,
            ))
    return render_table(
        ["workload", "config", "throughput", "vs unprotected",
         "faults", "encl-managed pages"],
        table_rows,
        title="E5 / Table 2: end-to-end applications with page clusters",
    )


def main():
    rows = run()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
