"""Terminal rendering of the paper's figures (log-scale scatter/bars).

Pure-text plotting so `python -m repro fig6` can draw the actual
figure, not just its table — no plotting dependencies required.
"""

from __future__ import annotations

import math


def _log_position(value, lo, hi, width):
    if value <= 0:
        return 0
    span = math.log10(hi) - math.log10(lo)
    if span <= 0:
        return 0
    frac = (math.log10(value) - math.log10(lo)) / span
    return max(0, min(width - 1, round(frac * (width - 1))))


def log_scatter(series, width=64, title=None, unit=""):
    """Render named series of (x_label, value) pairs on one shared
    horizontal log axis.

    >>> print(log_scatter({"a": [("p1", 10), ("p2", 1000)]}))
    """
    values = [
        v for points in series.values() for _x, v in points if v > 0
    ]
    if not values:
        raise ValueError("nothing to plot")
    lo, hi = min(values), max(values)
    if lo == hi:
        hi = lo * 10

    label_width = max(
        len(f"{name} {x}") for name, points in series.items()
        for x, _v in points
    )
    lines = []
    if title:
        lines.append(title)
    axis = f"{'':<{label_width}}  |{'-' * width}|"
    lines.append(
        f"{'':<{label_width}}  {lo:>.0f}{'':^{width - 8}}{hi:,.0f} {unit}"
    )
    lines.append(axis)
    for name, points in series.items():
        for x, value in points:
            row = [" "] * width
            row[_log_position(value, lo, hi, width)] = "*"
            label = f"{name} {x}"
            lines.append(
                f"{label:<{label_width}}  |{''.join(row)}| "
                f"{value:,.0f}"
            )
    return "\n".join(lines)


def bar_chart(rows, width=48, title=None, fmt="{:,.0f}"):
    """Horizontal bars for (label, value) rows, linear scale."""
    if not rows:
        raise ValueError("nothing to plot")
    peak = max(v for _label, v in rows)
    label_width = max(len(label) for label, _v in rows)
    lines = []
    if title:
        lines.append(title)
    for label, value in rows:
        filled = 0 if peak == 0 else round(width * value / peak)
        lines.append(
            f"{label:<{label_width}}  {'#' * filled}"
            f"{' ' * (width - filled)}  {fmt.format(value)}"
        )
    return "\n".join(lines)


def stacked_bars(rows, components, width=48, title=None):
    """Stacked horizontal bars.

    ``rows``: list of (label, {component: value}); ``components``: the
    stacking order, each drawn with its own glyph.
    """
    glyphs = "#=+:%@o"
    if len(components) > len(glyphs):
        raise ValueError("too many components to draw distinctly")
    peak = max(sum(parts.values()) for _label, parts in rows)
    label_width = max(len(label) for label, _parts in rows)
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{glyphs[i]}={name}" for i, name in enumerate(components)
    )
    lines.append(legend)
    for label, parts in rows:
        bar = []
        for i, name in enumerate(components):
            share = parts.get(name, 0) / peak if peak else 0
            bar.append(glyphs[i] * round(width * share))
        body = "".join(bar)[:width]
        total = sum(parts.values())
        lines.append(
            f"{label:<{label_width}}  {body:<{width}}  {total:,.0f}"
        )
    return "\n".join(lines)
