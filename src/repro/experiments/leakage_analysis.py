"""E8 — §5.3 leakage bounds and the §7.2 cluster guess probability.

Three analyses:

* **Cluster guess probability** — the analytic item-recovery bound
  item_size / (cluster_pages × page_size); the paper's example: 0.62%
  for 256-byte items in 10-page clusters.  Cross-checked empirically:
  run lookups under the cluster policy, observe which pages each fetch
  brings, and measure how often a uniform guess over the fetched
  cluster's item slots would hit the accessed item.
* **Trace distinguishability** — mutual information between the secret
  (word checked) and the observable, for each policy: full trace
  (vanilla), cluster id (clusters), nothing (pin-all/ORAM).
* **Termination attack bandwidth** — one bit per enclave restart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.hunspell import Dictionary
from repro.core.leakage import (
    cluster_guess_probability,
    distinguishable_secrets,
    termination_attack_bits,
    trace_mutual_information,
)
from repro.experiments.formatting import fmt_pct, render_table
from repro.sgx.params import PAGE_SIZE


@dataclass
class LeakageRow:
    analysis: str
    configuration: str
    value: float
    unit: str


def run_cluster_probability(item_size=256,
                            cluster_sizes=(1, 2, 5, 10, 20, 50, 100)):
    """The analytic curve behind Figure 6's security interpretation."""
    return [
        LeakageRow(
            "cluster guess probability",
            f"{pages}-page clusters, {item_size}B items",
            cluster_guess_probability(item_size, pages),
            "probability",
        )
        for pages in cluster_sizes
    ]


def run_trace_distinguishability(n_words=6_000, vocabulary=500,
                                 cluster_pages=10):
    """How much of the word secret each policy's observable reveals."""
    dictionary = Dictionary("en_US", 0x10_0000_0000, n_words)
    words = [f"word{i}" for i in range(vocabulary)]

    full_traces = {w: dictionary.signature(w) for w in words}

    def cluster_of(page):
        page_index = (page - dictionary.start) // PAGE_SIZE
        return page_index // cluster_pages

    cluster_traces = {
        w: tuple(sorted({cluster_of(p) for p in dictionary.signature(w)}))
        for w in words
    }
    pinned_traces = {w: () for w in words}

    rows = []
    for name, traces in (
        ("vanilla (full page trace)", full_traces),
        (f"{cluster_pages}-page clusters (cluster ids)", cluster_traces),
        ("pin-all / ORAM (no observable)", pinned_traces),
    ):
        rows.append(LeakageRow(
            "trace distinguishability", name,
            distinguishable_secrets(traces), "unique fraction",
        ))
        rows.append(LeakageRow(
            "trace mutual information", name,
            trace_mutual_information(traces), "bits",
        ))
    return rows


def run_termination_bandwidth(total_pages=48_640,
                              set_sizes=(1, 16, 256, 4_096)):
    rows = []
    for size in set_sizes:
        per_restart, ambiguity = termination_attack_bits(
            size, total_pages
        )
        rows.append(LeakageRow(
            "termination attack",
            f"unmap {size} pages",
            per_restart, "bits/restart",
        ))
        rows.append(LeakageRow(
            "termination attack residual ambiguity",
            f"unmap {size} pages",
            ambiguity, "bits",
        ))
    return rows


def run():
    return (
        run_cluster_probability()
        + run_trace_distinguishability()
        + run_termination_bandwidth()
    )


def format_table(rows):
    return render_table(
        ["analysis", "configuration", "value", "unit"],
        [
            (r.analysis, r.configuration,
             fmt_pct(r.value, 2) if r.unit == "probability"
             else f"{r.value:.3f}", r.unit)
            for r in rows
        ],
        title="E8: leakage analysis (§5.3)",
    )


def main():
    rows = run()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
