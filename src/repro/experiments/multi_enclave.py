"""E9 (extension) — multiple distrusting enclaves sharing one EPC.

§8 closes with: "Using similar approaches to coordinate memory demands
between the OS and multiple distrusting enclaves is an open research
topic."  This experiment explores the design space our stack supports:

* **static** — fixed equal quotas: the loaded enclave thrashes while
  the idle one wastes its slice (the only option when enclaves do not
  cooperate at all);
* **balloon** — the §5.2.1-extension upcalls: the OS asks the idle
  enclave to shrink and re-grants the quota to the loaded one — secure
  (only whole eviction units move) and dramatically better;
* **suspend** — the OS's big hammer: swap the idle enclave out
  entirely and give its whole slice to the loaded one (maximum
  memory, but the idle enclave pays a full restore on next use).

Both enclaves run the Memcached model; "loaded" serves a uniform GET
stream over a working set larger than its static slice, "idle" serves
a trickle over a small hot set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.memcached import Memcached
from repro.experiments.formatting import render_table
from repro.host.kernel import HostKernel
from repro.runtime.libos import EnclaveLayout, GrapheneRuntime
from repro.runtime.policies import RateLimitPolicy
from repro.runtime.rate_limit import RateLimiter
from repro.sgx.params import PAGE_SIZE
from repro.workloads.ycsb import UniformGenerator

STRATEGIES = ("static", "balloon", "suspend")


@dataclass
class MultiEnclaveRow:
    strategy: str
    loaded_throughput: float
    idle_throughput: float
    loaded_faults: int
    epc_moved: int


def _launch_pair(epc_pages, quota_each):
    kernel = HostKernel(epc_pages=epc_pages)
    runtimes = []
    for base in (0x10_0000_0000, 0x20_0000_0000):
        runtimes.append(GrapheneRuntime.launch(
            kernel, RateLimitPolicy(RateLimiter(1_000_000)),
            layout=EnclaveLayout(base=base, runtime_pages=4,
                                 code_pages=8, data_pages=8,
                                 heap_pages=16_384),
            quota_pages=quota_each,
            enclave_managed_budget=quota_each - 64,
        ))
    return kernel, runtimes


def _grant_quota(kernel, runtime, extra_pages):
    """OS raises an enclave's quota and tells its runtime (the grant
    half of cooperative ballooning)."""
    state = kernel.driver.state(runtime.enclave)
    state.quota_pages += extra_pages
    runtime.pager.budget_pages += extra_pages


def run_strategy(strategy, requests=1_500, seed=53):
    epc_pages = 4_096
    quota_each = 1_800
    kernel, (loaded_rt, idle_rt) = _launch_pair(epc_pages, quota_each)

    loaded = Memcached(DirectLike(loaded_rt),
                       loaded_rt.regions["heap"].start,
                       24 * 1024 * 1024)     # 6,144 pages >> quota
    idle = Memcached(DirectLike(idle_rt),
                     idle_rt.regions["heap"].start,
                     8 * 1024 * 1024)        # fills its slice, but cold

    # Warm both stores.
    for server, runtime in ((loaded, loaded_rt), (idle, idle_rt)):
        for i in range(server.total_pages):
            server.engine.data_access(
                runtime.regions["heap"].start + i * PAGE_SIZE,
                write=True,
            )

    epc_moved = 0
    if strategy == "balloon":
        # The per-request fraction cap means the OS negotiates in
        # rounds until the enclave stops giving (floor/pinned pages).
        target, freed_total = 1_200, 0
        while freed_total < target:
            freed = kernel.request_memory_reduction(
                idle_rt.enclave, target - freed_total
            )
            if freed == 0:
                break
            freed_total += freed
        _grant_quota(kernel, loaded_rt, freed_total)
        state = kernel.driver.state(idle_rt.enclave)
        state.quota_pages -= freed_total
        idle_rt.pager.budget_pages = max(
            64, idle_rt.pager.budget_pages - freed_total
        )
        epc_moved = freed_total
    elif strategy == "suspend":
        kernel.driver.suspend_enclave(idle_rt.enclave)
        moved = quota_each - 64
        _grant_quota(kernel, loaded_rt, moved)
        epc_moved = moved

    gen = UniformGenerator(loaded.n_keys, seed=seed)
    keys = gen.keys(requests)
    clock0 = kernel.clock.cycles
    faults0 = kernel.cpu.fault_count
    for key in keys:
        loaded.get(key)
    loaded_cycles = kernel.clock.cycles - clock0
    loaded_faults = kernel.cpu.fault_count - faults0

    # The idle enclave gets a trickle of traffic afterwards; under
    # "suspend" the loan must be repaid first (the loaded enclave
    # balloons back down), then the idle enclave pays its full restore.
    if strategy == "suspend":
        repaid = 0
        while repaid < epc_moved:
            freed = kernel.request_memory_reduction(
                loaded_rt.enclave, epc_moved - repaid
            )
            if freed == 0:
                break
            repaid += freed
        _grant_quota(kernel, loaded_rt, -epc_moved)
    idle_gen = UniformGenerator(idle.n_keys, seed=seed + 1)
    clock0 = kernel.clock.cycles
    if strategy == "suspend":
        # The restore of every suspended page is the price of the big
        # hammer, and the idle enclave pays it on wake-up.
        kernel.driver.resume_enclave(idle_rt.enclave)
    idle_keys = idle_gen.keys(max(50, requests // 10))
    for key in idle_keys:
        idle.get(key)
    idle_cycles = kernel.clock.cycles - clock0

    # Retire both enclaves before returning: without the explicit
    # reclaim their EPC frames and driver paging state would outlive
    # the row (the dead-enclave bookkeeping leak).
    for runtime in (loaded_rt, idle_rt):
        kernel.driver.reclaim_enclave(runtime.enclave)
    assert kernel.epc.free_pages == epc_pages, (
        f"EPC leak after teardown: {kernel.epc.free_pages} free of "
        f"{epc_pages}"
    )

    hz = kernel.clock.frequency_hz
    return MultiEnclaveRow(
        strategy=strategy,
        loaded_throughput=requests / (loaded_cycles / hz),
        idle_throughput=len(idle_keys) / (idle_cycles / hz),
        loaded_faults=loaded_faults,
        epc_moved=epc_moved,
    )


class DirectLike:
    """Minimal engine adapter over a runtime (kept local: this
    experiment drives two runtimes on one kernel, which the standard
    AutarkySystem one-enclave assembly does not cover)."""

    def __init__(self, runtime):
        self.runtime = runtime

    def data_access(self, vaddr, write=False):
        from repro.sgx.params import AccessType
        self.runtime.access(
            vaddr, AccessType.WRITE if write else AccessType.READ
        )

    def data_access_run(self, vaddrs, write=False):
        from repro.sgx.params import AccessType
        self.runtime.access_pages(
            vaddrs, AccessType.WRITE if write else AccessType.READ
        )

    def compute(self, cycles):
        self.runtime.compute(cycles)

    def make_run(self, vaddrs):
        return list(vaddrs)

    def replay(self, trace):
        run, cycles = trace
        self.data_access_run(run)
        self.runtime.compute(cycles)

    def progress(self, kind):
        self.runtime.progress(kind)


def run(requests=1_500):
    return [run_strategy(s, requests=requests) for s in STRATEGIES]


def format_table(rows):
    return render_table(
        ["strategy", "loaded req/s", "idle req/s", "loaded faults",
         "EPC pages moved"],
        [
            (r.strategy, f"{r.loaded_throughput:,.0f}",
             f"{r.idle_throughput:,.0f}", r.loaded_faults, r.epc_moved)
            for r in rows
        ],
        title="E9 (extension): two enclaves sharing EPC — "
              "coordination strategies",
    )


def main():
    rows = run()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
