"""E6 — Figure 8: Memcached under Autarky's paging policies.

Memcached v1.5.17 with 400 MB of 1 KB entries (oversubscribing EPC),
YCSB workload C (100% GET), single serving thread, measured under four
key distributions — uniform, zipfian(0.99), hotspot(90%/1%) and
hotspot(99%/1%) — and four configurations:

* insecure baseline (legacy SGX, OS demand paging),
* rate-limited paging (no application change),
* 10-page clusters (the 30-LOC slab-allocation change),
* ORAM for all items (recompiled; 1 GB tree, 128 MB cache).

Paper's qualitative results this reproduces: rate-limit has the lowest
impact (just transition costs per fault); clusters beat ORAM under
uniform access; the difference shrinks as the distribution skews; and
for the hottest distribution ORAM lands within ~60% of the insecure
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.memcached import Memcached
from repro.core.config import SystemConfig
from repro.core.system import AutarkySystem
from repro.experiments.formatting import render_table
from repro.sgx.params import PAGE_SIZE
from repro.workloads.ycsb import make_generator

DISTRIBUTIONS = ("uniform", "zipf", "hotspot90", "hotspot99")
POLICIES = ("baseline", "rate_limit", "clusters", "oram")


@dataclass
class Fig8Scale:
    """Scaled-down instance of the paper's configuration (1/8)."""

    data_bytes: int = 400 * 1024 * 1024 // 8
    item_size: int = 1024
    oram_tree_pages: int = 262_144 // 8
    oram_cache_pages: int = 32_768 // 8
    budget_pages: int = 48_640 // 8   # the 190 MB EPC, scaled


@dataclass
class Fig8Point:
    policy: str
    distribution: str
    throughput: float
    hit_rate: float   # ORAM cache hit rate (0 for other policies)
    faults: int


def _build(policy, scale):
    common = dict(
        epc_pages=scale.budget_pages + 4_096,
        quota_pages=scale.budget_pages + 1_024,
        enclave_managed_budget=scale.budget_pages,
        heap_pages=max(
            scale.data_bytes // PAGE_SIZE * 2,
            scale.oram_tree_pages,
        ) + 512,
        code_pages=32,
        data_pages=32,
        runtime_pages=8,
    )
    if policy == "oram":
        return AutarkySystem(SystemConfig.for_policy(
            "oram",
            oram_tree_pages=scale.oram_tree_pages,
            oram_cache_pages=scale.oram_cache_pages,
            **common,
        ))
    if policy == "clusters":
        return AutarkySystem(SystemConfig.for_policy(
            "clusters", cluster_pages=10, **common,
        ))
    if policy == "rate_limit":
        return AutarkySystem(SystemConfig.for_policy(
            "rate_limit", max_faults_per_progress=64, **common,
        ))
    return AutarkySystem(SystemConfig.for_policy("baseline", **common))


def run_policy(policy, scale=None, requests=2_000, seed=41):
    """Measure one policy under all four distributions."""
    scale = scale or Fig8Scale()
    system = _build(policy, scale)
    engine = system.engine()
    server = Memcached(engine, system.heap_start(), scale.data_bytes,
                       item_size=scale.item_size)
    if policy == "clusters":
        # The slab-allocation change: item and index pages flow through
        # the clustering allocator in allocation order.
        system.runtime.allocator.alloc_pages(server.total_pages)

    # Load phase (not measured): touch every page once so the store is
    # fully populated and the system reaches paging steady state.  Each
    # touch follows a SET-request allocation, so the libOS observes
    # progress (keeps the rate limiter's window realistic).
    from repro.runtime.rate_limit import ProgressKind
    for page_index in range(server.total_pages):
        engine.progress(ProgressKind.ALLOCATION)
        engine.data_access(
            system.heap_start() + page_index * PAGE_SIZE, write=True
        )

    points = []
    oram_requests = requests if policy != "oram" else max(
        400, requests // 2
    )
    for dist in DISTRIBUTIONS:
        gen = make_generator(dist, server.n_keys, seed=seed)
        keys = gen.keys(oram_requests)
        cache = getattr(system.policy, "cache", None)
        hits0, misses0 = (
            (cache.hits, cache.misses) if cache else (0, 0)
        )
        with system.measure() as m:
            server.serve(keys)
        metrics = m.metrics(ops=len(keys))
        hit = 0.0
        if cache:
            dh = cache.hits - hits0
            dm = cache.misses - misses0
            hit = dh / (dh + dm) if dh + dm else 0.0
        points.append(Fig8Point(
            policy=policy,
            distribution=dist,
            throughput=metrics.throughput,
            hit_rate=hit,
            faults=metrics.faults,
        ))
    return points


def _policy_points(task):
    """Picklable worker: all four distributions for one policy."""
    policy, scale, requests = task
    return run_policy(policy, scale=scale, requests=requests)


def run(scale=None, requests=2_000, jobs=1):
    from repro.parallel import run_indexed
    tasks = [(policy, scale, requests) for policy in POLICIES]
    points = []
    for policy_points in run_indexed(_policy_points, tasks, jobs=jobs):
        points.extend(policy_points)
    return points


def format_table(points):
    rows = [
        (p.policy, p.distribution, f"{p.throughput:,.0f}",
         f"{p.hit_rate:.1%}" if p.policy == "oram" else "-", p.faults)
        for p in points
    ]
    table = render_table(
        ["policy", "distribution", "req/s", "ORAM hit", "faults"],
        rows,
        title="E6 / Figure 8: Memcached + YCSB-C under Autarky policies",
    )
    base99 = next(p.throughput for p in points
                  if p.policy == "baseline"
                  and p.distribution == "hotspot99")
    oram99 = next((p.throughput for p in points
                   if p.policy == "oram"
                   and p.distribution == "hotspot99"), None)
    footer = ""
    if oram99:
        footer = (
            f"\nhottest distribution: ORAM is "
            f"{base99 / oram99 - 1:.0%} slower than the insecure "
            f"baseline (paper: ~60%)"
        )
    return table + footer


def format_figure(points):
    """Figure 8 as terminal bars, grouped by distribution."""
    from repro.experiments.ascii_plot import bar_chart
    rows = [
        (f"{p.distribution:>9} {p.policy}", p.throughput)
        for dist in DISTRIBUTIONS
        for p in points if p.distribution == dist
    ]
    return bar_chart(rows, title="Figure 8: requests/s")


def main(jobs=1):
    points = run(jobs=jobs)
    print(format_table(points))
    print()
    print(format_figure(points))
    return points


if __name__ == "__main__":
    main()
