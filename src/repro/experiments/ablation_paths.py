"""A2 — ablation: host-call and hardware-path choices.

Dimensions swept on the Figure 5 microbenchmark workload:

* exitless host calls vs synchronous EEXIT/EENTER OCALLs (§6 uses
  exitless calls following Eleos/SCONE/HotCalls);
* SGX1 (driver EWB/ELDU) vs SGX2 (in-enclave dynamic memory
  management) paging mechanisms (§7.1 picks SGX1);
* the §5.1.3 hardware optimizations: in-enclave resume, AEX elision —
  the latter makes secure paging cheaper than an unprotected fault.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.core.system import AutarkySystem
from repro.experiments.formatting import render_table
from repro.sgx.params import (
    PAGE_SIZE,
    AccessType,
    ArchOptimizations,
    SgxVersion,
)


@dataclass
class PathRow:
    variant: str
    cycles_per_fault: float
    faults: int


VARIANTS = {
    "sgx1 exitless (default)": dict(),
    "sgx1 exit-based ocalls": dict(exitless=False),
    "sgx2 exitless": dict(sgx_version=SgxVersion.SGX2),
    "sgx2 exit-based ocalls": dict(sgx_version=SgxVersion.SGX2,
                                   exitless=False),
    "sgx1 + in-enclave resume": dict(
        arch_opts=ArchOptimizations(in_enclave_resume=True)
    ),
    "sgx1 + elide AEX": dict(
        arch_opts=ArchOptimizations(in_enclave_resume=True,
                                    elide_aex=True)
    ),
    "unprotected baseline": dict(policy="baseline"),
}


def run_variant(name, overrides, faults=800):
    policy = overrides.pop("policy", "rate_limit")
    budget = faults + 64
    kwargs = dict(
        epc_pages=2 * faults + 4_096,
        quota_pages=2 * faults + 512,
        enclave_managed_budget=budget,
        heap_pages=4 * faults + 1_024,
        code_pages=16,
        data_pages=16,
        runtime_pages=8,
        max_faults_per_progress=10 * faults,
    )
    if policy == "baseline":
        kwargs.pop("max_faults_per_progress")
    kwargs.update(overrides)
    system = AutarkySystem(SystemConfig.for_policy(policy, **kwargs))
    heap = system.runtime.regions["heap"]
    pages = [heap.start + i * PAGE_SIZE for i in range(faults)]

    # Warm then evict everything, so the measured faults exercise the
    # reload paths (ELDU vs decrypt+EACCEPTCOPY) where the SGX versions
    # actually differ — not the identical zero-fill path.
    for page in pages:
        system.runtime.access(page, AccessType.WRITE)
    if policy == "baseline":
        for page in pages:
            system.kernel.driver.evict_page(system.enclave, page)
    else:
        system.runtime.pager.evict_all()

    with system.measure() as m:
        for page in pages:
            system.runtime.access(page, AccessType.READ)
    metrics = m.metrics(ops=faults)
    return PathRow(name, metrics.cycles_per_op, metrics.faults)


def run(faults=800):
    return [
        run_variant(name, dict(overrides), faults=faults)
        for name, overrides in VARIANTS.items()
    ]


def format_table(rows):
    base = next(
        (r for r in rows if r.variant == "unprotected baseline"), None
    )
    out = []
    for r in rows:
        rel = f"{r.cycles_per_fault / base.cycles_per_fault:.2f}x" \
            if base else "-"
        out.append((r.variant, f"{r.cycles_per_fault:,.0f}", rel))
    return render_table(
        ["variant", "cycles/fault", "vs unprotected"],
        out,
        title="A2: host-call and hardware-path ablation "
              "(reload faults)",
    )


def main():
    rows = run()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
