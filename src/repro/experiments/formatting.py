"""Plain-text table rendering for experiment output."""

from __future__ import annotations


def render_table(headers, rows, title=None):
    """Render an aligned ASCII table; values are str()'d."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(
            " | ".join(c.ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def fmt_pct(x, digits=1):
    return f"{100 * x:.{digits}f}%"


def fmt_ratio(x, digits=2):
    return f"{x:.{digits}f}x"


def fmt_k(x):
    """Thousands formatting for cycle counts / rates."""
    if x >= 1_000_000:
        return f"{x / 1e6:.2f}M"
    if x >= 1_000:
        return f"{x / 1e3:.1f}k"
    return f"{x:.0f}"
