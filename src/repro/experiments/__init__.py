"""Experiment harness: one module per paper table/figure.

Every experiment exposes a ``run(...)`` returning structured rows and a
``format_table(rows)`` that prints the same rows/series the paper
reports.  Benchmarks under ``benchmarks/`` call these with the default
(scaled) parameters; ``examples/`` and EXPERIMENTS.md show full-size
invocations.

Index (see DESIGN.md §3):

========  =======================================================
E1        §7 nbench architecture-overhead analysis
E2        Figure 5 — paging latency breakdown (SGX1 vs SGX2)
E3        Figure 6 — uthash: clusters vs (un)cached ORAM
E4        Figure 7 — rate-limited paging on Phoenix/PARSEC
E5        Table 2 — libjpeg / Hunspell / FreeType end-to-end
E6        Figure 8 — Memcached under four YCSB distributions
E7        attack mitigation (published attacks vs Autarky)
E8        leakage analysis (§5.3 bounds)
A1        ablation — FIFO vs fault-frequency eviction
A2        ablation — exitless vs exit-based calls, SGX1 vs SGX2
========  =======================================================
"""

from repro.experiments import formatting

__all__ = ["formatting"]
