"""Full-report generation: run every experiment, write one document.

``python -m repro report`` (or :func:`generate`) runs the complete
harness and writes a self-contained markdown report with every table
the paper's evaluation contains, plus the extensions — the artifact a
reviewer would ask for.
"""

from __future__ import annotations

import io
import time
from contextlib import redirect_stdout

#: (section title, experiment module name) in presentation order.
SECTIONS = [
    ("E1 — nbench architecture overhead (§7)", "arch_overhead"),
    ("E2 — Figure 5: paging latency breakdown", "fig5_microbench"),
    ("E3 — Figure 6: uthash clusters vs ORAM", "fig6_uthash"),
    ("E4 — Figure 7: Phoenix/PARSEC rate limiting", "fig7_rate_limit"),
    ("E5 — Table 2: end-to-end applications", "table2_apps"),
    ("E6 — Figure 8: Memcached + YCSB", "fig8_memcached"),
    ("E7 — attack mitigation", "attack_mitigation"),
    ("E8 — leakage analysis (§5.3)", "leakage_analysis"),
    ("A1 — eviction-order ablation", "ablation_eviction"),
    ("A2 — host-call/hardware-path ablation", "ablation_paths"),
    ("E9 — multi-enclave EPC coordination (extension)",
     "multi_enclave"),
    ("E10 — software-only defenses vs Autarky (extension)",
     "software_defense_cmp"),
    ("E11 — cost-model sensitivity (extension)", "sensitivity"),
    ("A3 — ORAM position-map strategies (extension)",
     "ablation_posmap"),
]

HEADER = """\
# Autarky reproduction — generated experiment report

Produced by `python -m repro report`.  Every number below comes from
the deterministic simulation; see EXPERIMENTS.md for the
paper-vs-measured commentary and DESIGN.md for the cost-model
calibration.
"""


def generate(path=None, sections=None, echo=False):
    """Run the experiments and return the report text (optionally
    written to ``path``)."""
    import importlib

    chosen = sections or [name for _t, name in SECTIONS]
    titles = {name: title for title, name in SECTIONS}
    parts = [HEADER]
    for name in chosen:
        module = importlib.import_module(f"repro.experiments.{name}")
        # Wall time is annotated as "host time" in the output and never
        # feeds a simulated figure — display-only, like the CLI timer.
        started = time.time()  # repro: allow[determinism] display only
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            module.main()
        elapsed = time.time() - started  # repro: allow[determinism] display only
        parts.append(f"## {titles.get(name, name)}\n")
        parts.append("```text")
        parts.append(buffer.getvalue().rstrip())
        parts.append("```")
        parts.append(f"_(generated in {elapsed:.1f}s of host time)_\n")
        if echo:
            print(f"[report] {name} done in {elapsed:.1f}s")

    text = "\n".join(parts)
    if path:
        with open(path, "w") as f:
            f.write(text)
    return text
