"""E1 — §7 "Overhead from SGX architecture changes" (nbench).

Runs the 10 nbench kernels inside a self-paging enclave whose dataset
fits EPC (no paging) with a capacity-limited TLB, and reports the
slowdown attributable to the 10-cycle accessed/dirty check on each TLB
fill.  Paper: geometric-mean slowdown 0.07%; T-SGX (the compared
software defense) reports 1.5x.

Also covers the pending-exception-flag analysis: with no page faults
there are no AEX/EENTER/ERESUME events in the measured loop, so the
flag adds zero cycles — "we expect Autarky to add no measurable
overhead to page fault-free execution".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.core.metrics import geomean
from repro.core.system import AutarkySystem
from repro.experiments.formatting import fmt_pct, render_table
from repro.sgx.params import PAGE_SIZE
from repro.workloads.nbench import NBENCH_KERNELS, run_kernel

#: T-SGX's reported mean slowdown on the same suite (for the table).
T_SGX_SLOWDOWN = 1.5
#: Ice Lake second-level TLB entries (order of magnitude).
TLB_CAPACITY = 1536


@dataclass
class ArchOverheadRow:
    kernel: str
    ops: int
    tlb_fills: int
    ad_check_cycles: int
    total_cycles: int
    slowdown: float   # fraction, e.g. 0.0007 = 0.07%


def run(ops=4_000, tlb_capacity=TLB_CAPACITY):
    """Run all kernels; returns (rows, geomean_slowdown)."""
    rows = []
    for kernel in NBENCH_KERNELS:
        system = AutarkySystem(SystemConfig.for_policy(
            "pin_all",
            epc_pages=4_096,
            heap_pages=max(1_024, kernel.ws_pages),
            code_pages=16,
            data_pages=16,
            runtime_pages=8,
            tlb_capacity=tlb_capacity,
        ))
        heap = system.runtime.regions["heap"]
        system.runtime.preload(
            [heap.start + i * PAGE_SIZE for i in range(kernel.ws_pages)],
            pin=True,
        )
        system.policy.seal()

        cycles, fills, checks = run_kernel(system.runtime, kernel, ops=ops)
        check_cost = checks * system.kernel.cost.autarky_ad_check
        base = cycles - check_cost
        rows.append(ArchOverheadRow(
            kernel=kernel.name,
            ops=ops,
            tlb_fills=fills,
            ad_check_cycles=check_cost,
            total_cycles=cycles,
            slowdown=check_cost / base if base else 0.0,
        ))
    mean = geomean([1.0 + r.slowdown for r in rows]) - 1.0
    return rows, mean


def format_table(rows, mean):
    table = render_table(
        ["kernel", "TLB fills", "A/D-check cycles", "total cycles",
         "slowdown"],
        [
            (r.kernel, r.tlb_fills, r.ad_check_cycles, r.total_cycles,
             fmt_pct(r.slowdown, 3))
            for r in rows
        ],
        title="E1: nbench slowdown from the Autarky A/D TLB-fill check",
    )
    footer = (
        f"\ngeomean slowdown: {fmt_pct(mean, 3)} "
        f"(paper: 0.07%; T-SGX comparison point: {T_SGX_SLOWDOWN}x)"
    )
    return table + footer


def main():
    rows, mean = run()
    print(format_table(rows, mean))
    return rows, mean


if __name__ == "__main__":
    main()
