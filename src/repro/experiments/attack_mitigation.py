"""E7 — published controlled-channel attacks vs. Autarky (§2.2, §7.3).

Each scenario runs a *real* attack implementation against the simulated
page tables:

* **Hunspell / page-fault tracer** — Xu et al.'s word-recovery attack:
  trace the dictionary pages, match chain-walk signatures.
* **Hunspell / A-D-bit monitor** — the fault-free variant: sample and
  clear accessed bits between queries.
* **libjpeg / page-fault tracer** — recover the image's block-
  complexity bitmap from which IDCT code page executes per block.
* **FreeType / page-fault tracer** — recover rendered text from
  per-glyph instruction-fetch signatures.

On vanilla SGX the attacks recover the secrets with high accuracy.
Under Autarky the same attack code recovers nothing: fault addresses
are masked, the silent ERESUME is rejected by hardware, and the
enclave's handler terminates on the first tampered page (the §5.3
termination attack — one bit per restart is all that remains).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.freetype import FreeType
from repro.apps.hunspell import Dictionary, Hunspell
from repro.apps.jpeg import JpegCodec, make_block_image
from repro.attacks.ad_monitor import AdBitMonitor
from repro.attacks.controlled_channel import PageFaultTracer
from repro.attacks.oracles import SignatureOracle, trace_accuracy
from repro.core.config import SystemConfig
from repro.core.system import AutarkySystem
from repro.errors import EnclaveTerminated
from repro.experiments.formatting import fmt_pct, render_table
from repro.runtime.loader import LibraryImage
from repro.sgx.params import PAGE_SIZE


@dataclass
class AttackRow:
    scenario: str
    defense: str            # "vanilla" or "autarky"
    recovery_accuracy: float
    enclave_terminated: bool
    attack_detected: bool
    silent_resume_rejected: bool
    observed_faults: int


def _system(defense, heap_pages=4_096, quota_pages=3_000):
    policy = "baseline" if defense == "vanilla" else "pin_all"
    return AutarkySystem(SystemConfig.for_policy(
        policy,
        epc_pages=quota_pages + 4_096,
        quota_pages=quota_pages,
        enclave_managed_budget=quota_pages - 512,
        heap_pages=heap_pages,
        code_pages=64,
        data_pages=64,
        runtime_pages=8,
    ))


def _run_victim(system, fn):
    """Run the victim; returns (terminated, detected)."""
    try:
        fn()
    except EnclaveTerminated as exc:
        return True, "attack" in str(exc).lower() or True
    return False, False


# -- Hunspell ----------------------------------------------------------------


def _collapse(pages):
    """Drop consecutive duplicate pages: a still-mapped page cannot
    re-fault, so the tracer's view collapses immediate repeats."""
    out = []
    for page in pages:
        if not out or out[-1] != page:
            out.append(page)
    return tuple(out)


def hunspell_fault_attack(defense, n_words=20_000, checks=150):
    system = _system(defense)
    engine = system.engine()
    heap = system.runtime.regions["heap"]
    lib = system.runtime.loader.load(LibraryImage("hunspell", code_pages=4))
    dictionary = Dictionary("en_US", heap.start, n_words)
    hunspell = Hunspell(engine, [dictionary],
                        code_page=lib.code_page(0))

    words = [f"word{i}" for i in range(400)]
    hunspell.load("en_US")
    warm = dictionary.pages() + [lib.code_page(i) for i in range(4)]
    if defense == "vanilla":
        system.runtime.preload_os(warm)
    else:
        system.runtime.preload(warm, pin=True)
        system.policy.seal()

    targets = warm
    tracer = PageFaultTracer(system.kernel, system.enclave, targets)
    system.attach_attacker(tracer)
    tracer.arm()

    secret_text = [words[(7 * i) % len(words)] for i in range(checks)]
    terminated, detected = _run_victim(
        system, lambda: hunspell.check_text(secret_text, "en_US")
    )

    accuracy = 0.0
    if not terminated:
        signatures = {
            w: _collapse((lib.code_page(0),) + dictionary.signature(w))
            for w in words
        }
        oracle = SignatureOracle(signatures)
        recovered = oracle.recover(tracer.log.trace)
        accuracy = trace_accuracy(secret_text, recovered)
    return AttackRow(
        "Hunspell word recovery (fault tracer)", defense, accuracy,
        terminated, detected, tracer.log.silent_resume_rejected,
        tracer.log.intercepted,
    )


def hunspell_ad_attack(defense, n_words=20_000, checks=120):
    system = _system(defense)
    engine = system.engine()
    heap = system.runtime.regions["heap"]
    dictionary = Dictionary("en_US", heap.start, n_words)
    hunspell = Hunspell(engine, [dictionary])

    words = [f"word{i}" for i in range(400)]
    hunspell.load("en_US")
    if defense == "vanilla":
        system.runtime.preload_os(dictionary.pages())
    else:
        system.runtime.preload(dictionary.pages(), pin=True)
        system.policy.seal()

    monitor = AdBitMonitor(system.kernel, system.enclave,
                           dictionary.pages())
    system.attach_attacker(monitor)
    monitor.arm()

    secret_text = [words[(11 * i) % len(words)] for i in range(checks)]
    observed = []
    terminated = detected = False
    try:
        for word in secret_text:
            hunspell.check(word, "en_US")
            accessed, _written = monitor.sample()
            observed.append(frozenset(accessed))
    except EnclaveTerminated:
        terminated = detected = True

    accuracy = 0.0
    if not terminated:
        by_signature = {}
        for w in words:
            by_signature.setdefault(
                frozenset(dictionary.signature(w)), []
            ).append(w)
        recovered = []
        for signature in observed:
            match = by_signature.get(signature)
            recovered.append(match[0] if match and len(match) == 1
                             else None)
        correct = sum(
            1 for truth, guess in zip(secret_text, recovered)
            if truth == guess
        )
        accuracy = correct / len(secret_text)
    return AttackRow(
        "Hunspell word recovery (A/D-bit monitor)", defense, accuracy,
        terminated, detected, False, len(observed),
    )


# -- libjpeg -----------------------------------------------------------------


def jpeg_fault_attack(defense, blocks=(24, 24)):
    system = _system(defense)
    engine = system.engine()
    heap = system.runtime.regions["heap"]
    lib = system.runtime.loader.load(LibraryImage("libjpeg", code_pages=8))
    image = make_block_image(*blocks, pattern="disc")
    in_pages, temp_pages = 8, 8
    input_start = heap.start
    temp_start = input_start + in_pages * PAGE_SIZE
    output_start = temp_start + temp_pages * PAGE_SIZE
    codec = JpegCodec(engine, lib, input_start, temp_start, output_start,
                      temp_pages=temp_pages)

    warm = (
        [lib.code_page(i) for i in range(8)]
        + [input_start + i * PAGE_SIZE for i in range(in_pages)]
        + [temp_start + i * PAGE_SIZE for i in range(temp_pages)]
        + codec.output_pages(image)
    )
    if defense == "vanilla":
        system.runtime.preload_os(warm)
    else:
        system.runtime.preload(warm, pin=True)
        system.policy.seal()

    full = codec.idct_page_for(True)
    skip = codec.idct_page_for(False)
    huffman = lib.code_page(codec.HUFFMAN_PAGE)
    tracer = PageFaultTracer(system.kernel, system.enclave,
                             [huffman, full, skip])
    system.attach_attacker(tracer)
    tracer.arm()

    terminated, detected = _run_victim(
        system, lambda: codec.decode(image)
    )

    accuracy = 0.0
    if not terminated:
        bits = [page == full for page in tracer.log.trace
                if page in (full, skip)]
        matching = sum(
            1 for truth, guess in zip(image.complexity, bits)
            if truth == guess
        )
        accuracy = matching / image.n_blocks
    return AttackRow(
        "libjpeg image recovery (fault tracer)", defense, accuracy,
        terminated, detected, tracer.log.silent_resume_rejected,
        tracer.log.intercepted,
    )


# -- FreeType ----------------------------------------------------------------


def freetype_fault_attack(defense, renders=160):
    system = _system(defense)
    engine = system.engine()
    heap = system.runtime.regions["heap"]
    lib = system.runtime.loader.load(
        LibraryImage("freetype", code_pages=48)
    )
    ft = FreeType(engine, lib, bitmap_start=heap.start)

    warm = [lib.code_page(i) for i in range(48)] \
        + [heap.start + i * PAGE_SIZE for i in range(8)]
    if defense == "vanilla":
        system.runtime.preload_os(warm)
    else:
        system.runtime.preload(warm, pin=True)
        system.policy.seal()

    targets = [lib.code_page(i) for i in range(48)]
    tracer = PageFaultTracer(system.kernel, system.enclave, targets)
    system.attach_attacker(tracer)
    tracer.arm()

    secret = "".join(
        ft.glyphs[(13 * i) % len(ft.glyphs)] for i in range(renders)
    )
    terminated, detected = _run_victim(
        system, lambda: ft.render_text(secret)
    )

    accuracy = 0.0
    if not terminated:
        oracle = SignatureOracle(
            {g: ft.signature(g) for g in ft.glyphs}
        )
        recovered = oracle.recover(tracer.log.trace)
        accuracy = trace_accuracy(list(secret), recovered)
    return AttackRow(
        "FreeType text recovery (fault tracer)", defense, accuracy,
        terminated, detected, tracer.log.silent_resume_rejected,
        tracer.log.intercepted,
    )


def freetype_protect_attack(defense, renders=160):
    """The permission-downgrade variant [74]: make the rasterizer's
    code pages non-executable instead of unmapping them — the fault
    stream (and the recovered text) is the same."""
    return _freetype_attack_with_mode(defense, "protect", renders)


def hunspell_remap_attack(defense, n_words=20_000, checks=150):
    """The wrong-frame variant [68]: point dictionary PTEs at other
    frames; the EPCM check turns accesses into faults that still leak
    page numbers on vanilla SGX."""
    row = _hunspell_attack_with_mode(defense, "remap", n_words, checks)
    return row


def _freetype_attack_with_mode(defense, mode, renders):
    system = _system(defense)
    engine = system.engine()
    heap = system.runtime.regions["heap"]
    lib = system.runtime.loader.load(
        LibraryImage("freetype2", code_pages=48)
    )
    ft = FreeType(engine, lib, bitmap_start=heap.start)
    warm = [lib.code_page(i) for i in range(48)] \
        + [heap.start + i * PAGE_SIZE for i in range(8)]
    if defense == "vanilla":
        system.runtime.preload_os(warm)
    else:
        system.runtime.preload(warm, pin=True)
        system.policy.seal()
    targets = [lib.code_page(i) for i in range(48)]
    tracer = PageFaultTracer(system.kernel, system.enclave, targets,
                             mode=mode)
    system.attach_attacker(tracer)
    tracer.arm()
    secret = "".join(
        ft.glyphs[(13 * i) % len(ft.glyphs)] for i in range(renders)
    )
    terminated, detected = _run_victim(
        system, lambda: ft.render_text(secret)
    )
    accuracy = 0.0
    if not terminated:
        oracle = SignatureOracle({g: ft.signature(g)
                                  for g in ft.glyphs})
        recovered = oracle.recover(tracer.log.trace)
        accuracy = trace_accuracy(list(secret), recovered)
    return AttackRow(
        f"FreeType text recovery ({mode} tracer)", defense, accuracy,
        terminated, detected, tracer.log.silent_resume_rejected,
        tracer.log.intercepted,
    )


def _hunspell_attack_with_mode(defense, mode, n_words, checks):
    system = _system(defense)
    engine = system.engine()
    heap = system.runtime.regions["heap"]
    lib = system.runtime.loader.load(
        LibraryImage("hunspell2", code_pages=4)
    )
    dictionary = Dictionary("en_US", heap.start, n_words)
    hunspell = Hunspell(engine, [dictionary],
                        code_page=lib.code_page(0))
    words = [f"word{i}" for i in range(400)]
    hunspell.load("en_US")
    warm = dictionary.pages() + [lib.code_page(i) for i in range(4)]
    if defense == "vanilla":
        system.runtime.preload_os(warm)
    else:
        system.runtime.preload(warm, pin=True)
        system.policy.seal()
    tracer = PageFaultTracer(system.kernel, system.enclave, warm,
                             mode=mode)
    system.attach_attacker(tracer)
    tracer.arm()
    secret_text = [words[(7 * i) % len(words)] for i in range(checks)]
    terminated, detected = _run_victim(
        system, lambda: hunspell.check_text(secret_text, "en_US")
    )
    accuracy = 0.0
    if not terminated:
        signatures = {
            w: _collapse((lib.code_page(0),) + dictionary.signature(w))
            for w in words
        }
        recovered = SignatureOracle(signatures).recover(
            tracer.log.trace
        )
        accuracy = trace_accuracy(secret_text, recovered)
    return AttackRow(
        f"Hunspell word recovery ({mode} tracer)", defense, accuracy,
        terminated, detected, tracer.log.silent_resume_rejected,
        tracer.log.intercepted,
    )


# -- harness -----------------------------------------------------------------

SCENARIOS = [
    hunspell_fault_attack,
    hunspell_ad_attack,
    jpeg_fault_attack,
    freetype_fault_attack,
    freetype_protect_attack,
    hunspell_remap_attack,
]


def run():
    rows = []
    for scenario in SCENARIOS:
        for defense in ("vanilla", "autarky"):
            rows.append(scenario(defense))
    return rows


def format_table(rows):
    return render_table(
        ["scenario", "defense", "recovered", "terminated",
         "silent-resume rejected", "faults seen"],
        [
            (r.scenario, r.defense, fmt_pct(r.recovery_accuracy),
             r.enclave_terminated, r.silent_resume_rejected,
             r.observed_faults)
            for r in rows
        ],
        title="E7: published controlled-channel attacks vs Autarky",
    )


def main():
    rows = run()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
