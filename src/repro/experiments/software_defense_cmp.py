"""E10 (extension) — quantifying §4: software-only defenses vs Autarky.

Three head-to-head scenarios on a legacy enclave guarded by a
Varys-style AEX-rate watchdog, against the same attacks Autarky blocks:

1. **False positives** — a benign workload whose working set exceeds
   EPC demand-pages; every sensible detection threshold kills it.
2. **Paid leakage** — with the threshold raised until the benign run
   survives, the fault-injection attacker simply paces itself below
   the threshold and still collects a page trace.
3. **The silent channel** — the A/D-bit monitor causes zero AEXs;
   the watchdog never fires at any threshold, and the full trace leaks.

Autarky columns for comparison: zero false positives with unrestricted
demand paging, zero traced pages, and termination on the first probe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.ad_monitor import AdBitMonitor
from repro.attacks.controlled_channel import PageFaultTracer
from repro.core.config import SystemConfig
from repro.core.system import AutarkySystem
from repro.errors import EnclaveTerminated
from repro.experiments.formatting import render_table
from repro.runtime.software_defense import AexRateDefense
from repro.sgx.params import AccessType


@dataclass
class DefenseRow:
    scenario: str
    defense: str
    survived_benign: bool
    attack_pages_leaked: int
    attack_detected: bool


def _legacy_system():
    return AutarkySystem(SystemConfig.for_policy(
        "baseline",
        epc_pages=2_048, quota_pages=256,
        runtime_pages=4, code_pages=8, data_pages=8, heap_pages=1_024,
    ))


def _autarky_system():
    return AutarkySystem(SystemConfig.for_policy(
        "rate_limit",
        max_faults_per_progress=100_000,
        epc_pages=2_048, quota_pages=512, enclave_managed_budget=256,
        runtime_pages=4, code_pages=8, data_pages=8, heap_pages=1_024,
    ))


def _benign_paging(runtime, watchdog=None, pages=600, period=16):
    """A workload that legitimately demand-pages (WS > quota)."""
    heap = runtime.regions["heap"]
    for i in range(pages):
        if watchdog is not None and i % period == 0:
            watchdog.checkpoint()
        runtime.access(heap.page(i), AccessType.WRITE)


def scenario_false_positives(threshold=8):
    """Scenario 1: the watchdog kills a benign paging workload."""
    rows = []

    system = _legacy_system()
    watchdog = AexRateDefense(system.kernel, system.enclave, threshold)
    survived = True
    try:
        _benign_paging(system.runtime, watchdog)
    except EnclaveTerminated:
        survived = False
    rows.append(DefenseRow(
        "benign demand paging", f"aex-rate (budget {threshold})",
        survived, 0, False,
    ))

    system = _autarky_system()
    survived = True
    try:
        _benign_paging(system.runtime)
    except EnclaveTerminated:
        survived = False
    rows.append(DefenseRow(
        "benign demand paging", "autarky", survived, 0, False,
    ))
    return rows


def scenario_paced_attack(threshold=24, probes=120):
    """Scenario 2: the attacker paces fault injection under the
    (loosened) threshold and traces pages anyway."""
    rows = []

    system = _legacy_system()
    heap = system.runtime.regions["heap"]
    pages = [heap.page(i) for i in range(16)]
    system.runtime.preload_os(pages)
    watchdog = AexRateDefense(system.kernel, system.enclave, threshold)
    tracer = PageFaultTracer(system.kernel, system.enclave, pages)
    system.attach_attacker(tracer)
    tracer.arm()
    detected = False
    try:
        for i in range(probes):
            # The victim's own loop checkpoints; the attacker's pace
            # (one traced fault per iteration) stays under budget.
            watchdog.checkpoint()
            system.runtime.access(pages[i % len(pages)],
                                  AccessType.READ)
    except EnclaveTerminated:
        detected = True
    rows.append(DefenseRow(
        "paced fault-injection attack", f"aex-rate (budget {threshold})",
        True, len(tracer.log.trace), detected,
    ))

    system = _autarky_system()
    heap = system.runtime.regions["heap"]
    pages = [heap.page(i) for i in range(16)]
    system.runtime.preload(pages, pin=True)
    tracer = PageFaultTracer(system.kernel, system.enclave, pages)
    system.attach_attacker(tracer)
    tracer.arm()
    detected = False
    try:
        for i in range(probes):
            system.runtime.access(pages[i % len(pages)],
                                  AccessType.READ)
    except EnclaveTerminated:
        detected = True
    leaked = sum(1 for v in tracer.log.trace
                 if v != system.enclave.base)
    rows.append(DefenseRow(
        "paced fault-injection attack", "autarky",
        True, leaked, detected,
    ))
    return rows


def scenario_silent_channel(threshold=8, probes=60):
    """Scenario 3: the fault-free A/D-bit monitor — invisible to AEX
    counting at any threshold."""
    rows = []

    system = _legacy_system()
    heap = system.runtime.regions["heap"]
    pages = [heap.page(i) for i in range(16)]
    system.runtime.preload_os(pages)
    watchdog = AexRateDefense(system.kernel, system.enclave, threshold)
    monitor = AdBitMonitor(system.kernel, system.enclave, pages)
    monitor.arm()
    observed = 0
    detected = False
    try:
        for i in range(probes):
            watchdog.checkpoint()
            system.runtime.access(pages[i % len(pages)],
                                  AccessType.READ)
            accessed, _w = monitor.sample()
            observed += len(accessed)
    except EnclaveTerminated:
        detected = True
    rows.append(DefenseRow(
        "A/D-bit monitoring (fault-free)",
        f"aex-rate (budget {threshold})",
        True, observed, detected,
    ))

    system = _autarky_system()
    heap = system.runtime.regions["heap"]
    pages = [heap.page(i) for i in range(16)]
    system.runtime.preload(pages, pin=True)
    monitor = AdBitMonitor(system.kernel, system.enclave, pages)
    monitor.arm()
    observed = 0
    detected = False
    try:
        for i in range(probes):
            system.runtime.access(pages[i % len(pages)],
                                  AccessType.READ)
            accessed, _w = monitor.sample()
            observed += len(accessed)
    except EnclaveTerminated:
        detected = True
    rows.append(DefenseRow(
        "A/D-bit monitoring (fault-free)", "autarky",
        True, observed, detected,
    ))
    return rows


def run():
    return (
        scenario_false_positives()
        + scenario_paced_attack()
        + scenario_silent_channel()
    )


def format_table(rows):
    return render_table(
        ["scenario", "defense", "benign survives", "pages leaked",
         "attack detected"],
        [
            (r.scenario, r.defense, r.survived_benign,
             r.attack_pages_leaked, r.attack_detected)
            for r in rows
        ],
        title="E10 (extension): software-only AEX-rate defenses vs "
              "Autarky (§4)",
    )


def main():
    rows = run()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
