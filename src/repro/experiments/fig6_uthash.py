"""E3 — Figure 6: cluster size vs. throughput on uthash, vs. ORAM.

The paper fills a uthash table with 431 MB of 256-byte items (≤10 per
bucket), then measures random GETs under:

* automatic page clusters of 1..100 pages (before and after the table
  rehashes and expands its bucket array),
* Autarky's cached ORAM (128 MB in-EPC page cache, 1 GB PathORAM tree),
* uncached ORAM (CoSMIX-style oblivious metadata scans) — run on only
  100 random entries because the full experiment "did not complete in
  24 hours"; it lands 232× below the cached configuration.

Cached ORAM and ~10-page clusters break even; smaller clusters are
faster but leak more (see E8 for the guess-probability analysis).

All sizes scale together (default 1/8) so the data:EPC ratio — the
thing that drives paging — matches the paper's 431:190.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.uthash import UthashTable
from repro.core.config import SystemConfig
from repro.core.system import AutarkySystem
from repro.experiments.formatting import render_table
from repro.sgx.params import PAGE_SIZE

CLUSTER_SIZES = (1, 2, 5, 10, 20, 50, 100)


@dataclass
class Fig6Point:
    series: str        # "clusters", "clusters_rehashed", "oram", "oram_uncached"
    cluster_pages: int  # 0 for the ORAM series
    throughput: float   # requests per simulated second


@dataclass
class Fig6Scale:
    """Scaled-down instance of the paper's configuration."""

    data_bytes: int = 431 * 1024 * 1024 // 8
    item_size: int = 256
    oram_tree_pages: int = 262_144 // 8
    oram_cache_pages: int = 32_768 // 8
    #: enclave-managed budget ≈ EPC share for table data (190 MB scaled)
    budget_pages: int = 40_000 // 8


def _measure_lookups(table, system, requests, seed):
    rng = random.Random(seed)
    keys = [rng.randrange(table.n_items) for _ in range(requests)]
    with system.measure() as m:
        for key in keys:
            table.lookup(key)
    return m.metrics(ops=requests).throughput


def _cluster_system(scale, cluster_pages):
    data_pages = (
        scale.data_bytes // scale.item_size
        // (PAGE_SIZE // scale.item_size)
    )
    total_pages = data_pages + data_pages // 32 + 64
    return AutarkySystem(SystemConfig.for_policy(
        "clusters",
        cluster_pages=cluster_pages,
        epc_pages=scale.budget_pages + 4_096,
        quota_pages=scale.budget_pages + 1_024,
        enclave_managed_budget=scale.budget_pages,
        heap_pages=total_pages + 512,
        code_pages=32,
        data_pages=32,
        runtime_pages=8,
    ))


def _cluster_point(task):
    """Both measurements (pre/post rehash) for one cluster size.

    Top-level and tuple-argumented so the parallel runner can pickle
    it; each point boots its own system, making sizes independent.
    """
    scale, cluster_pages, requests, seed = task
    system = _cluster_system(scale, cluster_pages)
    engine = system.engine()
    table = UthashTable(
        engine, system.heap_start(), scale.data_bytes,
        item_size=scale.item_size,
    )
    # The allocator assigns every table page to automatic clusters
    # in allocation order, exactly like the extended libOS
    # allocator of §5.2.3.  Sized for the post-rehash bucket array
    # so the second measurement stays fully covered.
    system.runtime.allocator.alloc_pages(
        table.total_pages_after_rehash()
    )
    before = Fig6Point(
        "clusters", cluster_pages,
        _measure_lookups(table, system, requests, seed),
    )
    table.rehash()
    after = Fig6Point(
        "clusters_rehashed", cluster_pages,
        _measure_lookups(table, system, requests, seed + 1),
    )
    return before, after


def run_clusters(scale=None, requests=1_500, seed=31, jobs=1):
    """The two cluster series (before/after rehash)."""
    from repro.parallel import run_indexed
    scale = scale or Fig6Scale()
    tasks = [
        (scale, cluster_pages, requests, seed)
        for cluster_pages in CLUSTER_SIZES
    ]
    points = []
    for before, after in run_indexed(_cluster_point, tasks, jobs=jobs):
        points.append(before)
        points.append(after)
    return points


def _oram_point(task):
    """One ORAM configuration (cached or uncached); picklable worker."""
    scale, uncached, requests, seed, uncached_requests = task
    system = AutarkySystem(SystemConfig.for_policy(
        "oram",
        oram_tree_pages=scale.oram_tree_pages,
        oram_cache_pages=0 if uncached else scale.oram_cache_pages,
        oram_oblivious_metadata=uncached,
        epc_pages=scale.budget_pages + 4_096,
        heap_pages=scale.oram_tree_pages + 512,
        code_pages=32,
        data_pages=32,
        runtime_pages=8,
    ))
    engine = system.engine()
    table = UthashTable(
        engine, system.heap_start(), scale.data_bytes,
        item_size=scale.item_size,
    )
    n = uncached_requests if uncached else requests
    throughput = _measure_lookups(table, system, n, seed)
    return Fig6Point(
        "oram_uncached" if uncached else "oram", 0, throughput,
    )


def run_oram(scale=None, requests=600, seed=37, uncached_requests=40,
             jobs=1):
    """The cached-ORAM line and the uncached-ORAM point."""
    from repro.parallel import run_indexed
    scale = scale or Fig6Scale()
    tasks = [
        (scale, uncached, requests, seed, uncached_requests)
        for uncached in (False, True)
    ]
    return run_indexed(_oram_point, tasks, jobs=jobs)


def run(scale=None, requests=1_500, jobs=1):
    scale = scale or Fig6Scale()
    points = run_clusters(scale, requests=requests, jobs=jobs)
    points += run_oram(scale, requests=max(200, requests // 3), jobs=jobs)
    return points


def crossover_cluster_size(points):
    """Smallest cluster size at which cached ORAM is at least as fast
    as clusters — the paper's break-even (~10 pages)."""
    oram = next(p.throughput for p in points if p.series == "oram")
    for p in sorted((p for p in points if p.series == "clusters"),
                    key=lambda p: p.cluster_pages):
        if p.throughput <= oram:
            return p.cluster_pages
    return None


def format_table(points):
    rows = [
        (p.series, p.cluster_pages or "-", f"{p.throughput:,.0f}")
        for p in points
    ]
    oram = next(
        (p.throughput for p in points if p.series == "oram"), None
    )
    unc = next(
        (p.throughput for p in points if p.series == "oram_uncached"),
        None,
    )
    table = render_table(
        ["series", "pages/cluster", "throughput (req/s)"],
        rows,
        title="E3 / Figure 6: uthash — clusters vs ORAM",
    )
    footer = ""
    if oram and unc:
        footer = (
            f"\nuncached ORAM is {oram / unc:,.0f}x slower than cached "
            f"(paper: 232x); cluster/ORAM break-even at "
            f"{crossover_cluster_size(points)} pages (paper: ~10)"
        )
    return table + footer


def format_figure(points):
    """Figure 6 as a terminal log-scale plot."""
    from repro.experiments.ascii_plot import log_scatter
    series = {}
    for p in points:
        label = p.cluster_pages if p.cluster_pages else "-"
        series.setdefault(p.series, []).append((label, p.throughput))
    return log_scatter(
        series, title="Figure 6 (log scale): requests/s",
        unit="req/s",
    )


def main(jobs=1):
    points = run(jobs=jobs)
    print(format_table(points))
    print()
    print(format_figure(points))
    return points


if __name__ == "__main__":
    main()
