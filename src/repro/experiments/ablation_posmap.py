"""A3 (extension) — position-map strategies for enclave ORAM.

§5.2.2's design space, measured head-to-head on random accesses:

* **flat, pinned** — Autarky's approach: the map lives in
  enclave-managed pinned pages, lookups are direct.  Fastest, but the
  pinned footprint grows linearly with the dataset.
* **flat, scanned** — CoSMIX without Autarky: data-independent CMOV
  scans per touch.  No pinning; catastrophically slow.
* **recursive** — the classical construction: the map recurses into
  smaller ORAMs until a constant residue remains.  O(1) pinned state
  for a ~(2·depth+1)× path-work multiplier — the middle ground a
  memory-constrained deployment would pick.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.clock import Clock
from repro.experiments.formatting import render_table
from repro.oram.path_oram import PathOram
from repro.oram.recursive import RecursivePathOram


@dataclass
class PosmapRow:
    strategy: str
    cycles_per_access: float
    pinned_entries: int
    recursion_depth: int


def run(num_blocks=32_768, accesses=300, seed=61,
        top_map_entries=256):
    rng = random.Random(seed)
    pattern = [rng.randrange(num_blocks) for _ in range(accesses)]
    rows = []

    for strategy in ("flat pinned (Autarky)",
                     "flat scanned (CoSMIX)",
                     "recursive"):
        clock = Clock()
        if strategy.startswith("flat"):
            oram = PathOram(
                num_blocks, clock,
                oblivious_metadata="scanned" in strategy,
            )
            pinned = num_blocks if "pinned" in strategy else 0
            depth = 0
        else:
            oram = RecursivePathOram(
                num_blocks, clock, top_map_entries=top_map_entries,
            )
            pinned = oram.pinned_entries()
            depth = oram.recursion_depth
        # Scanned mode is slow to simulate too: sample it.
        sample = pattern if "scanned" not in strategy \
            else pattern[:max(20, accesses // 10)]
        for block in sample:
            oram.access(block, data="x", write=True)
        rows.append(PosmapRow(
            strategy=strategy,
            cycles_per_access=clock.cycles / len(sample),
            pinned_entries=pinned,
            recursion_depth=depth,
        ))
    return rows


def format_table(rows):
    return render_table(
        ["strategy", "cycles/access", "pinned map entries",
         "recursion depth"],
        [
            (r.strategy, f"{r.cycles_per_access:,.0f}",
             f"{r.pinned_entries:,}", r.recursion_depth)
            for r in rows
        ],
        title="A3 (extension): ORAM position-map strategies "
              "(32k-block tree)",
    )


def main():
    rows = run()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
