"""E4 — Figure 7: rate-limited demand paging on Phoenix + PARSEC.

For each of the 14 applications, measures unprotected baseline (legacy
SGX, OS clock paging) versus Autarky's bounded-leakage policy (§5.2.4)
at a reduced EPC quota, reporting per-app slowdown and the page-fault
rate — the two axes of Figure 7.

Paper's results: 6% average slowdown (2% with AEX elision); fault rate
correlates with slowdown; no recompilation needed, versus the 15%
Varys reports for the same suites.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import SystemConfig
from repro.core.metrics import geomean
from repro.core.system import AutarkySystem
from repro.experiments.formatting import render_table
from repro.sgx.params import AccessType, ArchOptimizations, PAGE_SIZE
from repro.workloads.suites import SUITE_APPS, run_suite_app

#: Varys's reported overhead on the same suites (reference point).
VARYS_OVERHEAD = 0.15


@dataclass
class Fig7Row:
    app: str
    suite: str
    baseline_throughput: float
    autarky_throughput: float
    slowdown: float        # autarky vs baseline, 1.0 = equal
    fault_rate: float      # faults per simulated second (autarky run)
    faults: int


def _build_system(app, policy_name, arch_opts=None):
    # Quota sized so the hot set fits with headroom but the cold sweep
    # always pages — the "~100MB EPC" setup, scaled.
    quota = app.hot_pages + max(256, (app.ws_pages - app.hot_pages) // 3)
    window_faults = app.progress_every  # ≥ cold touches per window
    return AutarkySystem(SystemConfig.for_policy(
        policy_name,
        max_faults_per_progress=8 * window_faults,
        epc_pages=quota + 2_048,
        quota_pages=quota + 256,
        enclave_managed_budget=quota,
        heap_pages=app.ws_pages + 512,
        code_pages=16,
        data_pages=16,
        runtime_pages=8,
        arch_opts=arch_opts or ArchOptimizations(),
        cluster_pages=None,
    ))


def _warm(system, app):
    """One full sweep of the working set reaches paging steady state
    (every page has a sealed copy; the resident set is at quota)."""
    heap = system.runtime.regions["heap"]
    runtime = system.runtime
    from repro.runtime.rate_limit import ProgressKind
    for i in range(app.ws_pages):
        if i % 16 == 0:
            runtime.progress(ProgressKind.IO)
        runtime.access(heap.start + i * PAGE_SIZE, AccessType.WRITE)


def run_app(app, ops=400, scale=8, arch_opts=None):
    """Returns a :class:`Fig7Row` for one application profile."""
    scaled = replace(
        app,
        ws_pages=max(1_024, app.ws_pages // scale),
        hot_pages=max(128, app.hot_pages // scale),
    )

    results = {}
    for policy in ("baseline", "rate_limit"):
        system = _build_system(
            scaled, policy,
            arch_opts=arch_opts if policy == "rate_limit" else None,
        )
        _warm(system, scaled)
        with system.measure() as m:
            run_suite_app(system.runtime, scaled, ops=ops)
        results[policy] = m.metrics(ops=ops)

    base, aut = results["baseline"], results["rate_limit"]
    return Fig7Row(
        app=app.name,
        suite=app.suite,
        baseline_throughput=base.throughput,
        autarky_throughput=aut.throughput,
        slowdown=base.throughput / aut.throughput,
        fault_rate=aut.fault_rate,
        faults=aut.faults,
    )


def run(ops=400, scale=8, arch_opts=None):
    rows = [run_app(app, ops=ops, scale=scale, arch_opts=arch_opts)
            for app in SUITE_APPS]
    mean = geomean([r.slowdown for r in rows])
    return rows, mean


def format_table(rows, mean):
    table = render_table(
        ["app", "suite", "slowdown", "PF rate (faults/s)"],
        [
            (r.app, r.suite, f"{r.slowdown:.3f}x", f"{r.fault_rate:,.0f}")
            for r in rows
        ],
        title="E4 / Figure 7: rate-limited paging, Phoenix + PARSEC",
    )
    footer = (
        f"\ngeomean slowdown: {(mean - 1):.1%} "
        f"(paper: ~6%; with AEX elision ~2%; Varys: "
        f"{VARYS_OVERHEAD:.0%}, and requires recompilation)"
    )
    return table + footer


def format_figure(rows):
    """Figure 7 as terminal bars (slowdown per app)."""
    from repro.experiments.ascii_plot import bar_chart
    return bar_chart(
        [(r.app, (r.slowdown - 1) * 100) for r in rows],
        title="Figure 7: slowdown vs baseline (%)",
        fmt="{:.1f}%",
    )


def main():
    rows, mean = run()
    print(format_table(rows, mean))
    print()
    print(format_figure(rows))
    return rows, mean


if __name__ == "__main__":
    main()
