"""Artifact self-check: every qualitative claim, verified in one run.

``python -m repro verify`` executes a fast pass over the whole
reproduction and prints PASS/FAIL per claim — the checklist an
artifact-evaluation committee would walk, runnable in about a minute.

Each claim is a named predicate over a (scaled-down) experiment run;
the same predicates back the assertions in ``benchmarks/``, so this is
the quick interactive twin of the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.formatting import render_table


@dataclass
class Claim:
    claim_id: str
    statement: str
    passed: bool
    evidence: str


def _check_arch_overhead():
    from repro.experiments import arch_overhead
    rows, mean = arch_overhead.run(ops=800)
    yield Claim(
        "E1", "A/D fill check costs well under 1% (paper: 0.07%)",
        0.0 < mean < 0.005, f"geomean {mean:.3%}",
    )


def _check_fig5():
    from repro.experiments import fig5_microbench
    rows = fig5_microbench.run(iterations=200)
    totals = fig5_microbench.totals(rows)
    yield Claim(
        "E2a", "SGX1 paging is cheaper than SGX2 (§7.1)",
        totals[("fault", "SGX1")] < totals[("fault", "SGX2")],
        f"{totals[('fault', 'SGX1')]:,.0f} vs "
        f"{totals[('fault', 'SGX2')]:,.0f} cycles/fault",
    )
    transitions = sum(
        r.cycles_per_page for r in rows
        if (r.operation, r.version) == ("fault", "SGX1")
        and ("AEX" in r.component or "EENTER" in r.component)
    )
    share = transitions / totals[("fault", "SGX1")]
    yield Claim(
        "E2b", "transitions are 40-50% of fault latency",
        0.35 < share < 0.55, f"{share:.0%}",
    )


def _check_fig6():
    from repro.experiments import fig6_uthash
    scale = fig6_uthash.Fig6Scale(
        data_bytes=431 * 1024 * 1024 // 32,
        oram_tree_pages=262_144 // 32,
        oram_cache_pages=32_768 // 32,
        budget_pages=40_000 // 32,
    )
    points = fig6_uthash.run(scale=scale, requests=400)
    series = sorted(
        (p for p in points if p.series == "clusters"),
        key=lambda p: p.cluster_pages,
    )
    yield Claim(
        "E3a", "throughput is inversely proportional to cluster size",
        all(a.throughput > b.throughput
            for a, b in zip(series, series[1:])),
        f"{series[0].throughput:,.0f} -> {series[-1].throughput:,.0f} "
        "req/s across 1..100 pages",
    )
    oram = next(p.throughput for p in points if p.series == "oram")
    uncached = next(p.throughput for p in points
                    if p.series == "oram_uncached")
    yield Claim(
        "E3b", "uncached ORAM is orders of magnitude slower "
               "(paper: 232x)",
        oram / uncached > 30, f"{oram / uncached:,.0f}x",
    )


def _check_fig7():
    from repro.experiments import fig7_rate_limit
    row = fig7_rate_limit.run_app(
        fig7_rate_limit.SUITE_APPS[0], ops=150, scale=16,
    )
    yield Claim(
        "E4", "rate-limited paging costs a modest slowdown "
              "(paper: ~6% mean)",
        1.0 < row.slowdown < 1.30,
        f"kmeans {row.slowdown:.3f}x @ {row.fault_rate:,.0f} faults/s",
    )


def _check_attacks():
    from repro.experiments import attack_mitigation
    rows = attack_mitigation.run()
    vanilla = [r for r in rows if r.defense == "vanilla"]
    autarky = [r for r in rows if r.defense == "autarky"]
    yield Claim(
        "E7a", "published attacks recover secrets on vanilla SGX",
        all(r.recovery_accuracy > 0.3 for r in vanilla),
        f"recovery {min(r.recovery_accuracy for r in vanilla):.0%}"
        f"-{max(r.recovery_accuracy for r in vanilla):.0%} across "
        f"{len(vanilla)} scenarios",
    )
    yield Claim(
        "E7b", "Autarky blocks every attack with zero recovery",
        all(r.enclave_terminated and r.recovery_accuracy == 0.0
            for r in autarky),
        f"{len(autarky)}/{len(autarky)} scenarios terminated",
    )


def _check_leakage():
    from repro.core.leakage import cluster_guess_probability
    p = cluster_guess_probability(256, 10)
    yield Claim(
        "E8", "10-page clusters leave a 0.62% guess probability",
        abs(p - 0.00625) < 1e-9, f"{p:.3%}",
    )


def _check_software_defense():
    from repro.experiments import software_defense_cmp
    rows = software_defense_cmp.run()
    sw = [r for r in rows if "aex-rate" in r.defense]
    yield Claim(
        "E10", "AEX-rate defenses false-positive on benign paging or "
               "miss paced/silent attacks (§4)",
        any(not r.survived_benign for r in sw)
        and any(r.attack_pages_leaked > 0 and not r.attack_detected
                for r in sw),
        "false positive on benign paging; "
        f"{max(r.attack_pages_leaked for r in sw)} pages leaked "
        "undetected",
    )


CHECKS = (
    _check_arch_overhead,
    _check_fig5,
    _check_fig6,
    _check_fig7,
    _check_attacks,
    _check_leakage,
    _check_software_defense,
)


def run():
    claims = []
    for check in CHECKS:
        claims.extend(check())
    return claims


def format_table(claims):
    table = render_table(
        ["id", "claim", "verdict", "evidence"],
        [
            (c.claim_id, c.statement,
             "PASS" if c.passed else "FAIL", c.evidence)
            for c in claims
        ],
        title="Artifact self-check: the paper's qualitative claims",
    )
    passed = sum(1 for c in claims if c.passed)
    return table + f"\n{passed}/{len(claims)} claims hold"


def main():
    claims = run()
    print(format_table(claims))
    if not all(c.passed for c in claims):
        raise SystemExit(1)
    return claims


if __name__ == "__main__":
    main()
