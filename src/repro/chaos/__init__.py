"""Deterministic Byzantine-host fault injection (chaos harness).

The Autarky threat model gives the OS total control over every service
the enclave depends on: paging syscalls can be denied, delayed, or
answered with lies; the backing store can be tampered with or replayed;
the EPC quota can shrink without warning; the enclave can be entered
spuriously, interrupted in storms, or suspended at the worst moment.

This package scripts that adversary.  A :class:`~repro.chaos.plan.FaultPlan`
is generated from a seed (same seed → same plan → same outcome), a
:class:`~repro.chaos.injector.FaultInjector` wires it into the host
kernel's syscall dispatch and the SGX instruction layer, and the
campaign runner (:mod:`repro.chaos.campaign`) sweeps plans across the
secure paging policies, asserting the three-way safety invariant:

* the run **completes** correctly, or
* it **degrades** within the runtime's declared budgets
  (retry-with-backoff, bounded self-eviction, balloon floor), or
* it **aborts** fail-stop with a structured reason —

and never silently computes on tampered state, never leaks more than
the masked fault stream.
"""

from repro.chaos.campaign import CampaignResult, RunResult, run_campaign
from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FaultEvent, FaultKind, FaultPlan

__all__ = [
    "CampaignResult",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "RunResult",
    "run_campaign",
]
