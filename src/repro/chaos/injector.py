"""The fault injector: wires a :class:`FaultPlan` into the host.

Installation points:

* ``kernel.fault_injector`` — every syscall the enclave's exitless
  channel issues passes through :meth:`FaultInjector.around_syscall`,
  which may deny it, lie about it, stall it, or let it through while
  observing what the enclave consumed;
* ``kernel.instr.fault_hook`` — EAUG consults the hook before
  allocating, so the injector can model hardware-level refusal.

Everything the injector does is recorded as
:class:`~repro.core.trace.InjectionEvent` on the simulated timeline,
and the injector doubles as the campaign's ground-truth witness: if a
syscall returned a blob the backing store marks as attacker-written and
no abort followed, :attr:`silent_consumption` proves the safety
invariant fell.
"""

from __future__ import annotations

from repro.clock import Category
from repro.core.trace import InjectionEvent
from repro.errors import EpcExhausted, HostCallDenied
from repro.chaos.plan import (
    INSTRUCTION_KINDS,
    SYSCALL_KINDS,
    FaultKind,
)
from repro.sgx.params import page_base, vpn_of


class _ArmedFault:
    """One scheduled syscall/instruction-level fault with its budget."""

    #: How many matching calls one DELAY_RESPONSE event stalls.
    DELAY_FIRES = 2

    def __init__(self, event):
        self.event = event
        self.kind = event.kind
        if self.kind is FaultKind.DELAY_RESPONSE:
            self.remaining = self.DELAY_FIRES
            self.delay_cycles = event.param
        else:
            self.remaining = event.param
            self.delay_cycles = 0

    def matches_syscall(self, name):
        return (
            self.remaining > 0
            and name in SYSCALL_KINDS.get(self.kind, ())
        )

    def matches_instruction(self, instruction):
        return (
            self.remaining > 0
            and self.kind in INSTRUCTION_KINDS
            and instruction == "eaug"
        )


class FaultInjector:
    """Executes the armed half of a fault plan against one enclave."""

    def __init__(self, plan, kernel, enclave):
        self.plan = plan
        self.kernel = kernel
        self.enclave = enclave
        self.current_op = 0
        self._armed = [_ArmedFault(e) for e in plan.armed_events()]
        #: Everything that fired, on the simulated timeline.
        self.events = []
        #: Kinds that actually fired (not merely armed).
        self.fired_kinds = set()
        #: Tainted blobs the host handed out that the enclave accepted
        #: without an abort — each entry is a safety-invariant breach.
        self.silent_consumption = []

    # -- installation ------------------------------------------------------

    def install(self):
        self.kernel.fault_injector = self
        self.kernel.instr.fault_hook = self.on_instruction
        return self

    def uninstall(self):
        if self.kernel.fault_injector is self:
            self.kernel.fault_injector = None
        if self.kernel.instr.fault_hook == self.on_instruction:
            self.kernel.instr.fault_hook = None

    def advance_to_op(self, op_index):
        """Called by the campaign before each workload operation."""
        self.current_op = op_index

    # -- hook implementations ---------------------------------------------

    def around_syscall(self, name, args, handler):
        """Intercept one host call (installed in HostKernel.syscall)."""
        fault = self._active_syscall_fault(name)
        if fault is not None:
            kind = fault.kind
            fault.remaining -= 1
            if kind is FaultKind.DELAY_RESPONSE:
                # Stall, then serve: the host is slow, not refusing.
                self.kernel.clock.charge(fault.delay_cycles, Category.OS)
                self._record(kind, name, f"stalled {fault.delay_cycles}")
            elif kind is FaultKind.DROP_FETCH:
                # The lie: claim success, do nothing.  The enclave's
                # own bookkeeping is the only thing that can catch it.
                self._record(kind, name, "reported success, did nothing")
                return [page_base(v) for v in args[1]]
            else:
                self._record(kind, name, "refused")
                raise HostCallDenied(
                    f"host refused {name} ({kind.value} injection)"
                )
        at_risk = self._tainted_targets(name, args)
        result = handler(*args)
        if at_risk:
            enclave = args[0]
            # Only blobs that were genuinely loaded count: the driver
            # skips already-resident pages without touching the store.
            consumed = [
                v for v in at_risk if self._now_resident(enclave, v)
            ]
            if consumed:
                # The call consumed attacker-written blobs yet returned
                # success: the crypto layer failed to reject them.
                self.silent_consumption.extend(consumed)
                self._record(
                    FaultKind.TAMPER_BACKING, name,
                    f"tainted blob consumed without abort: "
                    f"{[hex(v) for v in consumed]}",
                )
        return result

    def on_instruction(self, instruction, enclave, vaddr):
        """EAUG hook: refuse augmentation to model EPC pressure."""
        for fault in self._armed:
            if (fault.event.at_op <= self.current_op
                    and fault.matches_instruction(instruction)):
                fault.remaining -= 1
                self._record(fault.kind, instruction,
                             f"refused at {vaddr:#x}")
                raise EpcExhausted(
                    f"injected EAUG refusal at {vaddr:#x} (EPC pressure)"
                )

    # -- campaign-side logging --------------------------------------------

    def record_op_event(self, event, detail=""):
        """Log an op-level event the campaign just applied."""
        self._record(event.kind, "op", detail)

    def record_skipped(self, event, why):
        """An op-level event found no viable target (e.g. nothing is
        swapped out yet) — logged so coverage accounting stays honest."""
        self.events.append(InjectionEvent(
            cycles=self.kernel.clock.cycles,
            kind=event.kind.value,
            point="skipped",
            detail=why,
        ))

    # -- internals ---------------------------------------------------------

    def _active_syscall_fault(self, name):
        for fault in self._armed:
            if (fault.event.at_op <= self.current_op
                    and fault.matches_syscall(name)):
                return fault
        return None

    def _tainted_targets(self, name, args):
        """Non-resident requested pages whose backing blob is hostile
        (the pages this call would load from tampered storage)."""
        if name not in ("ay_fetch_pages", "os_resolve"):
            return []
        backing = self.kernel.backing
        if not backing.tainted:
            return []
        enclave = args[0]
        vaddrs = args[1] if name == "ay_fetch_pages" else [args[1]]
        return [
            page_base(v) for v in vaddrs
            if (enclave.enclave_id, page_base(v)) in backing.tainted
            and not self._now_resident(enclave, v)
        ]

    @staticmethod
    def _now_resident(enclave, vaddr):
        return vpn_of(vaddr) in enclave.backed

    def _record(self, kind, point, detail):
        self.fired_kinds.add(kind)
        self.events.append(InjectionEvent(
            cycles=self.kernel.clock.cycles,
            kind=kind.value,
            point=point,
            detail=detail,
        ))
