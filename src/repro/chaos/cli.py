"""``python -m repro chaos`` — run a Byzantine-host chaos campaign.

Exit status is the campaign verdict: 0 only when every run landed in a
safe state (completed / degraded-within-budget / structured abort),
every seed reproduced its own digest, and the sweep exercised enough
distinct fault kinds to mean something.
"""

from __future__ import annotations

import argparse
import json

from repro.chaos.campaign import DEFAULT_POLICIES, run_campaign, run_plan
from repro.chaos.plan import CRASH_KINDS, FaultKind, FaultPlan

#: A sweep must fire at least this many distinct fault kinds, or the
#: campaign is not exercising the surface it claims to.
MIN_DISTINCT_KINDS = 8


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="deterministic Byzantine-host fault-injection sweep",
    )
    parser.add_argument(
        "--seeds", type=int, default=20, metavar="N",
        help="number of seeds to sweep, 0..N-1 (default: 20)",
    )
    parser.add_argument(
        "--policies", default=",".join(DEFAULT_POLICIES),
        help="comma-separated paging policies "
             f"(default: {','.join(DEFAULT_POLICIES)})",
    )
    parser.add_argument(
        "--no-determinism-check", action="store_true",
        help="run each seed once instead of twice (faster, weaker)",
    )
    parser.add_argument(
        "--crash", action=argparse.BooleanOptionalAction, default=True,
        help="include the crash-and-recover fault kinds "
             "(crash-enclave, journal-torn-tail, journal-corrupt-tail); "
             "--no-crash removes them from every plan (default: on)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep; results are identical "
             "to --jobs 1 (default: 1)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--plan", metavar="FILE",
        help="replay one serialized FaultPlan (a model-checker witness "
             "or frozen regression) instead of sweeping seeds; the file "
             "is FaultPlan.to_json() output, optionally wrapped as "
             '{"plan": ..., "policy": ..., "expected_outcome": ...}',
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print one line per run",
    )
    return parser


def run(argv=None):
    args = build_parser().parse_args(argv)
    policies = tuple(
        p.strip() for p in args.policies.split(",") if p.strip()
    )
    if args.plan:
        return _replay_plan(args, policies)
    result = run_campaign(
        range(args.seeds),
        policies=policies,
        check_determinism=not args.no_determinism_check,
        jobs=args.jobs,
        exclude=() if args.crash else CRASH_KINDS,
    )
    kinds_fired = len(result.fired_kinds)
    enough_kinds = kinds_fired >= min(
        MIN_DISTINCT_KINDS, len(FaultKind)
    )
    ok = result.ok and enough_kinds

    if args.format == "json":
        print(json.dumps(_as_json(result, args, ok), indent=2,
                         sort_keys=True))
    else:
        _print_text(result, args, ok, kinds_fired)
    return 0 if ok else 1


def _replay_plan(args, policies):
    """Replay one serialized plan; exit 0 iff every run was safe and —
    when the file carries an ``expected_outcome`` — the outcome class
    matched it."""
    with open(args.plan, encoding="utf-8") as handle:
        payload = json.load(handle)
    expected = None
    if "plan" in payload:  # model-checker witness wrapper
        if payload.get("policy"):
            policies = (payload["policy"],)
        expected = payload.get("expected_outcome")
        plan = FaultPlan.from_json(payload["plan"])
    else:
        plan = FaultPlan.from_json(payload)
    ok = True
    runs = []
    for policy in policies:
        run_ = run_plan(plan, policy)
        matched = expected is None or run_.outcome == expected
        ok = ok and run_.safe and matched
        runs.append((policy, run_, matched))
    if args.format == "json":
        print(json.dumps({
            "ok": ok,
            "plan": plan.to_json(),
            "expected_outcome": expected,
            "runs": [
                {
                    "policy": policy,
                    "outcome": run_.outcome,
                    "reason": run_.reason,
                    "matched_expected": matched,
                    "violations": list(run_.violations),
                    "digest": run_.digest,
                }
                for policy, run_, matched in runs
            ],
        }, indent=2, sort_keys=True))
    else:
        print(f"replay {plan.describe()}")
        for policy, run_, matched in runs:
            extra = f" reason={run_.reason}" if run_.reason else ""
            verdict = "" if matched else \
                f"  EXPECTED {expected}, GOT {run_.outcome}"
            print(f"  {policy:14s} {run_.outcome:9s}{extra}"
                  f" digest={run_.digest}{verdict}")
            for violation in run_.violations:
                print(f"    VIOLATION: {violation}")
        print("verdict:", "OK" if ok else "FAIL")
    return 0 if ok else 1


def _print_text(result, args, ok, kinds_fired):
    if args.verbose:
        for run_ in result.runs:
            extra = f" reason={run_.reason}" if run_.reason else ""
            print(
                f"seed={run_.seed:3d} {run_.policy:10s} "
                f"{run_.outcome:9s}{extra} "
                f"kinds={','.join(run_.fired_kinds) or '-'} "
                f"digest={run_.digest}"
            )
        print()
    counts = result.outcome_counts()
    total = len(result.runs)
    print(f"chaos campaign: {total} runs "
          f"({args.seeds} seeds x {len(result.abort_stats)} policies)")
    for outcome, count in counts.items():
        print(f"  {outcome:9s} {count}")
    for policy, stats in result.abort_stats.items():
        if stats.total:
            detail = ", ".join(
                f"{reason}={count}"
                for reason, count in stats.as_dict().items()
            )
            print(f"  aborts[{policy}]: {detail}")
    print(f"  distinct fault kinds fired: {kinds_fired}")
    if result.recoveries:
        print(f"  verified crash recoveries: {result.recoveries}")
    if result.violations:
        print("SAFETY-INVARIANT VIOLATIONS:")
        for seed, policy, message in result.violations:
            print(f"  seed={seed} policy={policy}: {message}")
    if result.determinism_failures:
        print("DETERMINISM FAILURES:")
        for seed, policy, first, second in result.determinism_failures:
            print(f"  seed={seed} policy={policy}: "
                  f"{first} != {second}")
    if kinds_fired < MIN_DISTINCT_KINDS:
        print(f"INSUFFICIENT COVERAGE: only {kinds_fired} distinct "
              f"fault kinds fired (need {MIN_DISTINCT_KINDS})")
    print("verdict:", "OK" if ok else "FAIL")


def _as_json(result, args, ok):
    return {
        "ok": ok,
        "seeds": args.seeds,
        "policies": sorted(result.abort_stats),
        "outcomes": result.outcome_counts(),
        "abort_reasons": {
            policy: stats.as_dict()
            for policy, stats in result.abort_stats.items()
        },
        "fired_kinds": sorted(result.fired_kinds),
        "recoveries": result.recoveries,
        "violations": [
            {"seed": seed, "policy": policy, "message": message}
            for seed, policy, message in result.violations
        ],
        "determinism_failures": [
            {"seed": seed, "policy": policy,
             "digests": [first, second]}
            for seed, policy, first, second
            in result.determinism_failures
        ],
        "runs": [
            {
                "seed": run_.seed,
                "policy": run_.policy,
                "outcome": run_.outcome,
                "reason": run_.reason,
                "ops_done": run_.ops_done,
                "fired_kinds": list(run_.fired_kinds),
                "degradations": run_.degradations,
                "retried_calls": run_.retried_calls,
                "balloon_freed": run_.balloon_freed,
                "recoveries": run_.recoveries,
                "digest": run_.digest,
            }
            for run_ in result.runs
        ],
    }
